//! Allocation-regression harness for the zero-copy data plane
//! (DESIGN.md §16).
//!
//! A counting global allocator wraps the system allocator and the test
//! runs the fig6a-shaped all-to-all exchange at 1×/4×/16× record volume.
//! With pooled slabs, recycled containers, and the batch channel path,
//! the steady-state cost of moving a record is *zero allocations*: all
//! volume-dependent storage is either swapped back to the producer
//! (`send_container`), recycled through the channel spare pool, or served
//! from the slab pool. So total allocations per run must stay flat (±ε)
//! as volume grows 16× — any per-record allocation sneaking back into the
//! hot path shows up as linear growth and trips the ratio gate below.
//!
//! This file holds exactly one `#[test]` so the counter is never shared
//! with concurrently running tests (integration tests get their own
//! process; the harness threads within it would otherwise interleave).
//!
//! The counting allocator is the one place the repo steps outside
//! `forbid(unsafe_code)`: `GlobalAlloc` is an unsafe trait by definition.
//! It lives in `tests/`, outside the `src crates examples` scope of
//! verify.sh's unsafe-free gate, and only forwards to `System`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute, Config};

/// Allocations observed process-wide since start (allocs + reallocs;
/// frees are not counted — the gate is on allocator pressure, not peak).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: forwards every call verbatim to `System`; the counter update
// is an atomic add with no allocation of its own.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Records each worker feeds at 1× volume. Small enough to keep the
/// 16× arm fast, large enough that a per-record allocation regression
/// (≥ `15 × BASE_RECORDS × workers` extra allocs at 16×) dwarfs ε.
const BASE_RECORDS: usize = 8_192;

/// The fig6a workload: a 2-process × 2-worker all-to-all exchange of
/// 8-byte records fed through the container path, exercising both the
/// local (container swap) and remote (slab encode / recycled decode)
/// channel flavours. Returns the allocations the whole run cost.
fn exchange_run(volume: usize) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let records_per_worker = BASE_RECORDS * volume;
    execute(Config::processes_and_workers(2, 2), move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let probe = stream
                .unary(Pact::exchange(|x: &u64| *x), "Scatter", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each_batch(|time, data| {
                            output.session(time).give_container(data);
                        });
                    }
                })
                .probe();
            (input, probe)
        });
        let base = worker.index() as u64;
        let mut buf: Vec<u64> = Vec::with_capacity(1024);
        let mut batches = 0u64;
        for i in 0..records_per_worker as u64 {
            buf.push(base.wrapping_mul(1_000_003).wrapping_add(i));
            if buf.len() == 1024 {
                input.send_container(&mut buf);
                batches += 1;
                // Steady state means bounded in-flight depth: stepping
                // between batches lets consumers drain and containers
                // recycle, the regime the flat-allocation claim is about.
                // Feeding everything first instead measures queue growth,
                // which legitimately scales with volume.
                if batches.is_multiple_of(4) {
                    worker.step();
                }
            }
        }
        input.send_container(&mut buf);
        input.close();
        worker.step_until_done();
        drop(probe);
    })
    .unwrap();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_allocations_stay_flat_as_volume_grows() {
    // Warm-up run: first-touch costs that belong to the process, not the
    // workload (malloc arenas, thread stacks, lazy statics).
    let _ = exchange_run(1);

    let at_1x = exchange_run(1);
    let at_4x = exchange_run(4);
    let at_16x = exchange_run(16);
    println!("allocations: 1x={at_1x} 4x={at_4x} 16x={at_16x}");

    // Every run pays a fixed setup cost (cluster spawn, graph build,
    // pool priming); the steady-state per-RECORD cost must be zero. What
    // legitimately remains is a small per-BATCH constant — freezing a
    // slab allocates its `Arc` bookkeeping, and the fabric wraps each
    // remote frame in an envelope — so the budget is priced per extra
    // batch (1,024 records each), with generous room for queue jitter.
    // A single per-record allocation regressing onto the hot path costs
    // 1,024× the entire budget and cannot hide in it.
    const ALLOCS_PER_EXTRA_BATCH: u64 = 16;
    let workers = 4;
    let batches = |volume: u64| volume * (BASE_RECORDS as u64 / 1024) * workers;
    let budget = |volume: u64| at_1x + (batches(volume) - batches(1)) * ALLOCS_PER_EXTRA_BATCH;
    assert!(
        at_4x <= budget(4),
        "4x volume blew the allocation budget: 1x={at_1x} 4x={at_4x} (budget {}) — \
         a per-record allocation crept back into the data plane (DESIGN.md §16)",
        budget(4)
    );
    assert!(
        at_16x <= budget(16),
        "16x volume blew the allocation budget: 1x={at_1x} 16x={at_16x} (budget {}) — \
         a per-record allocation crept back into the data plane (DESIGN.md §16)",
        budget(16)
    );
    // And the headline claim, stated directly: allocations per extra
    // record in the 16× arm round to zero.
    let extra_records = 15 * BASE_RECORDS as u64 * workers;
    let per_record = (at_16x.saturating_sub(at_1x)) as f64 / extra_records as f64;
    assert!(
        per_record < 0.05,
        "steady state costs {per_record:.3} allocations/record — the data plane is \
         no longer zero-copy per record"
    );
}
