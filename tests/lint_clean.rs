//! Regression: every dataflow shape this repository ships must be clean
//! under the static analyzer (`naiad::analysis`, DESIGN.md §12) at the
//! default configuration — the same gate `scripts/verify.sh` enforces by
//! running `cargo run --example naiad_lint`. These tests pin the contract
//! at the API level so a rule regression (or a new dataflow that trips a
//! rule) fails `cargo test` before it fails the lint gate.

use naiad::analysis::{AnalysisConfig, Severity};
use naiad::telemetry::TelemetryEvent;
use naiad::{execute, execute_with_telemetry, Config};
use naiad_algorithms::pagerank::pagerank_vertex;
use naiad_algorithms::scc::strongly_connected_components;
use naiad_algorithms::wcc::connected_components;
use naiad_algorithms::wordcount::wordcount;
use naiad_operators::prelude::*;

/// Advisory config: deny nothing, so the assertion below sees the full
/// report rather than a panic out of `Scope::finalize`.
fn advisory() -> AnalysisConfig {
    AnalysisConfig {
        deny: Severity::Never,
        ..AnalysisConfig::default()
    }
}

#[test]
fn operator_library_idioms_are_lint_clean() {
    let reports = execute(Config::single_process(1), |worker| {
        let cfg = advisory();
        let (_, joins) = worker.dataflow_with_report(&cfg, |scope| {
            let (_a, left) = scope.new_input::<(u64, u64)>();
            let (_b, right) = scope.new_input::<(u64, String)>();
            left.join(&right, |k, v, s: &String| (*k, *v, s.clone()))
                .probe();
        });
        let (_, loops) = worker.dataflow_with_report(&cfg, |scope| {
            let (_input, seeds) = scope.new_input::<u64>();
            seeds
                .iterate(Some(8), |inner| inner.map(|x: u64| x / 2).distinct())
                .probe();
        });
        vec![("join", joins), ("iterate", loops)]
    })
    .unwrap();
    for (name, report) in reports.into_iter().flatten() {
        assert!(
            report.diagnostics().is_empty(),
            "dataflow {name:?} is not lint-clean:\n{}",
            report.render_text(name)
        );
    }
}

#[test]
fn algorithm_workloads_are_lint_clean() {
    let reports = execute(Config::single_process(1), |worker| {
        let cfg = advisory();
        let (_, wc) = worker.dataflow_with_report(&cfg, |scope| {
            let (_input, lines) = scope.new_input::<String>();
            wordcount(&lines).probe();
        });
        let (_, cc) = worker.dataflow_with_report(&cfg, |scope| {
            let (_input, edges) = scope.new_input::<(u64, u64)>();
            connected_components(&edges).probe();
        });
        let (_, pr) = worker.dataflow_with_report(&cfg, |scope| {
            let (_input, edges) = scope.new_input::<(u64, u64)>();
            pagerank_vertex(&edges, 5).probe();
        });
        let (_, scc) = worker.dataflow_with_report(&cfg, |scope| {
            let (_input, edges) = scope.new_input::<(u64, u64)>();
            strongly_connected_components(&edges, 8).probe();
        });
        vec![
            ("wordcount", wc),
            ("wcc", cc),
            ("pagerank_vertex", pr),
            ("scc", scc),
        ]
    })
    .unwrap();
    for (name, report) in reports.into_iter().flatten() {
        assert!(
            report.diagnostics().is_empty(),
            "dataflow {name:?} is not lint-clean:\n{}",
            report.render_text(name)
        );
    }
}

#[test]
fn analysis_report_lands_in_telemetry() {
    // Every `dataflow`/`dataflow_with_report` call records one
    // `analysis` event per constructing worker when telemetry is on.
    let (_, snapshot) = execute_with_telemetry(Config::single_process(2), |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            (input, stream.probe())
        });
        input.send(1);
        input.close();
        worker.step_until_done();
        drop(probe);
    })
    .unwrap();

    let mut seen = 0usize;
    for log in &snapshot.logs {
        for record in &log.events {
            if let TelemetryEvent::AnalysisReport {
                errors,
                warnings,
                infos,
                ..
            } = record.event
            {
                seen += 1;
                assert_eq!(
                    (errors, warnings, infos),
                    (0, 0, 0),
                    "in-repo dataflow must be analyzer-clean"
                );
            }
        }
    }
    assert_eq!(seen, 2, "one analysis event per constructing worker");
}
