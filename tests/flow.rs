//! End-to-end credit-based flow control (DESIGN.md §15).
//!
//! A credited run must be indistinguishable from an uncredited one in
//! *what* it computes — `Block` policy is lossless, `Shed` accounts for
//! every dropped record exactly — while bounding *how much* data sits in
//! flight. Every test also checks the conservation invariant: once the
//! cluster joins, all spent credits have been returned (`in_flight == 0`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::{
    execute_with_telemetry, Config, FlowConfig, Pact, Scope, ShedPolicy, TelemetrySnapshot,
};
use naiad_examples::my_share;

/// Per-epoch captured output of the pass-through dataflow.
type Out = Vec<(u64, Vec<(u64, u64)>)>;
type Captured = Rc<RefCell<Out>>;

const EPOCHS: u64 = 4;
const RECORDS_PER_EPOCH: u64 = 500;

fn records(epoch: u64) -> Vec<(u64, u64)> {
    (0..RECORDS_PER_EPOCH)
        .map(|i| ((i * 7 + epoch) % 64, i))
        .collect()
}

/// Exchange-by-key pass-through: every record crosses a worker boundary
/// (whenever its key hashes elsewhere), so the credited queues carry the
/// full workload.
fn build(scope: &mut Scope) -> (naiad::InputHandle<(u64, u64)>, naiad::ProbeHandle, Captured) {
    let (input, stream) = scope.new_input::<(u64, u64)>();
    let routed = stream.unary(Pact::exchange(|r: &(u64, u64)| r.0), "Route", |_info| {
        move |input: &mut InputPort<(u64, u64)>, output: &mut OutputPort<(u64, u64)>| {
            input.for_each(|time, data| {
                let mut session = output.session(time);
                for r in data {
                    session.give(r);
                }
            });
        }
    });
    (input, routed.probe(), routed.capture())
}

/// Runs the pass-through dataflow under `config`, returning the captured
/// records merged across workers and sorted per epoch, plus the snapshot.
fn run(config: Config) -> (Vec<Vec<(u64, u64)>>, TelemetrySnapshot) {
    let (results, snapshot) = execute_with_telemetry(config, |worker| {
        let (mut input, probe, captured) = worker.dataflow(build);
        for epoch in 0..EPOCHS {
            for r in my_share(&records(epoch), worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .expect("flow-controlled run completes");
    let merged: Out = results.into_iter().flatten().collect();
    let by_epoch = (0..EPOCHS)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort_unstable();
            v
        })
        .collect();
    (by_epoch, snapshot)
}

/// Deadline wrapper: a flow-control bug must fail the test, not wedge it.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("sender dropped without sending yet the closure returned"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s deadline — flow control wedged the cluster")
        }
    }
}

/// Credited runs over both queue flavours (intra-process typed queues and
/// the serialized remote path) are bit-identical to the uncredited
/// reference, and all in-flight credits drain by the join.
#[test]
fn credited_run_is_bit_identical_and_drains() {
    with_deadline(120, || {
        let (reference, baseline) = run(Config::processes_and_workers(2, 2));
        assert!(!baseline.flow.enabled, "flow gauges default off");
        let (credited, snapshot) = run(
            Config::processes_and_workers(2, 2)
                .flow(FlowConfig::default().budget(64 << 10)),
        );
        assert_eq!(credited, reference, "flow control must not change output");
        let flow = snapshot.flow;
        assert!(flow.enabled);
        assert!(flow.credit_returns > 0, "data moved through credited queues");
        assert_eq!(flow.in_flight_bytes, 0, "all spent credits were returned");
        assert_eq!(flow.shed_records, 0, "Block policy is lossless");
    });
}

/// A budget far below the working set forces real credit waits (or
/// overdrafts after the bounded wait) yet loses nothing: `Block` degrades
/// throughput before memory, never correctness.
#[test]
fn tiny_budget_block_policy_is_lossless_under_contention() {
    with_deadline(120, || {
        let (reference, _) = run(Config::processes_and_workers(1, 2));
        // Small batches so each epoch flushes many of them: the queue is
        // non-empty when later batches arrive, which is what makes the
        // budget bind (an empty queue always admits).
        let (credited, snapshot) = run(Config::processes_and_workers(1, 2).batch_size(32).flow(
            FlowConfig::default()
                .budget(512)
                .credit_wait(Duration::from_millis(5)),
        ));
        assert_eq!(credited, reference, "contention must not change output");
        let flow = snapshot.flow;
        assert!(
            flow.credit_waits > 0 || flow.overdrafts > 0,
            "a 512-byte budget against {} records per epoch must contend",
            RECORDS_PER_EPOCH
        );
        assert_eq!(flow.in_flight_bytes, 0);
        assert_eq!(flow.shed_records, 0);
    });
}

/// `Shed` policy: the run always completes (shed batches retire their
/// pointstamps, so progress stays sound), and the ledger accounts for
/// every record — captured plus shed equals sent, exactly.
#[test]
fn shed_policy_accounts_for_every_record() {
    with_deadline(120, || {
        let (by_epoch, snapshot) = run(Config::processes_and_workers(1, 2).batch_size(32).flow(
            FlowConfig::default()
                .budget(512)
                .credit_wait(Duration::from_millis(2))
                .policy(ShedPolicy::Shed)
                .thresholds(0.05, 0.1),
        ));
        let sent: u64 = EPOCHS * RECORDS_PER_EPOCH;
        let captured: u64 = by_epoch.iter().map(|v| v.len() as u64).sum();
        let flow = snapshot.flow;
        assert_eq!(
            captured + flow.shed_records,
            sent,
            "every sent record is either delivered or counted as shed"
        );
        if flow.shed_batches == 0 {
            let (reference, _) = run(Config::processes_and_workers(1, 2));
            assert_eq!(by_epoch, reference, "no shedding means bit-identical");
        }
        assert_eq!(flow.in_flight_bytes, 0);
    });
}

/// Ingress admission control: with a one-epoch window, `try_advance_to`
/// denies an epoch that would run ahead of the frontier, the blessed
/// `while !try_advance_to { step }` pattern drains it through, and the
/// producer never holds more than the window open.
#[test]
fn admission_window_bounds_open_epochs() {
    with_deadline(120, || {
        let config =
            Config::single_process(1).flow(FlowConfig::default().max_open_epochs(1));
        let (results, _snapshot) = execute_with_telemetry(config, |worker| {
            let (mut input, probe, captured) = worker.dataflow(build);
            assert_eq!(
                input.admission_window(),
                Some(1),
                "the handle inherits the flow config's window"
            );
            let mut denied = false;
            for epoch in 0..EPOCHS {
                for r in records(epoch) {
                    input.send(r);
                }
                let next = epoch + 1;
                if !input.try_advance_to(next) {
                    denied = true;
                    while !input.try_advance_to(next) {
                        worker.step();
                    }
                }
                assert!(
                    input.open_epochs() <= 1,
                    "the window caps epochs open beyond the frontier"
                );
            }
            assert!(
                denied,
                "advancing without stepping must trip the window at least once"
            );
            input.close();
            worker.step_while(|| !probe.done_through(EPOCHS - 1));
            worker.step_until_done();
            let count: usize = captured.borrow().iter().map(|(_, d)| d.len()).sum();
            count
        })
        .expect("windowed run completes");
        assert_eq!(
            results[0] as u64,
            EPOCHS * RECORDS_PER_EPOCH,
            "admission control delays epochs, never records"
        );
    });
}
