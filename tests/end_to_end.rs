//! Cross-crate integration tests: the operator library, Pregel port,
//! algorithms, and baselines must agree with each other end to end.

use naiad::progress::ProgressMode;
use naiad::{execute, Config};
use naiad_algorithms::datasets::{random_graph, tweet_stream};
use naiad_algorithms::kexposure::k_exposure;
use naiad_algorithms::wcc::{wcc_once, wcc_reference};
use naiad_baselines::snapshot::{SnapshotEngine, Update};
use naiad_baselines::tree::tree_all_reduce_sum;
use naiad_examples::my_share;
use naiad_operators::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// WCC across process boundaries under every progress mode must match the
/// sequential union-find.
#[test]
fn wcc_agrees_under_every_progress_mode() {
    let edges = random_graph(150, 220, 77);
    let reference = wcc_reference(&edges);
    for mode in [
        ProgressMode::Broadcast,
        ProgressMode::Local,
        ProgressMode::Global,
        ProgressMode::LocalGlobal,
    ] {
        let config = Config::processes_and_workers(2, 2).progress_mode(mode);
        let ours = wcc_once(config, edges.clone());
        assert_eq!(ours, reference, "mode {mode:?}");
    }
}

/// The Naiad k-exposure dataflow and the Kineograph-like snapshot engine
/// compute identical exposure tables on the same stream.
#[test]
fn kexposure_matches_snapshot_engine() {
    let tweets = tweet_stream(400, 100, 20, 5);

    // Naiad: stream everything in one epoch, capture the counts.
    let tweets_in = Arc::new(tweets.clone());
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<naiad_algorithms::datasets::Tweet>();
            (input, k_exposure(&stream).capture())
        });
        for t in my_share(&tweets_in, worker.index(), worker.peers()) {
            input.send(t);
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut ours: HashMap<(u64, u64), u64> = HashMap::new();
    for (_, data) in results.into_iter().flatten() {
        for ((user, topic), k) in data {
            *ours.entry((user, topic)).or_insert(0) += k;
        }
    }

    // Baseline: everything in one snapshot.
    let mut engine = SnapshotEngine::new();
    for t in tweets {
        engine.ingest(Update {
            user: t.user,
            hashtags: t.hashtags,
            mentions: t.mentions,
        });
    }
    let (reference, _) = engine.snapshot_and_compute();
    assert_eq!(ours, reference);
}

/// The butterfly (VW-style) and data-parallel AllReduce produce the same
/// sums, per epoch, on every worker, across processes.
#[test]
fn allreduce_implementations_agree() {
    let config = Config::processes_and_workers(2, 2);
    let results = execute(config, |worker| {
        let (mut input, dp_cap, tree_cap) = worker.dataflow(|scope| {
            let (input, vectors) = scope.new_input::<Vec<f64>>();
            let dp = vectors.all_reduce_sum().capture();
            let tree = tree_all_reduce_sum(&vectors).capture();
            (input, dp, tree)
        });
        let me = worker.index() as f64;
        for epoch in 0..3u64 {
            input.send(vec![me + epoch as f64, 2.0 * me, 7.0]);
            if epoch < 2 {
                input.advance_to(epoch + 1);
            }
        }
        input.close();
        worker.step_until_done();
        let result = (dp_cap.borrow().clone(), tree_cap.borrow().clone());
        result
    })
    .unwrap();
    for (worker_idx, (dp, tree)) in results.into_iter().enumerate() {
        assert_eq!(dp.len(), 3, "worker {worker_idx} dp epochs");
        assert_eq!(tree.len(), 3, "worker {worker_idx} tree epochs");
        let flat = |v: Vec<(u64, Vec<Vec<f64>>)>| {
            let mut v = v;
            v.sort_by_key(|(e, _)| *e);
            v.into_iter().map(|(_, d)| d).collect::<Vec<_>>()
        };
        assert_eq!(flat(dp), flat(tree), "worker {worker_idx}");
    }
}

/// A dataflow with two independent inputs and a per-time join behaves
/// consistently across multiple dataflows in one worker session.
#[test]
fn multiple_dataflows_share_a_worker() {
    let results = execute(Config::single_process(2), |worker| {
        // Dataflow 1: squares.
        let (mut in1, cap1) = worker.dataflow(|scope| {
            let (input, s) = scope.new_input::<u64>();
            (input, s.map(|x| x * x).capture())
        });
        // Dataflow 2: a keyed count.
        let (mut in2, cap2) = worker.dataflow(|scope| {
            let (input, s) = scope.new_input::<u64>();
            (input, s.map(|x| (x % 3, x)).count().capture())
        });
        if worker.index() == 0 {
            in1.send_batch([1, 2, 3]);
            in2.send_batch([0, 1, 2, 3, 4, 5]);
        }
        in1.close();
        in2.close();
        worker.step_until_done();
        let result = (cap1.borrow().clone(), cap2.borrow().clone());
        result
    })
    .unwrap();
    let mut squares: Vec<u64> = results
        .iter()
        .flat_map(|(c1, _)| c1.iter().flat_map(|(_, d)| d.iter().copied()))
        .collect();
    squares.sort_unstable();
    assert_eq!(squares, vec![1, 4, 9]);
    let mut counts: Vec<(u64, u64)> = results
        .iter()
        .flat_map(|(_, c2)| c2.iter().flat_map(|(_, d)| d.iter().copied()))
        .collect();
    counts.sort_unstable();
    assert_eq!(counts, vec![(0, 2), (1, 2), (2, 2)]);
}

/// Iteration nested in streaming: per-epoch fixpoints stay separated even
/// when epochs are pipelined into the loop without waiting.
#[test]
fn pipelined_epochs_keep_loop_results_separate() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let doubled_to_limit = stream.iterate(Some(32), |inner| {
                inner.map(|x| if x < 100 { x * 2 } else { x }).distinct()
            });
            let out = doubled_to_limit.filter(|&x| x >= 100).distinct();
            (input, out.capture())
        });
        if worker.index() == 0 {
            for epoch in 0..4u64 {
                input.send(epoch + 3);
                if epoch < 3 {
                    input.advance_to(epoch + 1);
                }
            }
        } else {
            for epoch in 0..3u64 {
                input.advance_to(epoch + 1);
            }
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut by_epoch: HashMap<u64, Vec<u64>> = HashMap::new();
    for (epoch, data) in results.into_iter().flatten() {
        by_epoch.entry(epoch).or_default().extend(data);
    }
    // Seed e+3 doubles until ≥ 100: 3→192? no: 3,6,12,24,48,96,192.
    assert_eq!(by_epoch[&0], vec![192]);
    assert_eq!(by_epoch[&1], vec![128]);
    assert_eq!(by_epoch[&2], vec![160]);
    assert_eq!(by_epoch[&3], vec![192]);
}

/// A keyed aggregation across three processes survives 10% message drops
/// and 5% duplicate deliveries: the runtime's retry layer masks the
/// drops (as TCP retransmission would) and the fabric suppresses the
/// duplicates, so results are exactly those of a clean run — while the
/// fault counters prove the faults actually fired.
#[test]
fn lossy_links_preserve_results_under_ten_percent_drop() {
    use naiad::execute_with_metrics;
    use naiad_netsim::FaultPlan;

    let records: Vec<u64> = (0..600).collect();
    let plan = FaultPlan::seeded(0xD0_5E)
        .drop_probability(0.10)
        .duplicate_probability(0.05);
    // Small batches force plenty of cross-process fabric messages.
    let config = Config::processes_and_workers(3, 1)
        .batch_size(8)
        .faults(plan);
    let all = Arc::new(records);
    let (results, metrics) = execute_with_metrics(config, move |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, s) = scope.new_input::<u64>();
            (input, s.map(|x| (x % 30, x)).count().capture())
        });
        for r in my_share(&all, worker.index(), worker.peers()) {
            input.send(r);
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();

    let mut counts: Vec<(u64, u64)> = results
        .into_iter()
        .flatten()
        .flat_map(|(_, d)| d)
        .collect();
    counts.sort_unstable();
    let expected: Vec<(u64, u64)> = (0..30).map(|k| (k, 20)).collect();
    assert_eq!(counts, expected, "lossy links corrupted the aggregation");

    let faults = metrics.faults();
    assert!(faults.dropped > 0, "no drops fired: {faults:?}");
    assert!(faults.duplicated > 0, "no duplicates fired: {faults:?}");
    assert!(
        faults.duplicates_suppressed > 0,
        "duplicates were never suppressed: {faults:?}"
    );
    assert_eq!(faults.crashes, 0);
}
