//! Fault-tolerance round trip (§3.4): checkpoint a running computation at
//! an epoch boundary, "fail", rebuild the dataflow in a fresh cluster,
//! restore, and continue — the resumed run must match an uninterrupted
//! one exactly.

use naiad::{execute, execute_resilient, Config, ExecuteError, RecoveryOptions};
use naiad_examples::my_share;
use naiad_operators::prelude::*;
use std::sync::Arc;

/// Cross-epoch state: monotonic minimum per key. Epochs 0–2 establish
/// state; epochs 3–5 only emit improvements relative to it.
fn inputs() -> Vec<Vec<(u64, u64)>> {
    vec![
        vec![(1, 50), (2, 60), (3, 70)],
        vec![(1, 40), (2, 90)],
        vec![(3, 30)],
        vec![(1, 45), (2, 50), (3, 35)], // only (2, 50) improves
        vec![(1, 10)],
        vec![(2, 20), (3, 5)],
    ]
}

type Out = Vec<(u64, Vec<(u64, u64)>)>;

/// Runs epochs `[from, to)`, optionally restoring `snapshot` first, and
/// returns (captured outputs, checkpoint taken after the last epoch).
fn run(from: u64, to: u64, snapshot: Option<Vec<u8>>) -> (Out, Vec<u8>) {
    let all = Arc::new(inputs());
    let snapshot = Arc::new(snapshot);
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            let captured = mins.capture();
            (input, mins.probe(), captured)
        });
        if let Some(snapshot) = snapshot.as_ref() {
            worker.restore(snapshot);
        }
        // Resumed runs re-number epochs from zero; the driver offsets.
        for (local, epoch) in (from..to).enumerate() {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(local as u64 + 1);
            worker.step_while(|| !probe.done_through(local as u64));
        }
        let snapshot = worker.checkpoint();
        input.close();
        worker.step_until_done();
        let result = (captured.borrow().clone(), snapshot);
        result
    })
    .unwrap();
    let mut merged: Out = Vec::new();
    let mut snapshot = Vec::new();
    for (cap, snap) in results {
        merged.extend(cap);
        if !snap.is_empty() {
            // Single-process: all workers share one address space, but
            // each worker snapshots only its own vertex partition; the
            // test concatenates per-worker snapshots like a process-level
            // checkpoint file would.
            snapshot.push(snap);
        }
    }
    merged.sort();
    for (_, data) in merged.iter_mut() {
        data.sort();
    }
    let combined = naiad_wire::encode_to_vec(&snapshot);
    (merged, combined)
}

fn restore_shape(bytes: &[u8]) -> Vec<Vec<u8>> {
    naiad_wire::decode_from_slice(bytes).expect("per-worker snapshot vector")
}

#[test]
fn resumed_run_matches_uninterrupted_run() {
    // Uninterrupted reference over all six epochs.
    let (reference, _) = run(0, 6, None);

    // Interrupted run: epochs 0–2, checkpoint, then a fresh cluster
    // resumes 3–5 from the snapshot.
    let (prefix, snapshot) = run(0, 3, None);
    let per_worker = restore_shape(&snapshot);
    assert_eq!(per_worker.len(), 2, "one snapshot per worker");

    // Feed each worker its own snapshot back.
    let all = Arc::new(inputs());
    let per_worker = Arc::new(per_worker);
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            let captured = mins.capture();
            (input, mins.probe(), captured)
        });
        worker.restore(&per_worker[worker.index()]);
        for (local, epoch) in (3u64..6).enumerate() {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(local as u64 + 1);
            worker.step_while(|| !probe.done_through(local as u64));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut resumed: Out = results.into_iter().flatten().collect();
    resumed.sort();
    for (_, data) in resumed.iter_mut() {
        data.sort();
    }

    // Stitch: reference epochs 3..6 must equal resumed epochs 0..3.
    let tail_reference: Vec<Vec<(u64, u64)>> = (3..6)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = reference
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();
    let tail_resumed: Vec<Vec<(u64, u64)>> = (0..3)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = resumed
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();
    assert_eq!(tail_resumed, tail_reference, "restore changed the future");

    // And the prefix run saw exactly the reference's first three epochs.
    let head_reference: Vec<_> = reference.iter().filter(|(e, _)| *e < 3).cloned().collect();
    assert_eq!(prefix, head_reference);
}

/// Restoring into a structurally different dataflow must fail loudly, not
/// corrupt state.
#[test]
fn restore_rejects_mismatched_shape() {
    let (_, snapshot) = run(0, 2, None);
    let per_worker = restore_shape(&snapshot);
    let blob = Arc::new(per_worker[0].clone());
    let result = execute(Config::single_process(1), move |worker| {
        // Two stateful operators instead of one: shape mismatch.
        let (_input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let a = stream.min_monotonic();
            let b = a.min_monotonic();
            (input, b.probe())
        });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker.restore(&blob);
        }));
        caught.is_err()
    })
    .unwrap();
    assert!(result[0], "mismatched restore must panic");
}

/// Corrupt checkpoint bytes surface as typed errors, not decoding panics.
#[test]
fn try_restore_reports_corruption() {
    use naiad::runtime::RestoreError;

    let (_, snapshot) = run(0, 2, None);
    let per_worker = Arc::new(restore_shape(&snapshot));
    let errors = execute(Config::single_process(2), move |worker| {
        let (_input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            (input, mins.probe())
        });
        let blob = per_worker[worker.index()].clone();
        // Not a checkpoint at all.
        let garbage = worker.try_restore(b"definitely not a checkpoint");
        // A flipped payload bit fails the checksum before any state moves.
        let mut flipped = blob.clone();
        *flipped.last_mut().unwrap() ^= 1;
        let corrupt = worker.try_restore(&flipped);
        // The pristine blob restores cleanly afterwards.
        let clean = worker.try_restore(&blob);
        (garbage, corrupt, clean)
    })
    .unwrap();
    for (garbage, corrupt, clean) in &errors {
        assert_eq!(garbage, &Err(RestoreError::BadMagic));
        assert!(matches!(corrupt, Err(RestoreError::ChecksumMismatch { .. })));
        assert_eq!(clean, &Ok(()));
    }
}

/// A whole-state snapshot is pinned to its worker count: loading it into
/// a different-arity cluster is the typed mismatch, because its keyed
/// partitions would silently violate the exchange contract — the rescale
/// path re-partitions instead.
#[test]
fn try_restore_rejects_worker_count_mismatch() {
    use naiad::runtime::RestoreError;

    let (_, snapshot) = run(0, 2, None);
    let per_worker = restore_shape(&snapshot);
    let blob = Arc::new(per_worker[0].clone());
    let outcomes = execute(Config::single_process(1), move |worker| {
        let (_input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            (input, mins.probe())
        });
        worker.try_restore(&blob)
    })
    .unwrap();
    assert_eq!(
        outcomes[0],
        Err(RestoreError::PartitionCountMismatch {
            checkpointed: 2,
            restoring: 1
        })
    );
}

/// Runs epochs `[0, split)` on `from` workers and returns the captured
/// prefix plus the migration bundles for a `to`-worker successor: bundle
/// `p` holds shard `p` from every old worker, in worker order — exactly
/// what the rescale coordinator assembles.
fn run_and_shard(from: usize, to: usize, split: u64) -> (Out, Vec<Vec<Vec<u8>>>) {
    let all = Arc::new(inputs());
    let results = execute(Config::single_process(from), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            let captured = mins.capture();
            (input, mins.probe(), captured)
        });
        for epoch in 0..split {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        worker.step_until_closed_through(split - 1);
        let shards = worker
            .checkpoint_partitioned(to)
            .expect("keyed state shards for the new membership");
        input.close();
        worker.step_until_done();
        let result = (captured.borrow().clone(), shards);
        result
    })
    .unwrap();
    let mut merged: Out = Vec::new();
    let mut bundles = vec![Vec::new(); to];
    for (cap, shards) in results {
        merged.extend(cap);
        assert_eq!(shards.len(), to, "one shard per new worker");
        for (bundle, shard) in bundles.iter_mut().zip(shards) {
            bundle.push(shard);
        }
    }
    merged.sort();
    for (_, data) in merged.iter_mut() {
        data.sort();
    }
    (merged, bundles)
}

/// Resumes epochs `[split, 6)` on `to` workers from migration `bundles`
/// and returns the merged, sorted tail (locally renumbered from zero).
fn resume_from_shards(to: usize, split: u64, bundles: Vec<Vec<Vec<u8>>>) -> Out {
    let all = Arc::new(inputs());
    let bundles = Arc::new(bundles);
    let results = execute(Config::single_process(to), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            let captured = mins.capture();
            (input, mins.probe(), captured)
        });
        worker
            .restore_shards(&bundles[worker.index()])
            .expect("migration shards restore on the new membership");
        for (local, epoch) in (split..6).enumerate() {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(local as u64 + 1);
            worker.step_while(|| !probe.done_through(local as u64));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut resumed: Out = results.into_iter().flatten().collect();
    resumed.sort();
    for (_, data) in resumed.iter_mut() {
        data.sort();
    }
    resumed
}

/// N→M migration round trips: shard keyed state on `from` workers,
/// reassemble by new owner, restore on `to` workers, and the remaining
/// epochs must match the uninterrupted reference — grow, shrink, and the
/// degenerate single-worker cases alike.
#[test]
fn partitioned_round_trip_matches_across_worker_counts() {
    let split = 3u64;
    let (reference, _) = run(0, 6, None);
    let tail_reference: Vec<Vec<(u64, u64)>> = (split..6)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = reference
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();

    let head_reference: Vec<Vec<(u64, u64)>> = (0..split)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = reference
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();

    for (from, to) in [(2usize, 3usize), (3, 2), (2, 1), (1, 2)] {
        let (prefix, bundles) = run_and_shard(from, to, split);
        let head_prefix: Vec<Vec<(u64, u64)>> = (0..split)
            .map(|e| {
                let mut v: Vec<(u64, u64)> = prefix
                    .iter()
                    .filter(|(epoch, _)| *epoch == e)
                    .flat_map(|(_, d)| d.iter().copied())
                    .collect();
                v.sort();
                v
            })
            .collect();
        assert_eq!(head_prefix, head_reference, "{from} -> {to}: prefix diverged");

        let resumed = resume_from_shards(to, split, bundles);
        let tail_resumed: Vec<Vec<(u64, u64)>> = (0..(6 - split))
            .map(|e| {
                let mut v: Vec<(u64, u64)> = resumed
                    .iter()
                    .filter(|(epoch, _)| *epoch == e)
                    .flat_map(|(_, d)| d.iter().copied())
                    .collect();
                v.sort();
                v
            })
            .collect();
        assert_eq!(
            tail_resumed, tail_reference,
            "{from} -> {to}: migration changed the future"
        );
    }
}

/// Corrupt, truncated, or wrong-arity migration shards surface as typed
/// errors before any state moves: a failed restore leaves the worker
/// able to absorb the pristine bundle afterwards.
#[test]
fn restore_shards_rejects_corruption_with_typed_errors() {
    use naiad::runtime::RestoreError;

    let (_, bundles) = run_and_shard(2, 2, 3);
    let bundles = Arc::new(bundles);
    let outcomes = execute(Config::single_process(2), move |worker| {
        let (_input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            (input, mins.probe())
        });
        let mine = bundles[worker.index()].clone();

        // Not a sealed blob at all.
        let garbage = worker.restore_shards(&[b"not a shard".to_vec(), mine[1].clone()]);
        // A flipped payload bit fails the seal's checksum.
        let mut flipped = mine.clone();
        *flipped[0].last_mut().unwrap() ^= 1;
        let corrupt = worker.restore_shards(&flipped);
        // Truncating a shard mid-payload fails before any state is
        // touched.
        let mut short = mine.clone();
        let half = short[1].len() / 2;
        short[1].truncate(half);
        let truncated = worker.restore_shards(&short);
        // The pristine bundle still restores cleanly afterwards.
        let clean = worker.restore_shards(&mine);
        (garbage, corrupt, truncated, clean)
    })
    .unwrap();
    for (garbage, corrupt, truncated, clean) in outcomes {
        assert_eq!(garbage, Err(RestoreError::BadMagic));
        assert!(matches!(corrupt, Err(RestoreError::ChecksumMismatch { .. })));
        assert!(truncated.is_err(), "truncated shard must fail typed");
        assert_eq!(clean, Ok(()));
    }
}

/// A shard bundle cut for one worker count cannot restore into another:
/// the arity is sealed into every shard and checked first.
#[test]
fn restore_shards_rejects_partition_count_mismatch() {
    use naiad::runtime::RestoreError;

    // Shards cut for a 3-worker successor...
    let (_, bundles) = run_and_shard(2, 3, 3);
    let bundle = Arc::new(bundles.into_iter().next().unwrap());
    // ...offered to a 1-worker cluster.
    let outcomes = execute(Config::single_process(1), move |worker| {
        let (_input, _probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let mins = stream.min_monotonic();
            (input, mins.probe())
        });
        worker.restore_shards(&bundle)
    })
    .unwrap();
    assert!(
        matches!(
            outcomes[0],
            Err(RestoreError::PartitionCountMismatch { .. })
        ),
        "got {:?}",
        outcomes[0]
    );
}

/// Coordinated rollback recovery (§3.4): crash a worker's process at
/// *every* possible epoch in turn; the recovered run must produce output
/// identical to the fault-free reference from its resume point onward.
#[test]
fn recovery_matches_fault_free_run_at_every_crash_epoch() {
    let total_epochs = inputs().len() as u64;
    let (reference, _) = run(0, total_epochs, None);
    let reference_by_epoch: Vec<Vec<(u64, u64)>> = (0..total_epochs)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = reference
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();

    for crash_epoch in 0..total_epochs {
        let all = Arc::new(inputs());
        let report = execute_resilient(
            Config::single_process(2),
            RecoveryOptions::default()
                .max_attempts(3)
                .checkpoint_every(2),
            move |worker, recovery| {
                let (mut input, probe, captured) = worker.dataflow(|scope| {
                    let (input, stream) = scope.new_input::<(u64, u64)>();
                    let mins = stream.min_monotonic();
                    let captured = mins.capture();
                    (input, mins.probe(), captured)
                });
                if let Some(blob) = recovery.snapshot(worker.index()) {
                    worker.restore(&blob);
                }
                let resume = recovery.resume_epoch();
                for (local, epoch) in (resume..total_epochs).enumerate() {
                    if recovery.attempt() == 0 && epoch == crash_epoch && worker.index() == 1 {
                        worker.inject_crash();
                    }
                    // Replay the input log where it exists; read (and log)
                    // the source otherwise.
                    let records = match recovery.logged_input::<(u64, u64)>(
                        epoch,
                        worker.index(),
                        0,
                    ) {
                        Some(records) => records,
                        None => {
                            let records =
                                my_share(&all[epoch as usize], worker.index(), worker.peers());
                            recovery.log_input(epoch, worker.index(), 0, &records);
                            records
                        }
                    };
                    for r in records {
                        input.send(r);
                    }
                    input.advance_to(local as u64 + 1);
                    worker.step_while(|| !probe.done_through(local as u64));
                    if recovery.should_checkpoint(epoch) {
                        recovery.deposit_checkpoint(epoch, worker.index(), worker.checkpoint());
                    }
                }
                input.close();
                worker.step_until_done();
                let result = (recovery.resume_epoch(), captured.borrow().clone());
                result
            },
        )
        .expect("recovery absorbs the injected crash");

        assert_eq!(report.attempts, 2, "crash at epoch {crash_epoch}");
        assert_eq!(
            report.recovered_from,
            vec![ExecuteError::ProcessCrashed { process: 0 }],
            "crash at epoch {crash_epoch}"
        );

        let resume = report.results[0].0;
        assert!(
            resume <= crash_epoch,
            "rolled back past the crash point: resume {resume}, crash {crash_epoch}"
        );
        let mut recovered: Out = report.results.into_iter().flat_map(|(_, cap)| cap).collect();
        recovered.sort();
        for local in 0..(total_epochs - resume) {
            let mut got: Vec<(u64, u64)> = recovered
                .iter()
                .filter(|(epoch, _)| *epoch == local)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            got.sort();
            assert_eq!(
                got,
                reference_by_epoch[(resume + local) as usize],
                "crash at epoch {crash_epoch}: epoch {} diverged after recovery",
                resume + local
            );
        }
    }
}
