//! Slab-pool hygiene (DESIGN.md §16): checked-out slabs always come back,
//! come back exactly once, and a crashed-and-recovered cluster ends with
//! no slab still in flight and a bounded free list.
//!
//! The double-return hazard is impossible *by construction* — a slab's
//! storage is owned by one `BytesSlab` or one refcounted `Shared` whose
//! `Drop` runs once — so these tests assert the observable consequence:
//! under arbitrary clone/slice/drop churn the gauges always satisfy the
//! conservation law `allocs + reuses == returns + discards + in_use`.

use std::sync::Arc;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute_resilient, Config, RecoveryOptions};
use naiad_netsim::FaultPlan;
use naiad_rng::Xorshift;
use naiad_wire::{SlabGauges, SlabPool};

/// `allocs + reuses == returns + discards + in_use`: every checkout is
/// accounted for exactly once. Violated low means a leak; violated high
/// would mean a double return.
fn assert_conserved(g: SlabGauges) {
    assert_eq!(
        g.slab_allocs + g.slab_reuses,
        g.slab_returns + g.slab_discards + g.in_use_slabs,
        "slab conservation violated: {g:?}"
    );
}

#[test]
fn dropping_an_unfrozen_slab_returns_it() {
    let pool = Arc::new(SlabPool::with_resident_cap(1 << 20));
    let mut slab = pool.get(100);
    slab.buffer().extend_from_slice(b"scratch work, never frozen");
    drop(slab);
    let g = pool.gauges();
    assert_eq!(g.slab_returns, 1);
    assert_eq!(g.in_use_slabs, 0);
    assert_eq!(g.resident_slabs, 1);
    assert_conserved(g);
    // And the returned buffer is served again, not re-allocated.
    let _slab = pool.get(100);
    let g = pool.gauges();
    assert_eq!((g.slab_allocs, g.slab_reuses), (1, 1));
}

#[test]
fn clones_and_slices_return_exactly_once() {
    let pool = Arc::new(SlabPool::with_resident_cap(1 << 20));
    let mut slab = pool.get(64);
    slab.buffer().extend_from_slice(&[7u8; 64]);
    let bytes = slab.freeze();
    // Fan the refcount out hard: clones of clones, nested sub-slices.
    let mut handles = vec![bytes.clone(), bytes.slice(1..60)];
    for i in 0..30 {
        let src = handles[i % handles.len()].clone();
        let end = src.len();
        handles.push(src.slice(0..end.min(8)));
    }
    drop(bytes);
    assert_eq!(pool.gauges().slab_returns, 0, "handles still pin the slab");
    handles.clear();
    let g = pool.gauges();
    assert_eq!(g.slab_returns, 1, "one slab, one return — never more");
    assert_eq!(g.in_use_slabs, 0);
    assert_conserved(g);
}

#[test]
fn random_churn_conserves_every_slab() {
    let mut rng = Xorshift::new(0x51AB);
    let pool = Arc::new(SlabPool::with_resident_cap(256 << 10));
    let mut live: Vec<naiad_wire::Bytes> = Vec::new();
    for _ in 0..2_000 {
        match rng.below(3) {
            0 => {
                // Check out a random size class (some oversize).
                let size = 1usize << (6 + rng.below_usize(17));
                let mut slab = pool.get(size);
                slab.buffer().resize(size.min(1 << 16), 0xAB);
                live.push(slab.freeze());
            }
            1 if !live.is_empty() => {
                // Clone or sub-slice an existing handle.
                let i = rng.below_usize(live.len());
                let src = live[i].clone();
                let cut = rng.below_usize(src.len() + 1);
                live.push(src.slice(cut..));
            }
            _ if !live.is_empty() => {
                let i = rng.below_usize(live.len());
                live.swap_remove(i);
            }
            _ => {}
        }
        assert_conserved(pool.gauges());
    }
    live.clear();
    let g = pool.gauges();
    assert_eq!(g.in_use_slabs, 0, "all churn handles dropped: {g:?}");
    assert!(g.pool_resident_bytes <= 256 << 10, "cap respected: {g:?}");
    assert_conserved(g);
}

/// A worker crash mid-run (injected, then recovered by rollback) must not
/// leak slabs: the final attempt's pool ends with nothing in flight and
/// a free list within the resident cap, and its gauges still balance.
#[test]
fn recovery_from_a_crash_leaks_no_slabs() {
    const EPOCHS: u64 = 3;
    const RECORDS: u64 = 2_048;
    let report = execute_resilient(
        Config::processes_and_workers(2, 2)
            .telemetry(true)
            .faults(FaultPlan::seeded(0x51AB).crash(1, 5)),
        RecoveryOptions::default().max_attempts(4).checkpoint_every(1),
        |worker, recovery| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                let probe = stream
                    .unary(
                        Pact::exchange(|(k, _): &(u64, u64)| *k),
                        "Scatter",
                        |_info| {
                            |input: &mut InputPort<(u64, u64)>,
                             output: &mut OutputPort<(u64, u64)>| {
                                input.for_each_batch(|time, data| {
                                    output.session(time).give_container(data);
                                });
                            }
                        },
                    )
                    .probe();
                (input, probe)
            });
            if let Some(blob) = recovery.snapshot(worker.index()) {
                worker.restore(&blob);
            }
            let resume = recovery.resume_epoch();
            let base = worker.index() as u64;
            for (local, epoch) in (resume..EPOCHS).enumerate() {
                // Stateless dataflow: inputs are a pure function of
                // (worker, epoch), so replay regenerates them and the
                // input log is not needed for determinism.
                let mut batch: Vec<(u64, u64)> = (0..RECORDS)
                    .map(|i| (base.wrapping_mul(31).wrapping_add(i), epoch))
                    .collect();
                input.send_container(&mut batch);
                input.advance_to(local as u64 + 1);
                worker.step_while(|| !probe.done_through(local as u64));
                if recovery.should_checkpoint(epoch) {
                    recovery.deposit_checkpoint(epoch, worker.index(), worker.checkpoint());
                }
            }
            input.close();
            worker.step_until_done();
        },
    )
    .expect("recovery succeeds within the attempt budget");

    assert!(
        !report.recovered_from.is_empty(),
        "the scheduled crash fired and was recovered from"
    );
    let snap = report.telemetry.expect("telemetry enabled");
    let g = snap.slab;
    assert!(
        g.slab_allocs + g.slab_reuses > 0,
        "the remote path actually exercised the pool: {g:?}"
    );
    assert_eq!(g.in_use_slabs, 0, "no slab leaked past shutdown: {g:?}");
    assert_conserved(g);
    // Default resident cap (Config knobs): 32 MiB.
    assert!(
        g.pool_resident_bytes <= 32 << 20,
        "free list within the resident cap: {g:?}"
    );
}
