//! Failure detection and liveness, end to end (§3.4/§3.5):
//!
//! * a process that dies *silently* — crashed or partitioned while no
//!   data moves on its links — is detected by the heartbeat machinery
//!   within the configured bound and absorbed by coordinated rollback,
//!   with output bit-identical to a fault-free run;
//! * the same scenarios with heartbeats disabled end in a typed
//!   [`ExecuteError::Stalled`] carrying a structured state dump, never a
//!   hang.
//!
//! Before this machinery existed, every one of these runs wedged forever:
//! fault detection rode exclusively on send errors, so a failure on a
//! quiet link was invisible.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::{
    execute, execute_elastic, execute_resilient, execute_with_metrics, execute_with_telemetry,
    Config, ElasticOptions, ElasticPlan, ElasticReport, ExecuteError, FlowConfig, Pact,
    RecoveryOptions, RescaleOutcome, RescaleStep, ResilientReport, Scope, Worker,
};
use naiad_examples::my_share;

/// Per-epoch captured output of the keyed-min dataflow.
type Out = Vec<(u64, Vec<(u64, u64)>)>;
type Captured = Rc<RefCell<Out>>;

const EPOCHS: u64 = 2;

fn inputs() -> Vec<Vec<(u64, u64)>> {
    vec![
        vec![(2, 50), (4, 60), (6, 70)],
        vec![(2, 45), (4, 20), (6, 75)], // only 2 and 4 improve
    ]
}

/// Keyed monotonic minimum with ALL records exchanged to worker 0: the
/// workers on process 1 are receive-only for data, so links into and out
/// of process 1 carry progress and heartbeats but never data — the
/// configuration where send-error-based detection is blind.
fn build(scope: &mut Scope) -> (naiad::InputHandle<(u64, u64)>, naiad::ProbeHandle, Captured) {
    let (input, stream) = scope.new_input::<(u64, u64)>();
    let mins = stream.unary(Pact::exchange(|_: &(u64, u64)| 0), "MinAtZero", |info| {
        let acc: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        info.register_keyed_state(acc.clone(), |_: &u64| 0);
        let acc2 = acc;
        move |input: &mut InputPort<(u64, u64)>, output: &mut OutputPort<(u64, u64)>| {
            input.for_each(|time, data| {
                let mut acc = acc2.borrow_mut();
                let mut session = output.session(time);
                for (k, v) in data {
                    let best = acc.entry(k).or_insert(u64::MAX);
                    if v < *best {
                        *best = v;
                        session.give((k, v));
                    }
                }
            });
        }
    });
    (input, mins.probe(), mins.capture())
}

/// Runs `f` on a helper thread and panics if it exceeds `secs` — the
/// watchdog the whole issue is about: liveness failures must surface as
/// typed errors, not wedged test runs.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        // The closure panicked: the sender dropped without a value.
        // Re-raise the original panic instead of blaming the deadline.
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("sender dropped without sending yet the closure returned"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s deadline — liveness machinery failed")
        }
    }
}

fn detect_config(heartbeats: bool) -> Config {
    let config = Config::processes_and_workers(2, 1);
    if heartbeats {
        config
            .heartbeats(true)
            .heartbeat_interval(Duration::from_millis(5))
            .heartbeat_timeouts(Duration::from_millis(25), Duration::from_millis(120))
    } else {
        config
    }
}

/// The two silent-failure flavours: a fail-stop crash during an idle
/// phase, and a one-way partition cutting the victim's outgoing link
/// before any data flows.
#[derive(Clone, Copy, PartialEq)]
enum Silent {
    Crash,
    Partition,
}

/// Lets in-flight progress broadcasts drain before the victim dies.
/// Without this the crash races the epoch-0 completion broadcast: a
/// straggling send into the freshly dead process would surface a send
/// error, and the scenario would no longer be *silent*.
fn drain_fabric() {
    thread::sleep(Duration::from_millis(300));
}

/// Emulates fail-silent death: the fabric state is already flipped
/// (crashed or severed); the worker thread keeps stepping — sending
/// nothing, journal empty — until cluster-wide detection (or a stall
/// declaration) unwinds it.
fn play_dead(worker: &mut Worker) -> ! {
    worker.step_while(|| true);
    unreachable!("a silent worker only leaves by unwinding");
}

/// The fault-free reference: output per epoch, plus the fabric meters
/// proving the victim's incoming link never carries data.
fn reference_run() -> (Vec<Vec<(u64, u64)>>, u64) {
    let all = Arc::new(inputs());
    let (results, metrics) = execute_with_metrics(detect_config(false), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(build);
        for epoch in 0..EPOCHS {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .expect("fault-free reference");
    let mut merged: Out = results.into_iter().flatten().collect();
    merged.sort();
    let by_epoch = (0..EPOCHS)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();
    let data_into_victim = metrics.link_counters(0, 1).data.messages;
    (by_epoch, data_into_victim)
}

/// The silent-failure scenario under coordinated recovery. Attempt 0
/// suffers the fault mid-run; later attempts are healthy.
fn silent_failure_report(fault: Silent, config: Config) -> ResilientReport<(u64, Out)> {
    let all = Arc::new(inputs());
    execute_resilient(
        config,
        RecoveryOptions::default().max_attempts(3).checkpoint_every(1),
        move |worker, recovery| {
            let (mut input, probe, captured) = worker.dataflow(build);
            if let Some(blob) = recovery.snapshot(worker.index()) {
                worker.restore(&blob);
            }
            // Partition flavour: the victim's outgoing link dies before
            // any data flows, and the victim never speaks again.
            if recovery.attempt() == 0 && fault == Silent::Partition && worker.index() == 1 {
                worker.fault_controller().sever(1, 0);
                play_dead(worker);
            }
            let resume = recovery.resume_epoch();
            for (local, epoch) in (resume..EPOCHS).enumerate() {
                let local = local as u64;
                let records = match recovery.logged_input::<(u64, u64)>(epoch, worker.index(), 0) {
                    Some(records) => records,
                    None => {
                        let records =
                            my_share(&all[epoch as usize], worker.index(), worker.peers());
                        recovery.log_input(epoch, worker.index(), 0, &records);
                        records
                    }
                };
                for r in records {
                    input.send(r);
                }
                input.advance_to(local + 1);
                worker.step_while(|| !probe.done_through(local));
                if recovery.should_checkpoint(epoch) {
                    recovery.deposit_checkpoint(epoch, worker.index(), worker.checkpoint());
                }
                // Crash flavour: epoch 0 is durably done; the cluster goes
                // idle; the victim dies without a word.
                if recovery.attempt() == 0 && epoch == 0 && fault == Silent::Crash {
                    if worker.index() == 1 {
                        drain_fabric();
                        worker.fault_controller().crash(1);
                        play_dead(worker);
                    } else {
                        // The survivor idles on an epoch that can only
                        // complete with the victim's participation; it
                        // sends nothing, so only liveness machinery (or a
                        // stall declaration) can end the wait.
                        worker.step_while(|| !probe.done_through(EPOCHS));
                    }
                }
            }
            input.close();
            worker.step_until_done();
            let result = (resume, captured.borrow().clone());
            result
        },
    )
    .expect("silent failure must be detected and recovered")
}

/// Checks a recovered report's output against the reference, epoch by
/// epoch from the cluster-wide resume point. Captures are merged across
/// workers first: the exchange routes every record to worker 0, so the
/// other workers' captures are legitimately empty.
fn assert_bit_identical(report: &ResilientReport<(u64, Out)>, reference: &[Vec<(u64, u64)>]) {
    let resume = report.results[0].0;
    for (r, _) in &report.results {
        assert_eq!(*r, resume, "the resume epoch is a cluster-wide decision");
    }
    let merged: Out = report
        .results
        .iter()
        .flat_map(|(_, captured)| captured.iter().cloned())
        .collect();
    for local in 0..(EPOCHS - resume) {
        let mut got: Vec<(u64, u64)> = merged
            .iter()
            .filter(|(epoch, _)| *epoch == local)
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        got.sort();
        assert_eq!(
            got,
            reference[(resume + local) as usize],
            "epoch {} diverged after recovery",
            resume + local
        );
    }
}

/// The plain (non-recovering) silent-failure run: returns the typed error.
fn silent_failure_error(fault: Silent, config: Config) -> ExecuteError {
    let all = Arc::new(inputs());
    execute(config, move |worker| {
        let (mut input, probe, _captured) = worker.dataflow(build);
        if fault == Silent::Partition && worker.index() == 1 {
            worker.fault_controller().sever(1, 0);
            play_dead(worker);
        }
        for epoch in 0..EPOCHS {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if epoch == 0 && fault == Silent::Crash {
                if worker.index() == 1 {
                    drain_fabric();
                    worker.fault_controller().crash(1);
                    play_dead(worker);
                } else {
                    worker.step_while(|| !probe.done_through(EPOCHS));
                }
            }
        }
        input.close();
        worker.step_until_done();
    })
    .expect_err("a silent failure must surface as a typed error")
}

/// Silent-failure e2e, crash flavour: process 1 dies mid-idle with zero
/// data ever sent on its incoming link; heartbeats detect it, recovery
/// rolls back to the epoch-0 checkpoint, and the recovered output matches
/// the fault-free run exactly.
#[test]
fn heartbeats_detect_silent_crash_and_recover() {
    with_deadline(120, || {
        let (reference, data_into_victim) = reference_run();
        assert_eq!(
            data_into_victim, 0,
            "scenario invariant: the victim's incoming link never carries data"
        );
        let report = silent_failure_report(Silent::Crash, detect_config(true));
        assert_eq!(report.attempts, 2, "one failure, one clean re-run");
        assert_eq!(
            report.recovered_from,
            vec![ExecuteError::ProcessCrashed { process: 1 }]
        );
        // Epoch 0 was durably checkpointed before the crash.
        assert_eq!(report.results[0].0, 1, "resumed from the checkpoint");
        assert_bit_identical(&report, &reference);
    });
}

/// Regression for the pre-heartbeat hang (satellite of the issue):
/// partition the receive-only worker's outgoing link *before any data
/// flows*. Detection now comes from the receive-side silence timeout and
/// recovery replays from scratch.
#[test]
fn partition_before_data_flows_is_detected_and_recovered() {
    with_deadline(120, || {
        let (reference, _) = reference_run();
        let report = silent_failure_report(Silent::Partition, detect_config(true));
        assert_eq!(report.attempts, 2);
        assert_eq!(
            report.recovered_from,
            vec![ExecuteError::ProcessCrashed { process: 1 }],
            "silence past the failure threshold declares the peer dead"
        );
        // The fault struck before any checkpoint: full replay.
        assert_eq!(report.results[0].0, 0);
        assert_bit_identical(&report, &reference);
    });
}

/// Detection latency is bounded by the configured thresholds, not by the
/// workload: with a 120 ms failure threshold the error arrives within
/// seconds even though no data would ever flow again.
#[test]
fn detection_latency_is_bounded() {
    with_deadline(60, || {
        let start = std::time::Instant::now();
        let err = silent_failure_error(Silent::Partition, detect_config(true).no_stall_timeout());
        assert_eq!(err, ExecuteError::ProcessCrashed { process: 1 });
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "detection took {:?}, bound is ~120 ms + scheduling slack",
            start.elapsed()
        );
    });
}

/// With heartbeats off, the same silent crash is caught by the stall
/// watchdog instead of hanging: a typed error carrying the structured
/// state dump.
#[test]
fn silent_crash_without_heartbeats_stalls_with_dump() {
    with_deadline(120, || {
        let config = detect_config(false).stall_timeout(Duration::from_millis(500));
        match silent_failure_error(Silent::Crash, config) {
            ExecuteError::Stalled { dump, .. } => {
                assert!(!dump.is_empty(), "the stall dump must carry state");
                assert!(dump.contains("\"active\""), "dump lists live pointstamps");
            }
            other => panic!("expected a stall declaration, got {other:?}"),
        }
    });
}

/// Same for the quiet partition: no heartbeats, no hang — a stall.
#[test]
fn silent_partition_without_heartbeats_stalls() {
    with_deadline(120, || {
        let config = detect_config(false).stall_timeout(Duration::from_millis(500));
        let err = silent_failure_error(Silent::Partition, config);
        assert!(
            matches!(err, ExecuteError::Stalled { .. }),
            "expected a stall declaration, got {err:?}"
        );
        let shown = err.to_string();
        assert!(shown.contains("global stall"), "display: {shown}");
    });
}

/// Regression for the watchdog's credit-ledger dump: with flow control
/// configured, the stall dump carries a `flow_cells` line listing every
/// credit cell's in-flight gauge. The dump path uses `try_lock` end to
/// end (`FlowRegistry::dump_cells`) because the watchdog fires while
/// senders may be parked mid-protocol on those very mutexes — a
/// diagnostic must never deadlock on the state it is reporting.
#[test]
fn stall_dump_reports_flow_cells_without_blocking() {
    with_deadline(120, || {
        let config = detect_config(false)
            .stall_timeout(Duration::from_millis(500))
            .flow(FlowConfig::default().budget(1 << 20));
        match silent_failure_error(Silent::Crash, config) {
            ExecuteError::Stalled { dump, .. } => {
                assert!(
                    dump.contains("\"ev\":\"flow_cells\""),
                    "dump must carry the per-cell credit ledger: {dump}"
                );
                assert!(
                    dump.contains("\"cells\":["),
                    "the ledger must render as a JSON list, not a placeholder: {dump}"
                );
            }
            other => panic!("expected a stall declaration, got {other:?}"),
        }
    });
}

/// A declared stall is recoverable: rollback gives the computation a
/// fresh fabric, and the recovered output still matches the reference.
#[test]
fn stall_declarations_feed_coordinated_recovery() {
    with_deadline(120, || {
        let (reference, _) = reference_run();
        let config = detect_config(false).stall_timeout(Duration::from_millis(500));
        let report = silent_failure_report(Silent::Crash, config);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.recovered_from.len(), 1);
        assert!(
            matches!(report.recovered_from[0], ExecuteError::Stalled { .. }),
            "recovered from {:?}",
            report.recovered_from[0]
        );
        assert_bit_identical(&report, &reference);
    });
}

/// An elastic run whose *migration window* wedges: the post-fence phase
/// (membership generation 1) has a worker go silent, so the fence-epoch
/// replay can never complete. The migration deadline is installed as the
/// window's stall watchdog, bounding the wedge.
fn wedged_migration_run(options: ElasticOptions) -> Result<ElasticReport<Out>, ExecuteError> {
    let all = Arc::new(inputs());
    let plan =
        ElasticPlan::new(Config::single_process(2), EPOCHS).rescale(RescaleStep::new(1, 1, 3));
    execute_elastic(plan, options, move |worker, session| {
        let (mut input, probe, captured) = worker.dataflow(build);
        session.restore_into(worker);
        // Generation 1 is the provisional post-rescale membership; its
        // first attempt wedges. A rollback re-runs under generation 2,
        // healthy.
        if session.generation() == 1 && worker.index() == 0 {
            play_dead(worker);
        }
        if session.resume_epoch() > 0 {
            input.advance_to(session.resume_epoch());
        }
        for epoch in session.resume_epoch()..session.stop_epoch() {
            let records = match session.logged_input::<(u64, u64)>(epoch, worker.index(), 0) {
                Some(records) => records,
                None => {
                    let records = my_share(&all[epoch as usize], worker.index(), worker.peers());
                    session.log_input(epoch, worker.index(), 0, &records);
                    records
                }
            };
            for r in records {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if session.should_checkpoint(epoch) {
                session.checkpoint(worker, epoch);
            }
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
}

/// Regression: a migration window that overruns its deadline with
/// rollback disabled dies with a typed [`ExecuteError::RescaleFailed`]
/// whose dump names the protocol phase, the consumed budget, and the
/// underlying stall — never a hang.
#[test]
fn overrunning_migration_fails_typed_with_phase_dump() {
    with_deadline(120, || {
        let options = ElasticOptions::default()
            .recovery(RecoveryOptions::default().max_attempts(1).checkpoint_every(1))
            .migration_deadline(Duration::from_millis(500))
            .rollback_on_abort(false);
        match wedged_migration_run(options) {
            Err(ExecuteError::RescaleFailed {
                epoch,
                from_workers,
                to_workers,
                dump,
            }) => {
                assert_eq!((epoch, from_workers, to_workers), (1, 2, 3));
                assert!(
                    dump.contains("phase=resume") && dump.contains("attempts=1"),
                    "dump must name the protocol phase and budget: {dump}"
                );
                assert!(
                    dump.contains("global stall"),
                    "dump must carry the underlying stall: {dump}"
                );
            }
            other => panic!("expected RescaleFailed, got {other:?}"),
        }
    });
}

/// The same wedge with rollback enabled: the run reverts to the
/// pre-rescale membership at the fence, finishes bit-identically to the
/// fault-free reference, and reports the rollback with its stall cause.
#[test]
fn overrunning_migration_rolls_back_and_completes() {
    with_deadline(120, || {
        let (reference, _) = reference_run();
        let options = ElasticOptions::default()
            .recovery(RecoveryOptions::default().max_attempts(1).checkpoint_every(1))
            .migration_deadline(Duration::from_millis(500));
        let report = wedged_migration_run(options).expect("rollback must save the run");
        assert!(
            matches!(
                &report.outcomes[..],
                [RescaleOutcome::RolledBack {
                    fence: 1,
                    to_workers: 3,
                    cause: ExecuteError::Stalled { .. },
                }]
            ),
            "unexpected outcomes: {:?}",
            report.outcomes
        );
        for phase in &report.phases {
            assert_eq!(phase.workers, 2, "a rolled-back rescale keeps membership");
        }
        let merged: Out = report
            .phases
            .iter()
            .flat_map(|phase| phase.results.iter().flatten().cloned())
            .collect();
        for epoch in 0..EPOCHS {
            let mut got: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(e, _)| *e == epoch)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            got.sort();
            assert_eq!(
                got, reference[epoch as usize],
                "epoch {epoch} diverged after the rollback"
            );
        }
    });
}

/// Regression: a worker parked on a credit wait is *backpressured*, not
/// stalled. A slow consumer plus a tiny credit budget keeps the cluster's
/// frontier silent for far longer than the stall timeout — before the
/// watchdog learned to read the credit gauges, the idle third worker
/// declared `ExecuteError::Stalled` here. Credits keep moving (returns on
/// every consumed batch, senders parked on bounded waits), so the run
/// must complete losslessly instead.
#[test]
fn backpressured_worker_is_not_declared_stalled() {
    with_deadline(120, || {
        const SLOW_EPOCHS: u64 = 24;
        const PER_EPOCH: u64 = 48;
        let config = Config::single_process(3)
            .batch_size(32)
            .stall_timeout(Duration::from_millis(300))
            .flow(
                FlowConfig::default()
                    .budget(1024)
                    .credit_wait(Duration::from_millis(20)),
            );
        let (results, snapshot) = execute_with_telemetry(config, |worker| {
            let (mut input, probe, captured) = worker.dataflow(|scope: &mut Scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                // Everything lands at worker 1, whose vertex dawdles: the
                // backlog parks the sender while epochs stay open.
                let out = stream.unary(Pact::exchange(|_: &(u64, u64)| 1), "Dawdle", |_info| {
                    move |input: &mut InputPort<(u64, u64)>,
                          output: &mut OutputPort<(u64, u64)>| {
                        input.for_each(|time, data| {
                            thread::sleep(Duration::from_millis(25));
                            let mut session = output.session(time);
                            for r in data {
                                session.give(r);
                            }
                        });
                    }
                });
                (input, out.probe(), out.capture())
            });
            if worker.index() == 0 {
                for epoch in 0..SLOW_EPOCHS {
                    for i in 0..PER_EPOCH {
                        input.send((epoch, i));
                    }
                    input.advance_to(epoch + 1);
                }
            }
            input.close();
            worker.step_while(|| !probe.done_through(SLOW_EPOCHS - 1));
            worker.step_until_done();
            let count: u64 = captured.borrow().iter().map(|(_, d)| d.len() as u64).sum();
            count
        })
        .expect("backpressure must extend the stall clock, not trip it");
        assert_eq!(
            results.iter().sum::<u64>(),
            SLOW_EPOCHS * PER_EPOCH,
            "the backpressured run is lossless"
        );
        assert!(
            snapshot.flow.credit_waits > 0,
            "the scenario must actually park a sender"
        );
    });
}

/// Healthy clusters with heartbeats on: beats flow, nobody is declared
/// failed, and the telemetry snapshot accounts for the control plane.
#[test]
fn healthy_heartbeats_are_benign_and_metered() {
    with_deadline(120, || {
        let all = Arc::new(inputs());
        let (results, snapshot) = execute_with_telemetry(detect_config(true), move |worker| {
            let (mut input, probe, captured) = worker.dataflow(build);
            for epoch in 0..EPOCHS {
                for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                    input.send(r);
                }
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .expect("healthy run must not be disturbed by heartbeats");
        assert!(!results.is_empty());
        assert!(
            snapshot.hub.heartbeats_sent > 0,
            "standalone beats must flow between processes"
        );
        assert_eq!(snapshot.hub.peer_failures, 0, "nobody died");
        assert!(
            snapshot.traffic.control_total.messages >= snapshot.hub.heartbeats_sent,
            "control class meters the heartbeat channel: {} metered, {} sent",
            snapshot.traffic.control_total.messages,
            snapshot.hub.heartbeats_sent
        );
    });
}
