//! Deterministic chaos soak (§3.4/§3.5 robustness): composite seeded
//! fault schedules — message drops, duplicate deliveries, partition
//! windows, and scheduled process crashes — derived from 32 base seeds
//! (more via `CHAOS_SOAK_SEEDS`; `SLAB_SOAK_SEEDS` runs the same plans
//! with container-fed inputs over the slab-backed remote path).
//!
//! The contract under chaos is binary and typed:
//!
//! * a run that completes produces output **bit-identical** to the
//!   fault-free baseline — faults may cost retries, rollbacks, and
//!   replays, but never records;
//! * a run that exhausts its attempt budget fails with a typed
//!   [`ExecuteError`], never a hang — every test body runs under a hard
//!   watchdog deadline.
//!
//! Fault plans are pure functions of the seed (asserted below), so any
//! failing seed reproduces exactly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::{
    execute, execute_elastic, execute_resilient, execute_with_telemetry, Config, ElasticOptions,
    ElasticPlan, ElasticReport, ExecuteError, FlowConfig, Pact, RecoveryOptions, RescaleOutcome,
    RescaleStep, ResilientReport, Scope, ShedPolicy, TelemetrySnapshot, Timestamp,
};
use naiad_examples::my_share;
use naiad_netsim::FaultPlan;

/// Per-epoch captured output of the keyed-min dataflow.
type Out = Vec<(u64, Vec<(u64, u64)>)>;
type Captured = Rc<RefCell<Out>>;
/// The keyed-min operator's unregistered in-flight buffer: records by
/// epoch, folded into the registered accumulator at notification.
type PendingByEpoch = Rc<RefCell<HashMap<Timestamp, Vec<(u64, u64)>>>>;

const EPOCHS: u64 = 4;
const PROCESSES: usize = 2;

fn inputs() -> Vec<Vec<(u64, u64)>> {
    vec![
        vec![
            (0, 90),
            (1, 80),
            (2, 70),
            (3, 60),
            (4, 50),
            (5, 40),
            (6, 30),
            (7, 20),
        ],
        vec![(0, 95), (1, 40), (2, 75), (3, 30), (4, 55), (5, 45)],
        vec![(0, 10), (2, 20), (6, 5), (7, 25)],
        vec![(1, 35), (3, 25), (4, 15), (5, 50), (6, 1)],
    ]
}

/// Keyed monotonic minimum, exchanged by key so both directions of every
/// cross-process link carry data. State registers for checkpointing.
///
/// Records buffer per time in `OnRecv` and fold into the registered
/// accumulator only in `OnNotify`, once the epoch is complete. That makes
/// the checkpointed state a function of *closed* epochs alone — the
/// consistency contract checkpoint/restore depends on (DESIGN.md §13).
/// Folding eagerly in `OnRecv` would let a pipelined future-epoch record
/// (a faster peer feeds epoch e+1 while this worker still awaits its
/// local view of epoch e closing) leak into the epoch-e checkpoint, and a
/// post-fault replay of e+1 against that contaminated state would drop
/// the emission the baseline made. The in-flight buffer is deliberately
/// *not* registered: replay, not the checkpoint, reconstructs it.
fn build(scope: &mut Scope) -> (naiad::InputHandle<(u64, u64)>, naiad::ProbeHandle, Captured) {
    let (input, stream) = scope.new_input::<(u64, u64)>();
    let mins = stream.unary_notify(Pact::exchange(|(k, _): &(u64, u64)| *k), "KeyedMin", |info| {
        let acc: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        info.register_keyed_state(acc.clone(), |k: &u64| *k);
        let pending: PendingByEpoch = Rc::new(RefCell::new(HashMap::new()));
        let recv_pending = pending.clone();
        (
            move |input: &mut InputPort<(u64, u64)>,
                  _output: &mut OutputPort<(u64, u64)>,
                  notify: &Notify| {
                input.for_each(|time, data| {
                    let mut pending = recv_pending.borrow_mut();
                    let slot = pending.entry(time).or_insert_with(|| {
                        notify.notify_at(time);
                        Vec::new()
                    });
                    slot.extend(data);
                });
            },
            move |time: Timestamp, output: &mut OutputPort<(u64, u64)>, _notify: &Notify| {
                let Some(mut records) = pending.borrow_mut().remove(&time) else {
                    return;
                };
                // Sorted fold: at most one emission per improved key per
                // epoch, independent of cross-sender arrival interleaving.
                records.sort_unstable();
                let mut acc = acc.borrow_mut();
                let mut session = output.session(time);
                for (k, v) in records {
                    let best = acc.entry(k).or_insert(u64::MAX);
                    if v < *best {
                        *best = v;
                        session.give((k, v));
                    }
                }
            },
        )
    });
    (input, mins.probe(), mins.capture())
}

/// Runs `f` on a helper thread and panics if it exceeds `secs`: the
/// anti-hang watchdog. A panicking closure re-raises its own panic.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("sender dropped without sending yet the closure returned"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos soak exceeded its {secs}s deadline — a run hung")
        }
    }
}

/// splitmix64: the bit mixer deriving plan parameters from a seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 mixed bits onto [0, 1).
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// The composite fault plan for `seed` — a pure function of the seed:
/// always-lossy links (1–8% drops, 0–5% duplicates), sometimes a
/// partition window per direction, sometimes a scheduled crash.
fn plan_for_seed(seed: u64) -> FaultPlan {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5CA7;
    let mut plan = FaultPlan::seeded(seed.max(1))
        .drop_probability(0.01 + 0.07 * unit(splitmix(&mut s)))
        .duplicate_probability(0.05 * unit(splitmix(&mut s)));
    for src in 0..PROCESSES {
        for dst in 0..PROCESSES {
            if src != dst && splitmix(&mut s).is_multiple_of(3) {
                let from = splitmix(&mut s) % 150;
                let until = from + 1 + splitmix(&mut s) % 120;
                plan = plan.partition(src, dst, from, until);
            }
        }
    }
    if splitmix(&mut s).is_multiple_of(2) {
        let process = (splitmix(&mut s) % PROCESSES as u64) as usize;
        let after_sends = 30 + splitmix(&mut s) % 250;
        plan = plan.crash(process, after_sends);
    }
    plan
}

/// The cluster under test: heartbeats on with tight bounds plus a stall
/// watchdog, so every failure mode the plans can produce has a detector.
fn chaos_config() -> Config {
    Config::processes_and_workers(PROCESSES, 1)
        .batch_size(8)
        .heartbeats(true)
        .heartbeat_interval(Duration::from_millis(5))
        .heartbeat_timeouts(Duration::from_millis(40), Duration::from_millis(200))
        .stall_timeout(Duration::from_secs(2))
}

/// The fault-free baseline: per-epoch sorted output.
fn baseline() -> Vec<Vec<(u64, u64)>> {
    let all = Arc::new(inputs());
    let results = execute(
        Config::processes_and_workers(PROCESSES, 1).batch_size(8),
        move |worker| {
            let (mut input, probe, captured) = worker.dataflow(build);
            for epoch in 0..EPOCHS {
                for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                    input.send(r);
                }
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        },
    )
    .expect("fault-free baseline");
    let merged: Out = results.into_iter().flatten().collect();
    (0..EPOCHS)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect()
}

/// One chaotic run under coordinated recovery. The driver follows the
/// standard resilient protocol: restore a snapshot if resuming, replay
/// logged inputs, checkpoint at every quiescent epoch boundary.
///
/// `batched` picks the input feed: per-record `send` (the seed matrix's
/// historical shape) or whole-container `send_container`, which rides the
/// slab-backed batch path end to end — radix-grouped containers, pooled
/// encode slabs, recycled decode containers (DESIGN.md §16). Both feeds
/// must land bit-identically on the same fault-free reference.
fn chaos_run(seed: u64, batched: bool) -> Result<ResilientReport<(u64, Out)>, ExecuteError> {
    let all = Arc::new(inputs());
    execute_resilient(
        chaos_config().faults(plan_for_seed(seed)),
        RecoveryOptions::default().max_attempts(6).checkpoint_every(1),
        move |worker, recovery| {
            let (mut input, probe, captured) = worker.dataflow(build);
            if let Some(blob) = recovery.snapshot(worker.index()) {
                worker.restore(&blob);
            }
            let resume = recovery.resume_epoch();
            for (local, epoch) in (resume..EPOCHS).enumerate() {
                let local = local as u64;
                let records = match recovery.logged_input::<(u64, u64)>(epoch, worker.index(), 0) {
                    Some(records) => records,
                    None => {
                        let records =
                            my_share(&all[epoch as usize], worker.index(), worker.peers());
                        recovery.log_input(epoch, worker.index(), 0, &records);
                        records
                    }
                };
                if batched {
                    let mut container = records;
                    input.send_container(&mut container);
                } else {
                    for r in records {
                        input.send(r);
                    }
                }
                input.advance_to(local + 1);
                worker.step_while(|| !probe.done_through(local));
                if recovery.should_checkpoint(epoch) {
                    recovery.deposit_checkpoint(epoch, worker.index(), worker.checkpoint());
                }
            }
            input.close();
            worker.step_until_done();
            let result = (resume, captured.borrow().clone());
            result
        },
    )
}

/// Soaks `seeds`, asserting the binary contract for each: bit-identical
/// output on success, a typed error otherwise. Returns how many seeds
/// recovered from at least one injected fault.
fn soak(seeds: std::ops::Range<u64>, reference: &[Vec<(u64, u64)>]) -> usize {
    soak_with_feed(seeds, reference, false)
}

/// The same fault plans with inputs fed as whole containers, so every
/// remote hop runs the slab-backed batch path. Output must stay
/// bit-identical to the *same* per-record reference: the data plane's
/// representation is not allowed to be observable.
fn slab_soak(seeds: std::ops::Range<u64>, reference: &[Vec<(u64, u64)>]) -> usize {
    soak_with_feed(seeds, reference, true)
}

fn soak_with_feed(
    seeds: std::ops::Range<u64>,
    reference: &[Vec<(u64, u64)>],
    batched: bool,
) -> usize {
    let mut eventful = 0;
    for seed in seeds {
        match chaos_run(seed, batched) {
            Ok(report) => {
                if !report.recovered_from.is_empty() {
                    eventful += 1;
                }
                for err in &report.recovered_from {
                    assert!(
                        matches!(
                            err,
                            ExecuteError::ProcessCrashed { .. }
                                | ExecuteError::LinkFailed { .. }
                                | ExecuteError::Stalled { .. }
                        ),
                        "seed {seed}: recovered from a non-fault error {err:?}"
                    );
                }
                assert_identical(seed, &report, reference);
            }
            Err(err) => {
                eventful += 1;
                // Exhausting the attempt budget is an acceptable outcome;
                // anything else (a worker panic, a hang converted by the
                // deadline) is a bug.
                assert!(
                    matches!(err, ExecuteError::RecoveryFailed { .. }),
                    "seed {seed}: chaos must end in recovery or a typed budget exhaustion, got {err:?}"
                );
            }
        }
    }
    eventful
}

/// Bit-identical check: merge worker captures, compare per epoch from the
/// cluster-wide resume point.
fn assert_identical(seed: u64, report: &ResilientReport<(u64, Out)>, reference: &[Vec<(u64, u64)>]) {
    let resume = report.results[0].0;
    for (r, _) in &report.results {
        assert_eq!(*r, resume, "seed {seed}: resume epoch must be cluster-wide");
    }
    let merged: Out = report
        .results
        .iter()
        .flat_map(|(_, captured)| captured.iter().cloned())
        .collect();
    for local in 0..(EPOCHS - resume) {
        let mut got: Vec<(u64, u64)> = merged
            .iter()
            .filter(|(epoch, _)| *epoch == local)
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        got.sort();
        assert_eq!(
            got,
            reference[(resume + local) as usize],
            "seed {seed}: epoch {} diverged under chaos",
            resume + local
        );
    }
}

/// The membership change seed `seed` attempts mid-run: even seeds grow
/// the cluster (2 → 4 workers across both processes), odd seeds shrink it
/// to a single worker — so the matrix soaks both directions under the
/// same fault plans as the fixed-membership soak.
fn rescale_step_for_seed(seed: u64) -> RescaleStep {
    if seed.is_multiple_of(2) {
        RescaleStep::new(2, PROCESSES, 2)
    } else {
        RescaleStep::new(2, 1, 1)
    }
}

/// One chaotic *elastic* run: the same fault plan as [`chaos_run`], with
/// a membership change fenced at epoch 2 — so scheduled crashes and
/// partition windows can strike before, during, or after the migration.
/// The driver follows the standard elastic protocol and returns each
/// attempt's resume epoch with its captures, as [`chaos_run`] does.
fn rescale_chaos_run(seed: u64) -> Result<ElasticReport<(u64, Out)>, ExecuteError> {
    let all = Arc::new(inputs());
    let plan = ElasticPlan::new(chaos_config().faults(plan_for_seed(seed)), EPOCHS)
        .rescale(rescale_step_for_seed(seed));
    let options = ElasticOptions::default()
        .recovery(RecoveryOptions::default().max_attempts(6).checkpoint_every(1));
    execute_elastic(plan, options, move |worker, session| {
        let (mut input, probe, captured) = worker.dataflow(build);
        session.restore_into(worker);
        if session.resume_epoch() > 0 {
            input.advance_to(session.resume_epoch());
        }
        for epoch in session.resume_epoch()..session.stop_epoch() {
            let records = match session.logged_input::<(u64, u64)>(epoch, worker.index(), 0) {
                Some(records) => records,
                None => {
                    let records = my_share(&all[epoch as usize], worker.index(), worker.peers());
                    session.log_input(epoch, worker.index(), 0, &records);
                    records
                }
            };
            for r in records {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if session.should_checkpoint(epoch) {
                session.checkpoint(worker, epoch);
            }
        }
        input.close();
        worker.step_until_done();
        let result = (session.resume_epoch(), captured.borrow().clone());
        result
    })
}

/// Soaks the rescale-under-fault matrix: for every seed the binary
/// contract holds — a run that completes (rescale committed, aborted, or
/// rolled back) is bit-identical to the fault-free fixed-membership
/// baseline; a run that gives up fails with a typed error. Returns how
/// many seeds hit at least one fault or non-committed rescale.
fn rescale_soak(seeds: std::ops::Range<u64>, reference: &[Vec<(u64, u64)>]) -> usize {
    let mut eventful = 0;
    for seed in seeds {
        match rescale_chaos_run(seed) {
            Ok(report) => {
                let recovered: usize = report
                    .phases
                    .iter()
                    .map(|p| p.recovered_from.len())
                    .sum();
                let uncommitted = report
                    .outcomes
                    .iter()
                    .filter(|o| !matches!(o, RescaleOutcome::Completed { .. }))
                    .count();
                if recovered + uncommitted > 0 {
                    eventful += 1;
                }
                for phase in &report.phases {
                    for err in &phase.recovered_from {
                        assert!(
                            matches!(
                                err,
                                ExecuteError::ProcessCrashed { .. }
                                    | ExecuteError::LinkFailed { .. }
                                    | ExecuteError::Stalled { .. }
                            ),
                            "seed {seed}: phase recovered from a non-fault error {err:?}"
                        );
                    }
                }
                assert_rescale_identical(seed, &report, reference);
            }
            Err(err) => {
                eventful += 1;
                assert!(
                    matches!(
                        err,
                        ExecuteError::RecoveryFailed { .. } | ExecuteError::RescaleFailed { .. }
                    ),
                    "seed {seed}: an elastic chaos run must end in a typed budget \
                     exhaustion or rescale failure, got {err:?}"
                );
            }
        }
    }
    eventful
}

/// Bit-identical check for elastic runs: within each committed phase,
/// compare from the successful attempt's resume point (earlier epochs
/// were delivered by a failed attempt whose captures are gone, exactly
/// as in [`assert_identical`]). The elastic driver feeds logical epochs,
/// so captured times index the reference directly.
fn assert_rescale_identical(
    seed: u64,
    report: &ElasticReport<(u64, Out)>,
    reference: &[Vec<(u64, u64)>],
) {
    for phase in &report.phases {
        let resume = phase.results[0].0;
        for (r, _) in &phase.results {
            assert_eq!(*r, resume, "seed {seed}: resume epoch must be phase-wide");
        }
        let merged: Out = phase
            .results
            .iter()
            .flat_map(|(_, captured)| captured.iter().cloned())
            .collect();
        for epoch in resume..phase.stop_epoch {
            let mut got: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(e, _)| *e == epoch)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            got.sort();
            assert_eq!(
                got, reference[epoch as usize],
                "seed {seed}: epoch {epoch} diverged under chaos + rescale"
            );
        }
    }
}

/// Fault plans are pure functions of the seed, and the 32-seed base
/// population actually exercises every fault class.
#[test]
fn fault_plans_are_pure_functions_of_the_seed() {
    let (mut with_crash, mut with_partition) = (0, 0);
    for seed in 0..64 {
        let a = plan_for_seed(seed);
        let b = plan_for_seed(seed);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.drop_probability.to_bits(), b.drop_probability.to_bits());
        assert_eq!(
            a.duplicate_probability.to_bits(),
            b.duplicate_probability.to_bits()
        );
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.crashes, b.crashes);
        assert!(a.drop_probability >= 0.01, "every plan is at least lossy");
        if seed < 32 {
            with_crash += usize::from(!a.crashes.is_empty());
            with_partition += usize::from(!a.partitions.is_empty());
        }
    }
    assert!(with_crash > 4, "crash coverage too thin: {with_crash}/32");
    assert!(
        with_partition > 4,
        "partition coverage too thin: {with_partition}/32"
    );
}

#[test]
fn chaos_soak_seeds_00_07() {
    with_deadline(300, || {
        let reference = baseline();
        soak(0..8, &reference);
    });
}

#[test]
fn chaos_soak_seeds_08_15() {
    with_deadline(300, || {
        let reference = baseline();
        soak(8..16, &reference);
    });
}

#[test]
fn chaos_soak_seeds_16_23() {
    with_deadline(300, || {
        let reference = baseline();
        soak(16..24, &reference);
    });
}

/// The last base batch also checks the population was eventful: across
/// its seeds at least one run had to recover from an injected fault
/// (the per-seed plans are deterministic, so this cannot flake).
#[test]
fn chaos_soak_seeds_24_31() {
    with_deadline(300, || {
        let reference = baseline();
        let eventful = soak(24..32, &reference);
        assert!(
            eventful > 0,
            "no seed in 24..32 injected a recoverable fault — the soak is not soaking"
        );
    });
}

/// Base slab-path batch: the same fault plans as seeds 24..32 (the
/// eventful batch), fed through whole containers so drops, duplicates,
/// partitions, and crashes strike slab-encoded frames — and the output
/// still lands bit-identical on the per-record reference.
#[test]
fn slab_soak_base_seeds() {
    with_deadline(300, || {
        let reference = baseline();
        let eventful = slab_soak(24..32, &reference);
        assert!(
            eventful > 0,
            "no slab-path seed injected a recoverable fault — the soak is not soaking"
        );
    });
}

/// CI's extended slab soak: `SLAB_SOAK_SEEDS=n` runs `n` extra seeds of
/// the container-fed matrix past the base batch. A no-op when unset.
#[test]
fn extended_slab_soak_honours_env() {
    let extra: u64 = std::env::var("SLAB_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if extra == 0 {
        return;
    }
    with_deadline(120 + 40 * extra, move || {
        let reference = baseline();
        slab_soak(32..32 + extra, &reference);
    });
}

#[test]
fn rescale_soak_seeds_00_07() {
    with_deadline(300, || {
        let reference = baseline();
        rescale_soak(0..8, &reference);
    });
}

#[test]
fn rescale_soak_seeds_08_15() {
    with_deadline(300, || {
        let reference = baseline();
        rescale_soak(8..16, &reference);
    });
}

#[test]
fn rescale_soak_seeds_16_23() {
    with_deadline(300, || {
        let reference = baseline();
        rescale_soak(16..24, &reference);
    });
}

/// As with the plain soak, the last base batch checks the matrix was
/// eventful: at least one seed in 24..32 forced a recovery, abort, or
/// rollback around its membership change.
#[test]
fn rescale_soak_seeds_24_31() {
    with_deadline(300, || {
        let reference = baseline();
        let eventful = rescale_soak(24..32, &reference);
        assert!(
            eventful > 0,
            "no seed in 24..32 stressed its rescale — the matrix is not soaking"
        );
    });
}

/// CI's extended rescale soak: `RESCALE_SOAK_SEEDS=n` runs `n` extra
/// seeds past the base 32. A no-op when the variable is unset.
#[test]
fn extended_rescale_soak_honours_env() {
    let extra: u64 = std::env::var("RESCALE_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if extra == 0 {
        return;
    }
    with_deadline(120 + 40 * extra, move || {
        let reference = baseline();
        rescale_soak(32..32 + extra, &reference);
    });
}

// --- Introspection soak ---------------------------------------------
//
// The self-hosted critical-path observer must be observation only: a
// lossy run with introspection enabled (autotuning off) produces output
// bit-identical to the fault-free, uninstrumented baseline.

/// A lossy-but-crashless plan for the introspection soak: drops and
/// duplicates ride the retry layer, while a crash would need the
/// recovery coordinator, which wraps `execute` rather than
/// `execute_with_introspection`.
fn introspect_plan_for_seed(seed: u64) -> FaultPlan {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1D7A_0B5E;
    FaultPlan::seeded(seed.max(1))
        .drop_probability(0.01 + 0.03 * unit(splitmix(&mut s)))
        .duplicate_probability(0.03 * unit(splitmix(&mut s)))
}

/// One lossy run with the observer installed; returns the per-epoch
/// sorted output plus the introspection report.
fn introspect_run(seed: u64) -> (Vec<Vec<(u64, u64)>>, naiad::IntrospectReport) {
    let all = Arc::new(inputs());
    let config = Config::processes_and_workers(PROCESSES, 1)
        .batch_size(8)
        .faults(introspect_plan_for_seed(seed))
        .send_retries(16);
    let (results, report) = naiad::execute_with_introspection(
        config,
        naiad::IntrospectOptions::default(),
        move |worker| {
            let (mut input, probe, captured) = worker.dataflow(build);
            for epoch in 0..EPOCHS {
                for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                    input.send(r);
                }
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        },
    )
    .expect("introspected lossy run");
    let merged: Out = results.into_iter().flatten().collect();
    let per_epoch = (0..EPOCHS)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect();
    (per_epoch, report)
}

fn introspect_soak(seeds: std::ops::Range<u64>, reference: &[Vec<(u64, u64)>]) {
    for seed in seeds {
        let (per_epoch, report) = introspect_run(seed);
        assert_eq!(
            per_epoch, reference,
            "seed {seed}: introspected output diverges from the baseline"
        );
        // Every closed source epoch yielded a summary.
        let epochs: Vec<u64> = report.summaries.iter().map(|s| s.epoch).collect();
        for e in 0..EPOCHS {
            assert!(
                epochs.contains(&e),
                "seed {seed}: epoch {e} has no critical-path summary"
            );
        }
        assert!(
            report.decisions.is_empty(),
            "seed {seed}: autotuning is off yet decisions were made"
        );
    }
}

/// Introspection on vs off, under seeded lossy fabrics: bit-identical
/// output, and a critical-path summary for every epoch.
#[test]
fn introspection_soak_is_bit_identical() {
    with_deadline(300, || {
        let reference = baseline();
        introspect_soak(0..4, &reference);
    });
}

/// CI's extended introspection soak: `INTROSPECT_SOAK_SEEDS=n` runs `n`
/// extra seeds past the base 4. A no-op when the variable is unset.
#[test]
fn extended_introspect_soak_honours_env() {
    let extra: u64 = std::env::var("INTROSPECT_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if extra == 0 {
        return;
    }
    with_deadline(120 + 40 * extra, move || {
        let reference = baseline();
        introspect_soak(4..4 + extra, &reference);
    });
}

// --- Overload soak ---------------------------------------------------
//
// Credit-based flow control under sustained overload (DESIGN.md §15): a
// single hot exchange queue is offered load far beyond what its dawdling
// consumer drains — the producer generates batches unthrottled while the
// consumer's service rate is capped by a per-delivery sleep, so offered
// load is at least twice the drain rate on any plausible machine. The
// contract per seed:
//
// * `Block` policy: the run completes **losslessly**, no overdraft ever
//   fires at a generous credit wait, and peak in-flight data-plane bytes
//   never exceed the configured budget (the memory oracle);
// * `Shed` policy: the run completes, and the ledger accounts exactly —
//   delivered + shed == offered, record for record.
//
// The topology is chosen so exactly one credited queue exists (one
// producer, one pure-sink consumer, no downstream emission): the
// cluster-wide peak gauge then *is* the per-queue bound the budget
// promises.

/// Per-queue byte budget for the overload soak; the offered load per
/// seed is several times larger.
const OVERLOAD_BUDGET: usize = 16 << 10;
const OVERLOAD_EPOCHS: u64 = 3;

/// The seed-varied offered load: 3000–5000 records per epoch, far above
/// the budget in encoded bytes.
fn overload_records(seed: u64) -> Vec<(u64, u64)> {
    let mut s = seed ^ 0x000F_10AD;
    let count = 3_000 + splitmix(&mut s) % 2_000;
    (0..count).map(|i| (i % 97, i)).collect()
}

/// One overload run: worker 0 produces, worker 1 is a dawdling pure sink
/// (2 ms per delivery, no output). Returns the records the sink counted
/// and the telemetry snapshot with the flow gauges.
fn overload_run(seed: u64, policy: ShedPolicy) -> (u64, TelemetrySnapshot) {
    let offered = Arc::new(overload_records(seed));
    let flow = match policy {
        // Generous wait: `Block` must bound memory without ever needing
        // the overdraft escape hatch.
        ShedPolicy::Block => FlowConfig::default()
            .budget(OVERLOAD_BUDGET)
            .credit_wait(Duration::from_secs(2)),
        // Tight wait and low thresholds so the overload detector reaches
        // `Shedding` and timed-out batches actually drop.
        ShedPolicy::Shed => FlowConfig::default()
            .budget(OVERLOAD_BUDGET)
            .credit_wait(Duration::from_millis(2))
            .policy(ShedPolicy::Shed)
            .thresholds(0.05, 0.1),
    };
    let config = Config::processes_and_workers(1, 2).batch_size(64).flow(flow);
    let (results, snapshot) = execute_with_telemetry(config, move |worker| {
        let (mut input, probe, counted) = worker.dataflow(|scope: &mut Scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let counted: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
            let sink_count = counted.clone();
            let sink = stream.unary(Pact::exchange(|_: &(u64, u64)| 1), "DawdlingSink", |_info| {
                move |input: &mut InputPort<(u64, u64)>, _output: &mut OutputPort<(u64, u64)>| {
                    input.for_each(|_time, data| {
                        thread::sleep(Duration::from_millis(2));
                        *sink_count.borrow_mut() += data.len() as u64;
                    });
                }
            });
            (input, sink.probe(), counted)
        });
        if worker.index() == 0 {
            for epoch in 0..OVERLOAD_EPOCHS {
                for chunk in offered.chunks(256) {
                    for r in chunk {
                        input.send(*r);
                    }
                    // Stepping between chunks lets the producer's overload
                    // detector observe the climbing gauges (the shed path
                    // reads the *sender's* state).
                    worker.step();
                }
                input.advance_to(epoch + 1);
            }
        }
        input.close();
        worker.step_while(|| !probe.done_through(OVERLOAD_EPOCHS - 1));
        worker.step_until_done();
        let count = *counted.borrow();
        count
    })
    .expect("overloaded run must complete, not wedge");
    (results.iter().sum(), snapshot)
}

/// Soaks `seeds` under both policies, asserting the overload contract.
fn overload_soak(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let offered = OVERLOAD_EPOCHS * overload_records(seed).len() as u64;

        let (delivered, snapshot) = overload_run(seed, ShedPolicy::Block);
        let flow = snapshot.flow;
        assert_eq!(delivered, offered, "seed {seed}: Block policy lost records");
        assert_eq!(flow.shed_records, 0, "seed {seed}: Block policy must not shed");
        assert_eq!(
            flow.overdrafts, 0,
            "seed {seed}: a 2s credit wait against a 2ms dawdle must never time out"
        );
        assert!(
            flow.peak_in_flight_bytes <= OVERLOAD_BUDGET as u64,
            "seed {seed}: peak in-flight {} exceeds the {} budget",
            flow.peak_in_flight_bytes,
            OVERLOAD_BUDGET
        );
        assert!(
            flow.credit_waits > 0,
            "seed {seed}: the overload must actually park the producer"
        );
        assert_eq!(flow.in_flight_bytes, 0, "seed {seed}: credits must drain");

        let (delivered, snapshot) = overload_run(seed, ShedPolicy::Shed);
        let flow = snapshot.flow;
        assert_eq!(
            delivered + flow.shed_records,
            offered,
            "seed {seed}: Shed policy must account for every record exactly \
             (delivered {delivered}, shed {})",
            flow.shed_records
        );
        assert_eq!(flow.in_flight_bytes, 0, "seed {seed}: credits must drain");
    }
}

/// The base overload soak: every seed completes under both policies with
/// the memory bound held and the ledger exact.
#[test]
fn overload_soak_base_seeds() {
    with_deadline(300, || {
        overload_soak(0..2);
    });
}

/// CI's extended overload soak: `OVERLOAD_SOAK_SEEDS=n` runs `n` extra
/// seeds past the base 2. A no-op when the variable is unset.
#[test]
fn extended_overload_soak_honours_env() {
    let extra: u64 = std::env::var("OVERLOAD_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if extra == 0 {
        return;
    }
    with_deadline(120 + 60 * extra, move || {
        overload_soak(2..2 + extra);
    });
}

/// CI's extended soak: `CHAOS_SOAK_SEEDS=n` runs `n` extra seeds past
/// the base 32. A no-op when the variable is unset, so the default test
/// run stays fast.
#[test]
fn extended_soak_honours_env() {
    let extra: u64 = std::env::var("CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if extra == 0 {
        return;
    }
    with_deadline(120 + 40 * extra, move || {
        let reference = baseline();
        soak(32..32 + extra, &reference);
    });
}
