//! Elastic rescaling end-to-end (§3.4 generalized to membership change):
//! grow and shrink the worker set at closed-epoch fences and demand the
//! output stay **bit-identical** to a fixed-membership run.
//!
//! The contract mirrors the chaos soak's: a rescale either completes
//! (state re-partitioned along the exchange contract, no record lost or
//! duplicated), aborts cleanly with a typed [`RescaleError`] while the
//! old membership finishes the job, or — with rollback disabled — fails
//! the run with [`ExecuteError::RescaleFailed`] carrying the
//! migration-phase dump. Never a hang: every test runs under a watchdog
//! deadline.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::{
    execute, execute_elastic, Config, ElasticOptions, ElasticPlan, ElasticReport, ExecuteError,
    Pact, RescaleError, RescaleOutcome, RescaleStep, Scope,
};
use naiad_examples::my_share;

/// Per-epoch captured output of the keyed-min dataflow.
type Out = Vec<(u64, Vec<(u64, u64)>)>;
type Captured = Rc<RefCell<Out>>;

const EPOCHS: u64 = 4;

fn inputs() -> Vec<Vec<(u64, u64)>> {
    vec![
        vec![
            (0, 90),
            (1, 80),
            (2, 70),
            (3, 60),
            (4, 50),
            (5, 40),
            (6, 30),
            (7, 20),
        ],
        vec![(0, 95), (1, 40), (2, 75), (3, 30), (4, 55), (5, 45)],
        vec![(0, 10), (2, 20), (6, 5), (7, 25)],
        vec![(1, 35), (3, 25), (4, 15), (5, 50), (6, 1)],
    ]
}

/// Keyed monotonic minimum with *keyed* state registration: the route
/// matches the exchange contract, so the coordinator can re-partition the
/// accumulator onto any worker set.
fn build(scope: &mut Scope) -> (naiad::InputHandle<(u64, u64)>, naiad::ProbeHandle, Captured) {
    let (input, stream) = scope.new_input::<(u64, u64)>();
    let mins = stream.unary(Pact::exchange(|(k, _): &(u64, u64)| *k), "KeyedMin", |info| {
        let acc: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        info.register_keyed_state(acc.clone(), |k: &u64| *k);
        let acc2 = acc;
        move |input: &mut InputPort<(u64, u64)>, output: &mut OutputPort<(u64, u64)>| {
            input.for_each(|time, data| {
                let mut acc = acc2.borrow_mut();
                let mut session = output.session(time);
                for (k, v) in data {
                    let best = acc.entry(k).or_insert(u64::MAX);
                    if v < *best {
                        *best = v;
                        session.give((k, v));
                    }
                }
            });
        }
    });
    (input, mins.probe(), mins.capture())
}

/// The same computation with *opaque* state registration: correct under
/// crash recovery, but carrying no partitioning the rescale coordinator
/// could re-route.
fn build_opaque(
    scope: &mut Scope,
) -> (naiad::InputHandle<(u64, u64)>, naiad::ProbeHandle, Captured) {
    let (input, stream) = scope.new_input::<(u64, u64)>();
    let mins = stream.unary(Pact::exchange(|(k, _): &(u64, u64)| *k), "KeyedMin", |info| {
        let acc: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        info.register_state(acc.clone());
        let acc2 = acc;
        move |input: &mut InputPort<(u64, u64)>, output: &mut OutputPort<(u64, u64)>| {
            input.for_each(|time, data| {
                let mut acc = acc2.borrow_mut();
                let mut session = output.session(time);
                for (k, v) in data {
                    let best = acc.entry(k).or_insert(u64::MAX);
                    if v < *best {
                        *best = v;
                        session.give((k, v));
                    }
                }
            });
        }
    });
    (input, mins.probe(), mins.capture())
}

/// Anti-hang watchdog, as in the chaos soak.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(()) => unreachable!("sender dropped without sending yet the closure returned"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("rescale test exceeded its {secs}s deadline — a run hung")
        }
    }
}

/// The fixed-membership reference: per-epoch sorted output.
fn baseline() -> Vec<Vec<(u64, u64)>> {
    let all = Arc::new(inputs());
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(build);
        for epoch in 0..EPOCHS {
            for r in my_share(&all[epoch as usize], worker.index(), worker.peers()) {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .expect("fixed-membership baseline");
    let merged: Out = results.into_iter().flatten().collect();
    (0..EPOCHS)
        .map(|e| {
            let mut v: Vec<(u64, u64)> = merged
                .iter()
                .filter(|(epoch, _)| *epoch == e)
                .flat_map(|(_, d)| d.iter().copied())
                .collect();
            v.sort();
            v
        })
        .collect()
}

/// The standard elastic driver: construct, restore, feed this phase's
/// logical epochs (replaying the input log where it has them), checkpoint
/// at every boundary the session names.
fn elastic_run(
    plan: ElasticPlan,
    options: ElasticOptions,
    opaque: bool,
) -> Result<ElasticReport<Out>, ExecuteError> {
    let all = Arc::new(inputs());
    execute_elastic(plan, options, move |worker, session| {
        let (mut input, probe, captured) = if opaque {
            worker.dataflow(build_opaque)
        } else {
            worker.dataflow(build)
        };
        session.restore_into(worker);
        if session.resume_epoch() > 0 {
            input.advance_to(session.resume_epoch());
        }
        for epoch in session.resume_epoch()..session.stop_epoch() {
            let records = match session.logged_input::<(u64, u64)>(epoch, worker.index(), 0) {
                Some(records) => records,
                None => {
                    let records = my_share(&all[epoch as usize], worker.index(), worker.peers());
                    session.log_input(epoch, worker.index(), 0, &records);
                    records
                }
            };
            for r in records {
                input.send(r);
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if session.should_checkpoint(epoch) {
                session.checkpoint(worker, epoch);
            }
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
}

/// Bit-identical check across every membership phase: each epoch's merged,
/// sorted output must equal the fixed-membership reference.
fn assert_identical(report: &ElasticReport<Out>, reference: &[Vec<(u64, u64)>]) {
    let merged: Out = report
        .phases
        .iter()
        .flat_map(|phase| phase.results.iter().flatten().cloned())
        .collect();
    for epoch in 0..EPOCHS {
        let mut got: Vec<(u64, u64)> = merged
            .iter()
            .filter(|(e, _)| *e == epoch)
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        got.sort();
        assert_eq!(
            got, reference[epoch as usize],
            "epoch {epoch} diverged across the rescale"
        );
    }
}

/// Growing 2 → 3 workers at a fence preserves the output bit-for-bit,
/// reports a committed outcome, and records the rescale telemetry on
/// every post-fence worker.
#[test]
fn grow_is_bit_identical_and_completes() {
    with_deadline(120, || {
        let reference = baseline();
        let plan = ElasticPlan::new(Config::single_process(2).telemetry(true), EPOCHS)
            .rescale(RescaleStep::new(2, 1, 3));
        let report = elastic_run(plan, ElasticOptions::default(), false).expect("clean grow");

        assert_eq!(report.phases.len(), 2, "one membership change, two phases");
        assert_eq!(report.phases[0].workers, 2);
        assert_eq!(report.phases[0].start_epoch, 0);
        assert_eq!(report.phases[0].stop_epoch, 2);
        assert_eq!(report.phases[0].generation, 0);
        assert_eq!(report.phases[1].workers, 3);
        assert_eq!(report.phases[1].start_epoch, 2);
        assert_eq!(report.phases[1].stop_epoch, EPOCHS);
        assert_eq!(report.phases[1].generation, 1);
        assert!(
            matches!(
                report.outcomes[..],
                [RescaleOutcome::Completed {
                    fence: 2,
                    from_workers: 2,
                    to_workers: 3,
                    ..
                }]
            ),
            "unexpected outcomes: {:?}",
            report.outcomes
        );

        let telemetry = report.telemetry.as_ref().expect("telemetry enabled");
        let rescales: u64 = telemetry.workers.iter().map(|w| w.counters.rescales).sum();
        let migrated: u64 = telemetry
            .workers
            .iter()
            .map(|w| w.counters.partitions_migrated)
            .sum();
        assert_eq!(rescales, 3, "every post-fence worker restores a bundle");
        assert!(migrated > 0, "some shard must carry keyed state");

        assert_identical(&report, &reference);
    });
}

/// Shrinking 2 processes × 1 worker down to a single worker — membership
/// change across process boundaries — is the same operation as growing,
/// and equally lossless.
#[test]
fn shrink_across_processes_is_bit_identical() {
    with_deadline(120, || {
        let reference = baseline();
        let plan = ElasticPlan::new(Config::processes_and_workers(2, 1), EPOCHS)
            .rescale(RescaleStep::new(2, 1, 1));
        let report = elastic_run(plan, ElasticOptions::default(), false).expect("clean shrink");

        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].workers, 2);
        assert_eq!(report.phases[1].workers, 1);
        assert!(
            matches!(
                report.outcomes[..],
                [RescaleOutcome::Completed {
                    fence: 2,
                    from_workers: 2,
                    to_workers: 1,
                    ..
                }]
            ),
            "unexpected outcomes: {:?}",
            report.outcomes
        );
        assert_identical(&report, &reference);
    });
}

/// Two fences in one run — grow 2 → 4 then shrink back 4 → 2 — commit
/// independently, bumping the membership generation each time.
#[test]
fn grow_then_shrink_round_trip() {
    with_deadline(120, || {
        let reference = baseline();
        let plan = ElasticPlan::new(Config::single_process(2), EPOCHS)
            .rescale(RescaleStep::new(1, 1, 4))
            .rescale(RescaleStep::new(3, 1, 2));
        let report = elastic_run(plan, ElasticOptions::default(), false).expect("round trip");

        let shape: Vec<(u64, usize, u64, u64)> = report
            .phases
            .iter()
            .map(|p| (p.generation, p.workers, p.start_epoch, p.stop_epoch))
            .collect();
        assert_eq!(shape, vec![(0, 2, 0, 1), (1, 4, 1, 3), (2, 2, 3, 4)]);
        assert!(
            matches!(
                report.outcomes[..],
                [
                    RescaleOutcome::Completed {
                        fence: 1,
                        from_workers: 2,
                        to_workers: 4,
                        ..
                    },
                    RescaleOutcome::Completed {
                        fence: 3,
                        from_workers: 4,
                        to_workers: 2,
                        ..
                    }
                ]
            ),
            "unexpected outcomes: {:?}",
            report.outcomes
        );
        assert_identical(&report, &reference);
    });
}

/// Opaque (non-keyed) state cannot migrate: with certification off, the
/// snapshot step aborts with the typed reason, membership never changes,
/// and the old worker set finishes the run bit-identically.
#[test]
fn opaque_state_aborts_cleanly_and_the_run_completes() {
    with_deadline(120, || {
        let reference = baseline();
        let plan = ElasticPlan::new(Config::single_process(2), EPOCHS)
            .rescale(RescaleStep::new(2, 1, 3));
        let report = elastic_run(plan, ElasticOptions::default().certify(false), true)
            .expect("an aborted rescale must not kill the run");

        assert!(
            matches!(
                report.outcomes[..],
                [RescaleOutcome::Aborted {
                    fence: 2,
                    error: RescaleError::UnmigratableState { .. },
                }]
            ),
            "unexpected outcomes: {:?}",
            report.outcomes
        );
        for phase in &report.phases {
            assert_eq!(phase.workers, 2, "an aborted rescale keeps membership");
        }
        assert_identical(&report, &reference);
    });
}

/// With rollback disabled, the same abort becomes a typed
/// [`ExecuteError::RescaleFailed`] whose dump names the protocol phase
/// that died.
#[test]
fn rollback_disabled_surfaces_rescale_failed_with_phase_dump() {
    with_deadline(120, || {
        let plan = ElasticPlan::new(Config::single_process(2), EPOCHS)
            .rescale(RescaleStep::new(2, 1, 3));
        let options = ElasticOptions::default()
            .certify(false)
            .rollback_on_abort(false);
        let err = elastic_run(plan, options, true).expect_err("rollback disabled must fail");
        match err {
            ExecuteError::RescaleFailed {
                epoch,
                from_workers,
                to_workers,
                dump,
            } => {
                assert_eq!((epoch, from_workers, to_workers), (2, 2, 3));
                assert!(
                    dump.contains("phase=snapshot"),
                    "dump must name the protocol phase: {dump}"
                );
                assert!(
                    dump.contains("opaque state"),
                    "dump must carry the underlying error: {dump}"
                );
            }
            other => panic!("expected RescaleFailed, got {other:?}"),
        }
    });
}

/// With certification on (the default), an elastic plan over a graph with
/// opaque state never reaches the fence: the `NA0006` rescale-safe
/// certification denies the graph at construction.
#[test]
fn certification_denies_opaque_state_at_build_time() {
    with_deadline(120, || {
        let plan = ElasticPlan::new(Config::single_process(2), EPOCHS)
            .rescale(RescaleStep::new(2, 1, 3));
        let err = elastic_run(plan, ElasticOptions::default(), true)
            .expect_err("certification must deny opaque state");
        assert!(
            matches!(err, ExecuteError::WorkerPanic(_)),
            "build-time denial surfaces as the constructing worker's panic, got {err:?}"
        );
    });
}
