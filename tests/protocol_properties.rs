//! Randomized tests over the progress machinery: the invariants of §2.3
//! must hold for arbitrary graphs, timestamps, and update sequences.
//! Deterministic seeded generation (`naiad-rng`) replaces an external
//! property-testing framework — each case fixes its seed, so failures
//! reproduce exactly.

use std::sync::Arc;

use naiad::graph::{ContextId, GraphBuilder, Location, LogicalGraph, StageId, StageKind};
use naiad::progress::{Accumulator, Pointstamp, PointstampTable};
use naiad::{PartialOrder, Timestamp};
use naiad_rng::Xorshift;

const CASES: usize = 64;

/// Splices a loop context under `parent` fed by `entry`, returning the
/// egress stage. With `nest`, a second loop may be spliced *inside* the
/// body, giving contexts two deep (lexicographic counter timestamps).
fn gen_loop(
    g: &mut GraphBuilder,
    rng: &mut Xorshift,
    parent: ContextId,
    entry: StageId,
    depth: usize,
    nest: bool,
) -> StageId {
    let ctx = g.add_context(parent);
    let ingress = g.add_ingress(&format!("I{depth}"), ctx);
    let feedback = g.add_feedback(&format!("F{depth}"), ctx);
    let body = g.add_stage(&format!("body{depth}"), StageKind::Regular, ctx, 2, 1);
    let egress = g.add_egress(&format!("E{depth}"), ctx);
    g.connect(entry, 0, ingress, 0);
    g.connect(ingress, 0, body, 0);
    g.connect(feedback, 0, body, 1);
    let exit = if nest && rng.chance(0.5) {
        gen_loop(g, rng, ctx, body, depth + 1, false)
    } else {
        body
    };
    g.connect(exit, 0, feedback, 0);
    g.connect(exit, 0, egress, 0);
    egress
}

/// A random but *valid* timely graph: a chain of stages in the root
/// context, an optional diamond (fan-out into two branches re-joined at
/// a two-input stage), and an optional loop context — itself optionally
/// holding a *nested* loop two contexts deep.
fn gen_graph(rng: &mut Xorshift) -> Arc<LogicalGraph> {
    let chain = 1 + rng.below_usize(3);
    let with_diamond = rng.chance(0.5);
    let with_loop = rng.chance(0.5);
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let mut prev = input;
    for i in 0..chain {
        let s = g.add_stage(&format!("s{i}"), StageKind::Regular, ContextId::ROOT, 1, 1);
        g.connect(prev, 0, s, 0);
        prev = s;
    }
    if with_diamond {
        let split = g.add_stage("split", StageKind::Regular, ContextId::ROOT, 1, 2);
        let left = g.add_stage("left", StageKind::Regular, ContextId::ROOT, 1, 1);
        let right = g.add_stage("right", StageKind::Regular, ContextId::ROOT, 1, 1);
        let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
        g.connect(prev, 0, split, 0);
        g.connect(split, 0, left, 0);
        g.connect(split, 1, right, 0);
        g.connect(left, 0, join, 0);
        g.connect(right, 0, join, 1);
        prev = join;
    }
    if with_loop {
        prev = gen_loop(&mut g, rng, ContextId::ROOT, prev, 1, true);
    }
    let tail = g.add_stage("tail", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(prev, 0, tail, 0);
    Arc::new(g.build().expect("constructed graphs are valid"))
}

/// The generator actually produces the advertised variety: diamonds,
/// multi-input stages, and loop contexts nested two deep all appear.
#[test]
fn generator_covers_the_topology_matrix() {
    let mut rng = Xorshift::new(0xB0);
    let (mut saw_diamond, mut saw_nested, mut saw_multi_input) = (false, false, false);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let max_depth = graph.contexts().iter().map(|c| c.depth).max().unwrap_or(0);
        saw_nested |= max_depth >= 2;
        saw_diamond |= graph.stages().iter().any(|s| s.name == "join");
        saw_multi_input |= graph
            .stages()
            .iter()
            .any(|s| s.kind == StageKind::Regular && s.inputs >= 2);
    }
    assert!(saw_diamond, "no diamond generated in {CASES} cases");
    assert!(saw_nested, "no nested loop generated in {CASES} cases");
    assert!(saw_multi_input, "no multi-input stage generated in {CASES} cases");
}

/// A pointstamp at every vertex of the graph with a depth-correct time.
fn all_pointstamps(graph: &Arc<LogicalGraph>, epoch: u64, counter: u64) -> Vec<Pointstamp> {
    (0..graph.stages().len())
        .map(|s| {
            let stage = StageId(s);
            let depth = graph.stage_input_depth(stage);
            let time = if depth == 0 {
                Timestamp::new(epoch)
            } else {
                Timestamp::with_counters(epoch, &vec![counter; depth])
            };
            Pointstamp::at_vertex(time, stage)
        })
        .collect()
}

/// could-result-in is transitive: the foundation of frontier safety.
#[test]
fn could_result_in_is_transitive() {
    let mut rng = Xorshift::new(0xB1);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let ps1 = all_pointstamps(&graph, rng.below(3), rng.below(3));
        let ps2 = all_pointstamps(&graph, rng.below(3), rng.below(3));
        let ps3 = all_pointstamps(&graph, rng.below(3), rng.below(3));
        let m = graph.summaries();
        for a in &ps1 {
            for b in &ps2 {
                for c in &ps3 {
                    let ab = m.could_result_in(&a.time, a.location, &b.time, b.location);
                    let bc = m.could_result_in(&b.time, b.location, &c.time, c.location);
                    if ab && bc {
                        assert!(
                            m.could_result_in(&a.time, a.location, &c.time, c.location),
                            "transitivity violated: {a:?} → {b:?} → {c:?}"
                        );
                    }
                }
            }
        }
    }
}

/// could-result-in is reflexive at any location (the identity path).
#[test]
fn could_result_in_is_reflexive() {
    let mut rng = Xorshift::new(0xB2);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let m = graph.summaries();
        for p in all_pointstamps(&graph, rng.below(3), rng.below(3)) {
            assert!(m.could_result_in(&p.time, p.location, &p.time, p.location));
        }
    }
}

/// Later timestamps at the same location are always reachable, earlier
/// ones never (messages cannot flow backwards in time).
#[test]
fn time_moves_forward_only() {
    let mut rng = Xorshift::new(0xB3);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let c = rng.below(3);
        let m = graph.summaries();
        for p in all_pointstamps(&graph, rng.below(3), c) {
            let later = Timestamp::new(p.time.epoch + 1);
            // Same location, later epoch: reachable via identity.
            assert!(
                m.could_result_in(
                    &p.time,
                    p.location,
                    &Timestamp::with_counters(later.epoch, &vec![0; p.time.depth()]),
                    p.location
                ) || p.time.depth() > 0,
                "later epoch unreachable from {p:?}"
            );
            if p.time.epoch > 0 {
                let earlier = Timestamp::with_counters(p.time.epoch - 1, &vec![c; p.time.depth()]);
                assert!(
                    !m.could_result_in(&p.time, p.location, &earlier, p.location),
                    "earlier epoch reachable from {p:?}"
                );
            }
        }
    }
}

/// Applying and retracting arbitrary update sequences leaves the tracker
/// empty: counts are conserved.
#[test]
fn tracker_updates_conserve() {
    let mut rng = Xorshift::new(0xB4);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let mut table = PointstampTable::new(graph.clone());
        let mut applied = Vec::new();
        for _ in 0..rng.below_usize(20) {
            let stage = StageId(rng.below_usize(graph.stages().len()));
            let depth = graph.stage_input_depth(stage);
            let time = Timestamp::with_counters(rng.below(3), &vec![rng.below(3); depth]);
            let delta = 1 + rng.below(3) as i64;
            let p = Pointstamp::at_vertex(time, stage);
            table.update(p, delta);
            applied.push((p, delta));
        }
        // Retract in reverse order.
        for (p, delta) in applied.into_iter().rev() {
            table.update(p, -delta);
        }
        assert!(table.is_empty(), "counts must conserve to empty");
    }
}

/// Every frontier element is active, and no other active pointstamp
/// could-result-in it.
#[test]
fn frontier_elements_are_minimal() {
    let mut rng = Xorshift::new(0xB5);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let mut table = PointstampTable::new(graph.clone());
        for _ in 0..(1 + rng.below_usize(15)) {
            let stage = StageId(rng.below_usize(graph.stages().len()));
            let depth = graph.stage_input_depth(stage);
            let time = Timestamp::with_counters(rng.below(3), &vec![rng.below(3); depth]);
            table.update(Pointstamp::at_vertex(time, stage), 1);
        }
        let frontier = table.frontier();
        let m = graph.summaries();
        for p in &frontier {
            assert!(table.is_active(p));
            for q in &frontier {
                if p != q {
                    // Frontier elements may relate only symmetrically via
                    // identity (equal pointstamps are deduplicated), so a
                    // one-way could-result-in would contradict minimality.
                    let pq = m.could_result_in(&p.time, p.location, &q.time, q.location);
                    let qp = m.could_result_in(&q.time, q.location, &p.time, p.location);
                    assert!(!(pq ^ qp), "frontier not an antichain: {p:?} vs {q:?}");
                }
            }
        }
    }
}

/// The accumulator conserves deltas: everything deposited is either still
/// buffered or has been flushed, with identical net sums.
#[test]
fn accumulator_conserves_deltas() {
    let mut rng = Xorshift::new(0xB6);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let mut acc = Accumulator::new(graph.clone(), 2);
        let mut deposited: std::collections::HashMap<Pointstamp, i64> = Default::default();
        let mut flushed: std::collections::HashMap<Pointstamp, i64> = Default::default();
        for _ in 0..(1 + rng.below_usize(23)) {
            let delta = rng.below(5) as i64 - 2;
            if delta == 0 {
                continue;
            }
            let stage = StageId(rng.below_usize(graph.stages().len()));
            let depth = graph.stage_input_depth(stage);
            let time = Timestamp::with_counters(rng.below(3), &vec![0; depth]);
            let p = Pointstamp::at_vertex(time, stage);
            *deposited.entry(p).or_insert(0) += delta;
            if let Some(out) = acc.deposit([(p, delta)]) {
                for (q, d) in out {
                    *flushed.entry(q).or_insert(0) += d;
                }
            }
        }
        for (q, d) in acc.flush() {
            *flushed.entry(q).or_insert(0) += d;
        }
        deposited.retain(|_, d| *d != 0);
        flushed.retain(|_, d| *d != 0);
        assert_eq!(deposited, flushed, "deltas must be conserved");
    }
}

/// Positive-before-negative flush ordering holds for arbitrary buffered
/// contents.
#[test]
fn flushes_order_positives_first() {
    let mut rng = Xorshift::new(0xB7);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let mut acc = Accumulator::new(graph.clone(), 2);
        for _ in 0..(1 + rng.below_usize(23)) {
            let delta = rng.below(5) as i64 - 2;
            if delta == 0 {
                continue;
            }
            let stage = StageId(rng.below_usize(graph.stages().len()));
            let depth = graph.stage_input_depth(stage);
            let time = Timestamp::with_counters(rng.below(3), &vec![0; depth]);
            let _ = acc.deposit([(Pointstamp::at_vertex(time, stage), delta)]);
        }
        let out = acc.flush();
        let first_negative = out.iter().position(|(_, d)| *d < 0).unwrap_or(out.len());
        assert!(out[first_negative..].iter().all(|(_, d)| *d < 0));
    }
}

/// Fan-in completeness (§2.3): a two-input join is only done through a
/// time once *both* upstream branches have passed it — the frontier
/// waits for the slower branch, and unblocks when it retires.
#[test]
fn fan_in_waits_for_the_slower_branch() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let split = g.add_stage("split", StageKind::Regular, ContextId::ROOT, 1, 2);
    let left = g.add_stage("left", StageKind::Regular, ContextId::ROOT, 1, 1);
    let right = g.add_stage("right", StageKind::Regular, ContextId::ROOT, 1, 1);
    let join = g.add_stage("join", StageKind::Regular, ContextId::ROOT, 2, 1);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, split, 0);
    g.connect(split, 0, left, 0);
    g.connect(split, 1, right, 0);
    g.connect(left, 0, join, 0);
    g.connect(right, 0, join, 1);
    g.connect(join, 0, out, 0);
    let graph = Arc::new(g.build().expect("diamond is valid"));

    let mut table = PointstampTable::new(graph);
    let slow = Pointstamp::at_vertex(Timestamp::new(1), right);
    table.update(Pointstamp::at_vertex(Timestamp::new(5), left), 1);
    table.update(slow, 1);
    let at_join = Location::Vertex(join);
    // Fully done before either branch's stamp, blocked from epoch 1 on.
    assert!(table.done_through(&Timestamp::new(0), at_join));
    assert!(!table.done_through(&Timestamp::new(1), at_join));
    // Epoch 4 is blocked *only* by the slower branch: retiring it must
    // unblock the join up to (but not through) the faster branch.
    assert!(!table.done_through(&Timestamp::new(4), at_join));
    table.update(slow, -1);
    assert!(table.done_through(&Timestamp::new(4), at_join));
    assert!(!table.done_through(&Timestamp::new(5), at_join));
}

/// Nested-loop reachability (§2.3): with contexts two deep, timestamps
/// order lexicographically — the inner counter advances freely, an
/// outer iteration resets it, and neither counter ever runs backwards.
#[test]
fn nested_loop_counters_order_lexicographically() {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let outer_ctx = g.add_context(ContextId::ROOT);
    let i1 = g.add_ingress("I1", outer_ctx);
    let f1 = g.add_feedback("F1", outer_ctx);
    let merge = g.add_stage("merge", StageKind::Regular, outer_ctx, 2, 1);
    let inner_ctx = g.add_context(outer_ctx);
    let i2 = g.add_ingress("I2", inner_ctx);
    let f2 = g.add_feedback("F2", inner_ctx);
    let body = g.add_stage("body", StageKind::Regular, inner_ctx, 2, 1);
    let e2 = g.add_egress("E2", inner_ctx);
    let e1 = g.add_egress("E1", outer_ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, i1, 0);
    g.connect(i1, 0, merge, 0);
    g.connect(f1, 0, merge, 1);
    g.connect(merge, 0, i2, 0);
    g.connect(i2, 0, body, 0);
    g.connect(f2, 0, body, 1);
    g.connect(body, 0, f2, 0);
    g.connect(body, 0, e2, 0);
    g.connect(e2, 0, f1, 0);
    g.connect(e2, 0, e1, 0);
    g.connect(e1, 0, out, 0);
    let graph = Arc::new(g.build().expect("nested loop is valid"));
    let m = graph.summaries();
    let at = |counters: &[u64]| {
        (
            Timestamp::with_counters(0, counters),
            Location::Vertex(body),
        )
    };
    let cri = |a: &[u64], b: &[u64]| {
        let (ta, la) = at(a);
        let (tb, lb) = at(b);
        m.could_result_in(&ta, la, &tb, lb)
    };
    // The inner feedback advances the innermost counter.
    assert!(cri(&[1, 2], &[1, 3]));
    // An outer iteration increments the outer counter and resets the
    // inner one: [1,2] reaches [2,0] even though 0 < 2 pointwise.
    assert!(cri(&[1, 2], &[2, 0]));
    // Lexicographically earlier times are unreachable in both senses.
    assert!(!cri(&[1, 2], &[1, 1]));
    assert!(!cri(&[2, 0], &[1, 5]));
    // The epoch dominates every loop counter lexicographically: a later
    // epoch is reachable from any counter state, never the reverse.
    let (t0, l0) = at(&[1, 2]);
    let next_epoch = Timestamp::with_counters(1, &[0, 0]);
    assert!(m.could_result_in(&t0, l0, &next_epoch, l0));
    assert!(!m.could_result_in(&next_epoch, l0, &t0, l0));
    // But the input's initial stamp reaches every loop iterate.
    assert!(m.could_result_in(
        &Timestamp::new(0),
        Location::Vertex(input),
        &Timestamp::with_counters(0, &[3, 7]),
        Location::Vertex(body)
    ));
}

/// done_through is monotone: once complete through t, also complete
/// through every earlier time.
#[test]
fn done_through_is_monotone() {
    let mut rng = Xorshift::new(0xB8);
    for _ in 0..CASES {
        let graph = gen_graph(&mut rng);
        let epoch = 1 + rng.below(3);
        let stage = StageId(rng.below_usize(graph.stages().len()));
        let mut table = PointstampTable::initialized(graph.clone(), 1);
        // Retire the input's initial pointstamp so some times complete.
        let input = graph.input_stages().next().expect("has an input");
        table.update(Pointstamp::at_vertex(Timestamp::new(0), input), -1);
        let loc = Location::Vertex(stage);
        let depth = graph.stage_input_depth(stage);
        let t = Timestamp::with_counters(epoch, &vec![0; depth]);
        if table.done_through(&t, loc) {
            for e in 0..epoch {
                let earlier = Timestamp::with_counters(e, &vec![0; depth]);
                assert!(earlier.less_equal(&t));
                assert!(
                    table.done_through(&earlier, loc),
                    "done through {t:?} but not {earlier:?}"
                );
            }
        }
    }
}
