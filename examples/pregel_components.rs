//! Graph processing through the Pregel port (§4.2): connected components
//! by min-label propagation, expressed as a vertex program with a
//! combiner, running over multiple workers.
//!
//! Run with: `cargo run --example pregel_components`

use naiad::{execute, Config};
use naiad_algorithms::datasets::random_graph;
use naiad_pregel::{pregel, Compute, VertexProgram};
use std::collections::HashMap;

struct MinLabel;

impl VertexProgram for MinLabel {
    type State = u64;
    type Msg = u64;

    fn compute(&mut self, ctx: &mut Compute<'_, Self>) {
        let best = ctx.messages().iter().copied().min();
        let improved = match best {
            Some(l) if l < *ctx.state() => {
                *ctx.state_mut() = l;
                true
            }
            _ => ctx.superstep() == 0,
        };
        if improved {
            let label = *ctx.state();
            ctx.send_to_all(label);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: u64, b: u64) -> Option<u64> {
        Some(a.min(b))
    }
}

fn main() {
    let edges = random_graph(200, 260, 7);
    let edges_shared = std::sync::Arc::new(edges);

    let results = execute(Config::single_process(3), move |worker| {
        let (mut seeds, captured) = worker.dataflow(|scope| {
            let (input, seed_stream) = scope.new_input::<(u64, (u64, Vec<u64>))>();
            let components = pregel(&seed_stream, MinLabel, 64);
            (input, components.capture())
        });
        if worker.index() == 0 {
            // Symmetrize and seed each vertex with its own id.
            let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
            for &(a, b) in edges_shared.iter() {
                adjacency.entry(a).or_default().push(b);
                adjacency.entry(b).or_default().push(a);
            }
            for (v, neighbours) in adjacency {
                seeds.send((v, (v, neighbours)));
            }
        }
        seeds.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();

    let mut labels: Vec<(u64, u64)> = results
        .into_iter()
        .flatten()
        .flat_map(|(_, data)| data)
        .collect();
    labels.sort_unstable();
    let mut sizes: HashMap<u64, usize> = HashMap::new();
    for (_, label) in &labels {
        *sizes.entry(*label).or_insert(0) += 1;
    }
    let mut sizes: Vec<(u64, usize)> = sizes.into_iter().collect();
    sizes.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("{} vertices in {} components", labels.len(), sizes.len());
    for (label, n) in sizes.iter().take(5) {
        println!("  component {label:>4}: {n} vertices");
    }
}
