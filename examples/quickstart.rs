//! The prototypical Naiad program (§4.1): an incrementally updatable
//! MapReduce — word counting over epochs of text, with per-epoch results
//! delivered as each epoch completes.
//!
//! Run with: `cargo run --example quickstart`

use naiad::{execute, Config};
use naiad_operators::prelude::*;

fn main() {
    // Two processes of two workers each: records cross simulated process
    // boundaries exactly as they would cross machines.
    let config = Config::processes_and_workers(2, 2);

    execute(config, |worker| {
        // 1a. Define the input stage, 1b. the dataflow graph, and
        // 1c. the per-epoch output callback — the §4.1 pattern.
        let (mut input, probe) = worker.dataflow(|scope| {
            let index = scope.worker_index();
            let (input, lines) = scope.new_input::<String>();
            let counts = lines
                .flat_map(|line: String| {
                    line.split_whitespace()
                        .map(|w| (w.to_string(), ()))
                        .collect::<Vec<_>>()
                })
                .count();
            counts.subscribe(move |epoch, mut data| {
                data.sort();
                for (word, n) in data {
                    println!("[worker {index}] epoch {epoch}: {word:12} {n}");
                }
            });
            let probe = counts.probe();
            (input, probe)
        });

        // 2. Supply epochs of input data.
        let epochs = [
            "the quick brown fox jumps over the lazy dog",
            "the dog barks and the fox runs",
            "no dog and no fox only words",
        ];
        for (e, text) in epochs.iter().enumerate() {
            if worker.index() == 0 {
                input.send(text.to_string());
            }
            input.advance_to(e as u64 + 1);
            // Wait until this epoch's counts are final everywhere.
            worker.step_while(|| !probe.done_through(e as u64));
        }
        input.close();
        worker.step_until_done();
    })
    .unwrap();
}
