//! Datalog-style asynchronous iteration (§4.2): transitive closure from
//! `Where`, `Concat`, `Distinct`, and `Join` inside a loop — none of which
//! requests a blocking notification, so the whole fixed point runs without
//! coordination, exactly the Bloom-style execution the paper describes.
//!
//!   path(x, y) :- edge(x, y).
//!   path(x, z) :- path(x, y), edge(y, z).
//!
//! Run with: `cargo run --example datalog_paths`

use naiad::{execute, Config};
use naiad_operators::prelude::*;

/// Bound on the closure depth: paths longer than any shortest path have
/// no new endpoints, and the naive evaluation below re-derives the full
/// relation each iteration, so the loop must be cut at a diameter bound
/// (per-iteration `distinct` keeps each round small but cannot by itself
/// drain a loop whose body re-emits the fixed point every round).
const MAX_DEPTH: u64 = 16;

fn main() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut edges_in, captured) = worker.dataflow(|scope| {
            let (edges_in, edges) = scope.new_input::<(u64, u64)>();
            // paths = edges.iterate(|paths| paths ⋈ paths ∪ paths).distinct()
            let paths = edges.iterate(Some(MAX_DEPTH), |inner| {
                // The loop context sees the base relation each iteration
                // via the merged input; key paths by their head to join
                // against edges keyed by tail.
                let extended = inner
                    .map(|(x, y)| (y, x))
                    .join(&inner.clone(), |_y, x, z| (*x, *z))
                    .filter(|(x, z)| x != z);
                inner.concat(&extended).distinct()
            });
            (edges_in, paths.distinct().capture())
        });
        if worker.index() == 0 {
            edges_in.send_batch([(0, 1), (1, 2), (2, 3), (5, 6)]);
        }
        edges_in.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();

    let mut paths: Vec<(u64, u64)> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
    paths.sort_unstable();
    paths.dedup();
    println!("transitive closure ({} facts):", paths.len());
    for (x, y) in &paths {
        println!("  path({x}, {y})");
    }
    assert!(paths.contains(&(0, 3)), "closure must reach 0→3");
    assert!(!paths.contains(&(0, 5)), "disconnected islands stay apart");
}
