//! The Figure 1 application (§6.4): real-time queries on continually
//! updated data.
//!
//! Tweets stream in; an incremental connected-components computation
//! maintains the graph of users mentioning other users and the most
//! popular hashtag in each component; interactive queries ask for the top
//! hashtag in a user's component, served either *fresh* (waiting for the
//! current epoch) or *stale* (from the last completed epoch).
//!
//! Run with: `cargo run --example streaming_graph_queries`

use naiad::{execute, Config};
use naiad_algorithms::datasets::tweet_stream;
use naiad_algorithms::wcc::connected_components;
use naiad_operators::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

const USERS: u64 = 500;
const EPOCHS: u64 = 25;
const TWEETS_PER_EPOCH: usize = 200;

fn main() {
    execute(Config::single_process(2), |worker| {
        // Serving state, mirrored from completed epochs by subscribers.
        let cids: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        let tops: Rc<RefCell<HashMap<u64, (u64, u64)>>> = Rc::new(RefCell::new(HashMap::new()));
        let cid_sink = cids.clone();
        let top_sink = tops.clone();

        let (mut mentions_in, mut tags_in, probe) = worker.dataflow(|scope| {
            let (mentions_in, mention_edges) = scope.new_input::<(u64, u64)>();
            let (tags_in, tag_events) = scope.new_input::<(u64, u64)>();

            // Iterative incremental processing (the dashed box in Fig. 1).
            let cid_updates = connected_components(&mention_edges);
            cid_updates.subscribe(move |_epoch, data| {
                cid_sink.borrow_mut().extend(data);
            });

            // Join hashtags with component ids, count per (cid, tag).
            let per_component =
                tag_events.join_accumulate(&cid_updates, |_user, tag, cid| (*cid, *tag));
            let counted = per_component.map(|(cid, tag)| ((cid, tag), ())).count();
            counted.subscribe(move |_epoch, data| {
                let mut tops = top_sink.borrow_mut();
                for ((cid, tag), n) in data {
                    let entry = tops.entry(cid).or_insert((tag, 0));
                    if n >= entry.1 {
                        *entry = (tag, n);
                    }
                }
            });
            (mentions_in, tags_in, cid_updates.probe())
        });

        let tweets = tweet_stream(TWEETS_PER_EPOCH * EPOCHS as usize, USERS, 50, 99);
        for epoch in 0..EPOCHS {
            let lo = epoch as usize * TWEETS_PER_EPOCH;
            let hi = lo + TWEETS_PER_EPOCH;
            for (i, t) in tweets[lo..hi].iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    for &m in &t.mentions {
                        mentions_in.send((t.user, m));
                    }
                    for &h in &t.hashtags {
                        tags_in.send((t.user, h));
                    }
                }
            }
            mentions_in.advance_to(epoch + 1);
            tags_in.advance_to(epoch + 1);

            if worker.index() == 0 && epoch % 5 == 4 {
                let user = (epoch * 13) % USERS;
                // Stale query: immediate answer from completed state.
                let t0 = Instant::now();
                let stale = answer(&cids, &tops, user);
                let stale_us = t0.elapsed().as_micros();
                // Fresh query: wait for this epoch's updates first.
                let t0 = Instant::now();
                worker.step_while(|| !probe.done_through(epoch));
                let fresh = answer(&cids, &tops, user);
                let fresh_us = t0.elapsed().as_micros();
                println!(
                    "epoch {epoch:>3} | user {user:>4} | stale: {} in {stale_us:>5} µs | \
                     fresh: {} in {fresh_us:>6} µs",
                    show(stale),
                    show(fresh)
                );
            } else {
                worker.step_while(|| !probe.done_through(epoch));
            }
        }
        mentions_in.close();
        tags_in.close();
        worker.step_until_done();
    })
    .unwrap();
}

fn answer(
    cids: &Rc<RefCell<HashMap<u64, u64>>>,
    tops: &Rc<RefCell<HashMap<u64, (u64, u64)>>>,
    user: u64,
) -> Option<(u64, u64)> {
    let cid = *cids.borrow().get(&user)?;
    tops.borrow().get(&cid).copied()
}

fn show(answer: Option<(u64, u64)>) -> String {
    match answer {
        Some((tag, n)) => format!("#tag{tag} (x{n})"),
        None => "<no data>".to_string(),
    }
}
