//! Self-hosted critical-path analysis over the in-repo workload catalog.
//!
//! Runs representative dataflows — the §5.4 WordCount benchmark and a
//! deliberately skewed exchange — with the `naiad::introspect` observer
//! installed: the telemetry stream feeds a *second* dataflow on the same
//! runtime, which attributes per-epoch activity, names the straggler,
//! and prints the versioned critical-path JSON-lines export. The final
//! workload closes the loop, letting the autotuner adjust the exchange
//! batch size online and reporting every decision it made.
//!
//! Usage:
//!
//! ```text
//! cargo run --example critical_path_report
//! ```
//!
//! Exit status is non-zero if any workload fails its introspection
//! contract (a summary per closed epoch, ≥95% wall-clock accounting,
//! no tap overflow) — `scripts/verify.sh` runs this as a gate.

use naiad::{execute_with_introspection, Config, IntrospectOptions, IntrospectReport, Worker};
use naiad_algorithms::wordcount::wordcount;

const EPOCHS: u64 = 4;

/// WordCount over repeated Zipf-ish lines, multi-epoch.
fn run_wordcount(worker: &mut Worker) {
    let (mut input, probe) = worker.dataflow(|scope| {
        let (input, lines) = scope.new_input::<String>();
        let probe = wordcount(&lines).probe();
        (input, probe)
    });
    let texts = [
        "the quick brown fox jumps over the lazy dog",
        "the dog barks and the fox runs from the dog",
        "no dog and no fox only words and more words",
        "the end of the stream is the end of the words",
    ];
    for epoch in 0..EPOCHS {
        if worker.index() == 0 {
            for _ in 0..64 {
                input.send(texts[epoch as usize].to_string());
            }
        }
        input.advance_to(epoch + 1);
        worker.step_while(|| !probe.done_through(epoch));
    }
    input.close();
    worker.step_until_done();
}

/// A skewed exchange: every record routes to worker 0, the deliberate
/// straggler the observer should attribute.
fn run_skewed(worker: &mut Worker) {
    use naiad::dataflow::{InputPort, OutputPort};
    use naiad::runtime::Pact;

    let (mut input, probe) = worker.dataflow(|scope| {
        let (input, stream) = scope.new_input::<u64>();
        let probe = stream
            .unary(Pact::exchange(|_| 0), "HotKey", |_info| {
                |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                    input.for_each(|time, data| {
                        let folded = data.iter().map(|x| x % 1001).sum();
                        output.session(time).give(folded);
                    });
                }
            })
            .probe();
        (input, probe)
    });
    let index = worker.index() as u64;
    for epoch in 0..EPOCHS {
        if worker.index() != 0 {
            input.send_batch((0..512).map(|r| epoch * 10_000 + index * 1000 + r));
        }
        input.advance_to(epoch + 1);
        worker.step_while(|| !probe.done_through(epoch));
    }
    input.close();
    worker.step_until_done();
}

/// Checks the introspection contract and prints one workload's report.
fn report(name: &str, report: &IntrospectReport) {
    println!("== {name} ==");
    println!("{}", report.snapshot.critical_path_json_lines());

    assert!(
        !report.summaries.is_empty(),
        "{name}: no critical-path summaries were produced"
    );
    let epochs: Vec<u64> = report.summaries.iter().map(|s| s.epoch).collect();
    for e in 0..EPOCHS {
        assert!(epochs.contains(&e), "{name}: epoch {e} has no summary");
    }
    let mut unique = epochs.clone();
    unique.dedup();
    assert_eq!(unique.len(), epochs.len(), "{name}: an epoch has two summaries");
    assert_eq!(report.tap_dropped, 0, "{name}: the tap overflowed");

    println!("epoch  straggler  skew     busy(ms)  wait(ms)  transit(rec)  progress(upd)");
    for s in &report.summaries {
        // The accounting contract: straggler busy + attributed wait
        // covers ≥95% of the epoch's measured wall clock.
        let accounted = s.busy_max_ns + s.idle_ns;
        assert!(
            accounted * 100 >= s.span_ns * 95,
            "{name}: epoch {} accounts only {accounted} of {} ns",
            s.epoch,
            s.span_ns
        );
        println!(
            "{:>5}  w{:<8}  {:>4}.{:01}x  {:>8.3}  {:>8.3}  {:>12}  {:>13}",
            s.epoch,
            s.critical_worker,
            s.skew_milli / 1000,
            (s.skew_milli % 1000) / 100,
            s.busy_max_ns as f64 / 1e6,
            s.idle_ns as f64 / 1e6,
            s.transit_records,
            s.progress_updates,
        );
    }
    let events: usize = report
        .snapshot
        .workers
        .iter()
        .map(|w| w.events_recorded)
        .sum();
    println!(
        "introspection tax: {} events tapped into {} samples, {} dropped",
        events,
        report.summaries.iter().map(|s| s.samples).sum::<u64>(),
        report.tap_dropped
    );
    println!();
}

fn main() {
    let catalog_config = || {
        Config::processes_and_workers(2, 2)
            .telemetry_capacity(1 << 20)
            .batch_size(256)
    };
    let options = || IntrospectOptions::default().tap_capacity(1 << 20);

    let (_, wc) = execute_with_introspection(catalog_config(), options(), |worker| {
        run_wordcount(worker);
    })
    .expect("wordcount under introspection");
    report("wordcount (2 processes x 2 workers)", &wc);

    let (_, skew) = execute_with_introspection(catalog_config(), options(), |worker| {
        run_skewed(worker);
    })
    .expect("skewed exchange under introspection");
    report("skewed exchange (hot key on worker 0)", &skew);
    assert!(
        skew.summaries
            .iter()
            .filter(|s| s.critical_worker == 0)
            .count()
            * 2
            >= skew.summaries.len(),
        "the hot-key workload should attribute worker 0 as the straggler"
    );

    // Close the loop: same skewed workload, autotuner on.
    let (_, tuned) = execute_with_introspection(
        catalog_config().batch_size(16),
        options().autotune(true),
        |worker| {
            run_skewed(worker);
        },
    )
    .expect("autotuned run");
    report("skewed exchange, autotuned (start batch=16)", &tuned);
    println!("tuning decisions:");
    if tuned.decisions.is_empty() {
        println!("  (none — {EPOCHS} epochs fit inside the first measurement window)");
    }
    for d in &tuned.decisions {
        println!(
            "  epoch {:>3}: {} {} -> {}",
            d.epoch,
            d.knob.name(),
            d.from,
            d.to
        );
        assert!(d.to >= 1 && d.to <= 65_536, "tuner left its bounds");
    }

    println!("critical-path report: OK");
}
