//! Structured telemetry over a multi-worker workload.
//!
//! Runs a word-count dataflow on two simulated processes of two workers
//! each with the event recorder enabled, then prints the unified
//! registry's summary tables — per-worker scheduler counters,
//! per-operator schedule time and record counts, per-class fabric
//! traffic, and the frontier probes — followed by a short excerpt of
//! the SnailTrail-style JSON-lines event log.
//!
//! Run with: `cargo run --example telemetry_report`

use naiad::{execute_with_telemetry, Config};
use naiad_operators::prelude::*;

fn main() {
    let config = Config::processes_and_workers(2, 2).telemetry(true);

    let (_, snapshot) = execute_with_telemetry(config, |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, lines) = scope.new_input::<String>();
            let counts = lines
                .flat_map(|line: String| {
                    line.split_whitespace()
                        .map(|w| (w.to_string(), ()))
                        .collect::<Vec<_>>()
                })
                .count();
            let probe = counts.probe();
            (input, probe)
        });

        let epochs = [
            "the quick brown fox jumps over the lazy dog",
            "the dog barks and the fox runs",
            "no dog and no fox only words",
        ];
        for (e, text) in epochs.iter().enumerate() {
            if worker.index() == 0 {
                // Repeat each line so the exchange carries real volume.
                for _ in 0..50 {
                    input.send(text.to_string());
                }
            }
            input.advance_to(e as u64 + 1);
            worker.step_while(|| !probe.done_through(e as u64));
        }
        input.close();
        worker.step_until_done();
    })
    .unwrap();

    // The unified registry: workers, operators, traffic, frontier.
    println!("{}", snapshot.summary_table());

    println!(
        "totals: {} steps, {} notifications, {} data bytes on the network, \
         {} progress bytes on the network",
        snapshot.total_steps(),
        snapshot.total_notifications(),
        snapshot.data_bytes(false),
        snapshot.progress_bytes(false),
    );

    // A taste of the raw event stream (one JSON object per line; pipe
    // the full dump to a file for SnailTrail-style offline analysis).
    let jsonl = snapshot.events_json_lines();
    let total = jsonl.lines().count();
    println!("\n== event log ({total} events; first 10) ==");
    for line in jsonl.lines().take(10) {
        println!("{line}");
    }
}
