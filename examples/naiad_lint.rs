//! `naiad-lint`: runs the static dataflow analyzer (`naiad::analysis`)
//! over every dataflow shape shipped in this repository — the examples'
//! pipelines, the operator library's iteration/join idioms, the §5–§6
//! algorithm workloads, and the Pregel port — and prints a rustc-style
//! report per dataflow.
//!
//! Usage:
//!
//! ```text
//! cargo run --example naiad_lint              # human-readable report
//! cargo run --example naiad_lint -- --format json
//! cargo run --example naiad_lint -- --only pagerank_vertex
//! ```
//!
//! Exit status is non-zero if any dataflow carries an `Error`-severity
//! diagnostic. The graphs are built (and analyzed) but never run: the
//! analyzer needs only the validated logical graph and its path
//! summaries, so linting the full catalog takes milliseconds.

use naiad::analysis::{AnalysisConfig, AnalysisReport, Severity};
use naiad::{execute, Config, Worker};
use naiad_algorithms::asp::approximate_shortest_paths;
use naiad_algorithms::datasets::Tweet;
use naiad_algorithms::kexposure::k_exposure;
use naiad_algorithms::pagerank::{pagerank_edge, pagerank_pregel, pagerank_vertex};
use naiad_algorithms::scc::strongly_connected_components;
use naiad_algorithms::triangles::triangle_count;
use naiad_algorithms::wcc::connected_components;
use naiad_algorithms::wordcount::wordcount;
use naiad_operators::prelude::*;

/// One catalog entry: a named dataflow constructor. Constructors build
/// the graph inside a throwaway worker and return the analyzer's report;
/// advisory mode (`deny: Never`) is used so the lint report is complete
/// even when a graph would be denied at `Error` severity.
struct Entry {
    name: &'static str,
    build: fn(&mut Worker, &AnalysisConfig) -> AnalysisReport,
}

/// Every in-repo dataflow shape. Each constructor mirrors the real
/// call sites in `examples/`, `crates/operators`, `crates/algorithms`,
/// and `crates/pregel`.
fn catalog() -> Vec<Entry> {
    vec![
        Entry {
            name: "quickstart_wordcount",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, lines) = scope.new_input::<String>();
                    wordcount(&lines).probe();
                })
                .1
            },
        },
        Entry {
            name: "operators_join_aggregate",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_a, left) = scope.new_input::<(u64, u64)>();
                    let (_b, right) = scope.new_input::<(u64, String)>();
                    left.join(&right, |k, v, s: &String| (*k, *v, s.clone()))
                        .probe();
                })
                .1
            },
        },
        Entry {
            name: "operators_iterate_distinct",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, seeds) = scope.new_input::<u64>();
                    seeds
                        .iterate(Some(8), |inner| {
                            inner.map(|x: u64| x / 2).distinct()
                        })
                        .probe();
                })
                .1
            },
        },
        Entry {
            name: "wcc_connected_components",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    connected_components(&edges).probe();
                })
                .1
            },
        },
        Entry {
            name: "pagerank_vertex",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    pagerank_vertex(&edges, 5).probe();
                })
                .1
            },
        },
        Entry {
            name: "pagerank_edge",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let peers = scope.peers();
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    pagerank_edge(&edges, 5, peers).probe();
                })
                .1
            },
        },
        Entry {
            name: "pagerank_pregel",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, seeds) = scope.new_input::<(u64, (f64, Vec<u64>))>();
                    pagerank_pregel(&seeds, 5).probe();
                })
                .1
            },
        },
        Entry {
            name: "asp_shortest_paths",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    approximate_shortest_paths(&edges, vec![0, 1]).probe();
                })
                .1
            },
        },
        Entry {
            name: "scc_nested_loops",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    strongly_connected_components(&edges, 8).probe();
                })
                .1
            },
        },
        Entry {
            name: "triangle_count",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, edges) = scope.new_input::<(u64, u64)>();
                    triangle_count(&edges).probe();
                })
                .1
            },
        },
        Entry {
            name: "k_exposure",
            build: |w, c| {
                w.dataflow_with_report(c, |scope| {
                    let (_input, tweets) = scope.new_input::<Tweet>();
                    k_exposure(&tweets).probe();
                })
                .1
            },
        },
    ]
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

fn main() {
    let mut format = Format::Text;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!("--format expects 'text' or 'json', got {other:?}");
                    std::process::exit(2);
                }
            },
            "--only" => only = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: naiad_lint [--format text|json] [--only <dataflow>]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    // Advisory config: report everything, deny nothing, so the lint
    // output is complete even for graphs `Worker::dataflow` would reject.
    let config = AnalysisConfig {
        deny: Severity::Never,
        ..AnalysisConfig::default()
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_parts = Vec::new();
    for entry in catalog() {
        if let Some(only) = &only {
            if entry.name != only {
                continue;
            }
        }
        let build = entry.build;
        let cfg = config.clone();
        let mut reports = execute(Config::single_process(1), move |worker| {
            build(worker, &cfg)
        })
        .expect("single-process lint run");
        let report = reports.pop().expect("one worker yields one report");
        errors += report.error_count();
        warnings += report.warning_count();
        match format {
            Format::Text => print!("{}", report.render_text(entry.name)),
            Format::Json => json_parts.push(report.render_json(entry.name)),
        }
    }

    match format {
        Format::Text => {
            println!("lint: {errors} error(s), {warnings} warning(s) across the catalog");
        }
        Format::Json => {
            println!("[{}]", json_parts.join(","));
        }
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
