//! Low-level timely dataflow: graph reachability through an explicit loop
//! context, written against the raw vertex API (§2.2) rather than the
//! operator library — ingress, feedback, and egress are wired by hand, and
//! the vertex mixes asynchronous `OnRecv` propagation with loop-carried
//! messages.
//!
//! Run with: `cargo run --example loop_reachability`

use naiad::dataflow::{InputPort, OutputPort};
use naiad::graph::ContextId;
use naiad::runtime::Pact;
use naiad::{execute, Config};
use naiad_operators::hash_of;
use std::collections::{HashMap, HashSet};

fn main() {
    let results = execute(Config::single_process(2), |worker| {
        let (mut edges_in, captured) = worker.dataflow(|scope| {
            let (edges_in, edges) = scope.new_input::<(u64, u64)>();
            let mut scope2 = edges.scope();

            // Build the loop by hand: enter, merge with the feedback
            // cycle, propagate, feed back, and leave.
            let lc = scope2.loop_context(ContextId::ROOT);
            let entered = lc.enter(&edges);
            let (handle, cycle) = lc.feedback::<u64>(None);

            let reached = entered.binary(
                &cycle,
                Pact::exchange(|(src, _): &(u64, u64)| hash_of(src)),
                Pact::exchange(|n: &u64| hash_of(n)),
                "Reach",
                |_info| {
                    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
                    let mut reached: HashSet<u64> = HashSet::new();
                    move |edges: &mut InputPort<(u64, u64)>,
                          frontier: &mut InputPort<u64>,
                          output: &mut OutputPort<u64>| {
                        edges.for_each(|time, data| {
                            let mut session = output.session(time);
                            for (src, dst) in data {
                                adjacency.entry(src).or_default().push(dst);
                                if src == 0 && reached.insert(0) {
                                    session.give(0);
                                }
                                // A freshly added edge from a reached node
                                // extends the frontier immediately.
                                if reached.contains(&src) {
                                    session.give(dst);
                                }
                            }
                        });
                        frontier.for_each(|time, data| {
                            let mut session = output.session(time);
                            for node in data {
                                if reached.insert(node) {
                                    for next in adjacency.get(&node).into_iter().flatten() {
                                        session.give(*next);
                                    }
                                }
                            }
                        });
                    }
                },
            );
            handle.connect(&reached);
            let out = lc.leave(&reached);
            (edges_in, out.capture())
        });

        // A chain 0→1→2→3, a diamond to 5, and an unreachable island 10→11.
        if worker.index() == 0 {
            edges_in.send_batch([(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (2, 5), (10, 11)]);
        }
        edges_in.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();

    let mut reached: Vec<u64> = results
        .into_iter()
        .flatten()
        .flat_map(|(_, data)| data)
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    reached.sort_unstable();
    println!("reachable from 0: {reached:?}");
    assert_eq!(reached, vec![0, 1, 2, 3, 4, 5]);
}
