//! Overload report: a skewed word count driven past what its hottest
//! consumer can absorb, under credit-based flow control (DESIGN.md §15).
//!
//! One worker produces word batches where a single hot key carries most
//! of the volume, so the exchange funnels ~85% of all records at the
//! worker that counts them — and that worker dawdles, draining at
//! roughly half the offered rate (2× overload). With a small credit
//! budget the flow layer must absorb the mismatch: senders park on
//! exhausted credit cells, the overload monitor walks its state
//! machine, and the run still completes lossless under `Block` policy.
//!
//! The report prints three things the soak tests only assert on:
//!
//! 1. the cluster-wide flow gauges (peak in-flight vs. budget),
//! 2. the overload-state timeline (every `Normal → Throttled →
//!    Shedding` transition, per worker, with timestamps),
//! 3. credit-wait attribution: which connector senders blocked on,
//!    how often, and for how long.
//!
//! The invariants double as a CI gate (scripts/verify.sh runs this):
//! every offered record is delivered or counted as shed, all spent
//! credits drain by the join, and the overload machinery actually
//! engaged. Any violation panics, so the process exits non-zero.
//!
//! Run with: `cargo run --release --example overload_report`

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::thread;
use std::time::Duration;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::telemetry::TelemetryEvent;
use naiad::{execute_with_telemetry, Config, FlowConfig, Pact};

const EPOCHS: u64 = 6;
const WORDS_PER_EPOCH: usize = 3_000;
const BUDGET: usize = 8 << 10;

/// ~85% of each epoch is the hot word, the rest cycles a cold tail.
fn skewed_words(epoch: u64) -> Vec<String> {
    const TAIL: [&str; 6] = ["fox", "dog", "jumps", "over", "lazy", "quick"];
    (0..WORDS_PER_EPOCH)
        .map(|i| {
            if (i + epoch as usize) % 100 < 85 {
                "the".to_string()
            } else {
                TAIL[i % TAIL.len()].to_string()
            }
        })
        .collect()
}

fn state_name(s: u8) -> &'static str {
    match s {
        0 => "Normal",
        1 => "Throttled",
        2 => "Shedding",
        _ => "?",
    }
}

fn main() {
    let flow = FlowConfig::default()
        .budget(BUDGET)
        .credit_wait(Duration::from_millis(500))
        .thresholds(0.05, 0.1);
    let config = Config::processes_and_workers(1, 2)
        .batch_size(64)
        .telemetry(true)
        .flow(flow);

    let (counts, snapshot) = execute_with_telemetry(config, |worker| {
        let (mut input, probe, counted) = worker.dataflow(|scope| {
            let (input, words) = scope.new_input::<String>();
            let counted: Rc<RefCell<BTreeMap<String, u64>>> = Rc::default();
            let sink = Rc::clone(&counted);
            // Route the hot word to worker 1 so the skew is guaranteed,
            // and dawdle there: the counter drains at roughly half the
            // rate the producer offers, which is the overload under test.
            let route = Pact::exchange(|w: &String| {
                if w == "the" {
                    1
                } else {
                    w.len() as u64
                }
            });
            let stream = words.unary(route, "Count", move |_info| {
                move |input: &mut InputPort<String>, _output: &mut OutputPort<String>| {
                    input.for_each(|_time, data| {
                        thread::sleep(Duration::from_millis(2));
                        let mut counts = sink.borrow_mut();
                        for w in data {
                            *counts.entry(w).or_insert(0) += 1;
                        }
                    });
                }
            });
            (input, stream.probe(), counted)
        });

        for epoch in 0..EPOCHS {
            if worker.index() == 0 {
                for w in skewed_words(epoch) {
                    input.send(w);
                }
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        input.close();
        worker.step_until_done();
        let result = counted.borrow().clone();
        result
    })
    .expect("overloaded run completes: backpressure degrades throughput, not liveness");

    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for per_worker in counts {
        for (w, n) in per_worker {
            *merged.entry(w).or_insert(0) += n;
        }
    }
    let delivered: u64 = merged.values().sum();
    let offered = EPOCHS * WORDS_PER_EPOCH as u64;
    let flow = snapshot.flow;

    println!("== overload report: skewed word count at ~2x load ==");
    println!(
        "offered {offered} records over {EPOCHS} epochs; delivered {delivered}, shed {}",
        flow.shed_records
    );
    println!("hot key 'the': {} records", merged.get("the").copied().unwrap_or(0));

    println!("\n== flow gauges ==");
    println!("budget                {BUDGET} bytes");
    println!("peak in-flight        {} bytes", flow.peak_in_flight_bytes);
    println!("in-flight after join  {} bytes", flow.in_flight_bytes);
    println!("credit waits          {}", flow.credit_waits);
    println!(
        "credit wait time      {:.1} ms",
        flow.credit_wait_ns as f64 / 1e6
    );
    println!("credit returns        {}", flow.credit_returns);
    println!("overdrafts            {}", flow.overdrafts);

    // Overload-state timeline: every monitor transition, in per-worker
    // recording order (per-worker clocks, so times compare within a row).
    println!("\n== overload-state timeline ==");
    let mut transitions = 0usize;
    for log in &snapshot.logs {
        for rec in &log.events {
            if let TelemetryEvent::OverloadTransition { from, to } = rec.event {
                transitions += 1;
                println!(
                    "t+{:>8.2} ms  worker {}  {} -> {}",
                    rec.nanos as f64 / 1e6,
                    log.worker,
                    state_name(from),
                    state_name(to)
                );
            }
        }
    }
    if transitions == 0 {
        println!("(no transitions recorded)");
    }

    // Credit-wait attribution: which connector the parked senders were
    // trying to push into, resolved to stage names via the directory.
    println!("\n== credit-wait attribution ==");
    let mut by_conn: BTreeMap<(u32, u32), (u64, u64, u64)> = BTreeMap::new();
    for log in &snapshot.logs {
        for rec in &log.events {
            if let TelemetryEvent::CreditWait {
                dataflow,
                connector,
                waited_ns,
                bytes,
            } = rec.event
            {
                let e = by_conn.entry((dataflow, connector)).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += waited_ns;
                e.2 += u64::from(bytes);
            }
        }
    }
    for (&(dataflow, connector), &(waits, ns, bytes)) in &by_conn {
        let name = snapshot
            .logs
            .iter()
            .flat_map(|l| l.directory.iter())
            .find(|d| d.dataflow == dataflow)
            .and_then(|d| {
                let src = *d.connector_src.get(connector as usize)?;
                let dst = *d.connector_dst.get(connector as usize)?;
                // Only scheduled operators carry names; an unnamed
                // stage is an ingress or capture vertex.
                let stage = |s: u32| {
                    d.operators
                        .iter()
                        .find(|(id, _)| *id == s)
                        .map_or_else(|| format!("stage {s}"), |(_, n)| n.clone())
                };
                Some(format!("{} -> {}", stage(src), stage(dst)))
            })
            .unwrap_or_else(|| "?".to_string());
        println!(
            "df {dataflow} conn {connector} ({name}): {waits} waits, {:.1} ms total, {bytes} bytes delayed",
            ns as f64 / 1e6
        );
    }
    if by_conn.is_empty() {
        println!("(no credit waits recorded)");
    }

    // The gate: exact accounting, clean drain, and the flow layer must
    // actually have engaged — a silent run means the overload never
    // materialized and the report proved nothing.
    assert_eq!(
        delivered + flow.shed_records,
        offered,
        "every offered record is delivered or counted as shed"
    );
    assert_eq!(flow.in_flight_bytes, 0, "all spent credits drain by the join");
    assert_eq!(flow.shed_records, 0, "Block policy is lossless");
    assert!(flow.credit_waits > 0, "the budget must bind under 2x load");
    assert!(
        transitions > 0,
        "the overload monitor must leave Normal under 2x load"
    );
    println!("\nok: lossless under 2x overload, credits drained, monitor engaged");
}
