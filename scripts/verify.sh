#!/usr/bin/env bash
# Offline verification: build the whole workspace warning-clean, lint it
# with clippy, and run every test (unit, doc, integration — including the
# fault-injection, recovery, and telemetry suites). No network access is
# required: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== unsafe-free gate =="
# Every crate root must carry #![forbid(unsafe_code)]; the compiler then
# rejects any `unsafe` token in that crate, so no source grep is needed.
for root in src/lib.rs crates/*/src/lib.rs; do
  if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
    echo "verify: FAIL — $root is missing #![forbid(unsafe_code)]"
    exit 1
  fi
done

echo "== source invariant linter (naiad-lint-src, NS0001-NS0006) =="
# Token-level replacement for the old flow-exempt/slab-exempt grep|awk
# gates, plus the rules those gates could not express: unbounded channels
# (NS0001) and hot-path allocations (NS0002) with scope-aware marker
# attachment, nondeterminism in deterministic modules (NS0003), panic
# paths in runtime/ (NS0004), telemetry conservation (NS0005), and
# lock-order cycles (NS0006). See DESIGN.md §17.
cargo run -q --release -p naiad-lints --bin naiad-lint-src

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== clippy (workspace, all targets, + pedantic selections) =="
# The pedantic selections (-W …) must precede -D warnings so they are
# promoted to errors along with everything else.
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- \
    -W clippy::redundant_clone \
    -W clippy::needless_pass_by_value \
    -W clippy::inefficient_to_string \
    -D warnings
else
  echo "clippy not installed; skipping lint gate"
fi

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== allocation-budget gate (zero-copy data plane) =="
# The counting-allocator harness re-runs in release mode: the fig6a
# exchange at 1x/4x/16x volume must hold steady-state allocations flat
# (a per-batch constant, never per-record — DESIGN.md §16).
cargo test -q --release --test alloc_budget

echo "== static dataflow analyzer (naiad-lint over the in-repo catalog) =="
# Exits non-zero if any in-repo dataflow carries an Error-severity
# diagnostic (NA0001–NA0006; DESIGN.md §12).
cargo run -q --release --example naiad_lint

echo "== self-hosted critical-path report (introspection gate) =="
# Runs the workload catalog under execute_with_introspection; the example
# asserts one summary per closed epoch, >=95% wall-clock accounting, no
# tap overflow, and bounded tuning decisions (DESIGN.md §14).
cargo run -q --release --example critical_path_report >/dev/null

echo "== overload report (flow-control gate) =="
# Skewed word count at ~2x the consumer's drain rate under a small
# credit budget; the example asserts exact record accounting, a clean
# credit drain, and that the overload monitor engaged (DESIGN.md §15).
cargo run -q --release --example overload_report >/dev/null

# Extended chaos soak: CHAOS_SOAK_SEEDS=n runs n extra seeded composite
# fault schedules past the 32 the workspace tests always cover. The CI
# chaos-soak job sets it; local runs may too (e.g. CHAOS_SOAK_SEEDS=96).
if [[ "${CHAOS_SOAK_SEEDS:-0}" != "0" ]]; then
  echo "== chaos soak (+${CHAOS_SOAK_SEEDS} seeds) =="
  timeout "${CHAOS_SOAK_DEADLINE:-1800}" \
    cargo test -q --test chaos_soak -- extended_soak_honours_env
fi

# Extended rescale-under-fault soak: RESCALE_SOAK_SEEDS=n runs n extra
# seeds of the elastic matrix (the same fault plans with a grow or shrink
# membership change fenced mid-run) past the 32 the workspace tests
# always cover. The CI chaos-soak job sets it.
if [[ "${RESCALE_SOAK_SEEDS:-0}" != "0" ]]; then
  echo "== rescale soak (+${RESCALE_SOAK_SEEDS} seeds) =="
  timeout "${RESCALE_SOAK_DEADLINE:-1800}" \
    cargo test -q --test chaos_soak -- extended_rescale_soak_honours_env
fi

# Extended introspection soak: INTROSPECT_SOAK_SEEDS=n runs n extra
# seeded lossy fault schedules with the self-hosted observer installed,
# asserting per-epoch output stays bit-identical to the fault-free
# reference and every epoch gets a critical-path summary. The CI
# chaos-soak job sets it.
if [[ "${INTROSPECT_SOAK_SEEDS:-0}" != "0" ]]; then
  echo "== introspection soak (+${INTROSPECT_SOAK_SEEDS} seeds) =="
  timeout "${INTROSPECT_SOAK_DEADLINE:-1800}" \
    cargo test -q --test chaos_soak -- extended_introspect_soak_honours_env
fi

# Extended overload soak: OVERLOAD_SOAK_SEEDS=n runs n extra seeded
# 2x-offered-load schedules against a dawdling consumer, asserting the
# peak in-flight data-plane bytes stay within the credit budget and the
# run is lossless (Block) or exactly accounted (Shed). The CI chaos-soak
# job sets it.
if [[ "${OVERLOAD_SOAK_SEEDS:-0}" != "0" ]]; then
  echo "== overload soak (+${OVERLOAD_SOAK_SEEDS} seeds) =="
  timeout "${OVERLOAD_SOAK_DEADLINE:-1800}" \
    cargo test -q --test chaos_soak -- extended_overload_soak_honours_env
fi

# Bounded model-check smoke: one pass over the protocol model-checker's
# acceptance matrix (DESIGN.md §11) on the pinned base seeds, with the
# safety/FIFO/liveness oracles live. MODEL_CHECK_SEEDS=n sweeps n extra
# behaviour seeds, mirroring the chaos soak contract (CI sets 32).
echo "== model-check smoke (base seeds${MODEL_CHECK_SEEDS:+ +$MODEL_CHECK_SEEDS extra}) =="
timeout "${MODEL_CHECK_DEADLINE:-900}" \
  cargo test -q --release -p naiad --test model_check

echo "verify: OK"
