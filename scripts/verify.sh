#!/usr/bin/env bash
# Offline verification: build the whole workspace warning-clean and run
# every test (unit, doc, integration — including the fault-injection and
# recovery suites). No network access is required: the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test -q --workspace

echo "verify: OK"
