//! A discrete-event cluster simulator for the paper's cluster-scale
//! experiments.
//!
//! The paper's timing figures (6a, 6b, 6d, 6e, 7a, 7b) were measured on
//! two racks of 32 computers with Gigabit NICs. This reproduction runs on
//! one core, so wall-clock scaling cannot be *measured*; instead this
//! crate simulates the paper's hardware at the granularity the figures
//! need — synchronized phases of computation and communication — while
//! the real runtime (the `naiad` crate) supplies correctness, byte
//! counts, and per-record costs.
//!
//! The model, per phase:
//!
//! * computation time is `work / capacity` per worker, with the slowest
//!   worker gating the phase;
//! * communication time is the worst bottleneck among each NIC's egress
//!   and ingress bytes and the inter-rack uplink (flows share links
//!   fairly, which for all-to-all traffic reduces to this max);
//! * coordination (the progress protocol of §3.3) costs an
//!   accumulate-and-broadcast round trip of small messages;
//! * *micro-stragglers* (§3.5) strike any phase with a configurable
//!   probability per participant: a packet loss costs a retransmit
//!   timeout, a GC pause costs a longer stall. The more participants a
//!   phase has, the likelier its tail is struck — the paper's central
//!   scaling obstacle, reproduced by construction.
//!
//! Determinism: the simulator uses a seeded xorshift generator, so every
//! figure regenerates identically.

#![forbid(unsafe_code)]

mod model;
mod telemetry;
mod workloads;

pub use model::{
    ClusterSim, ClusterSpec, FailureModel, HeartbeatModel, IntrospectionModel, PhaseStats,
    RecoveryStats, RescaleModel, StragglerModel,
};
pub use telemetry::{PhaseAgg, SimTelemetry};
/// Re-export of the shared seeded generator (previously a private module
/// here; now the workspace-wide randomness primitive).
pub use naiad_rng::Xorshift;
pub use workloads::{
    allreduce_iteration_time, barrier_distribution, exchange_throughput_gbps, iterative_job_time,
    AllReduceKind, IterativeJob,
};
