//! Seeded xorshift64* generator: deterministic, dependency-light, and
//! adequate for straggler injection.

#[derive(Debug, Clone)]
pub(crate) struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub(crate) fn new(seed: u64) -> Self {
        Xorshift {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponentially distributed with the given mean.
    pub(crate) fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_is_in_range_and_varied() {
        let mut rng = Xorshift::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = Xorshift::new(5);
        let mean = (0..20_000).map(|_| rng.exponential(2.0)).sum::<f64>() / 20_000.0;
        assert!((1.9..2.1).contains(&mean), "mean {mean}");
    }
}
