//! Phase-level telemetry for the simulated cluster.
//!
//! The real runtime's registry (`naiad::telemetry`) aggregates measured
//! events; the simulator mirrors the same shape at phase granularity so
//! the figure harnesses can report *where* simulated wall-clock went —
//! compute, exchange, or coordination — and how much of it was
//! micro-straggler delay (§3.5).

use crate::model::PhaseStats;

/// Aggregates over one kind of simulated phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseAgg {
    /// Phases simulated.
    pub phases: u64,
    /// Total simulated seconds.
    pub seconds: f64,
    /// Seconds attributable to micro-stragglers.
    pub straggler_seconds: f64,
    /// Phases struck by at least one straggler.
    pub struck: u64,
    /// Worst single straggler delay, seconds.
    pub worst_straggler: f64,
}

impl PhaseAgg {
    fn record(&mut self, stats: PhaseStats) {
        self.phases += 1;
        self.seconds += stats.duration;
        self.straggler_seconds += stats.straggler_delay;
        if stats.straggler_delay > 0.0 {
            self.struck += 1;
        }
        if stats.straggler_delay > self.worst_straggler {
            self.worst_straggler = stats.straggler_delay;
        }
    }
}

/// Where a simulated run's wall-clock went, by phase kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimTelemetry {
    /// Computation phases.
    pub compute: PhaseAgg,
    /// All-to-all exchange phases.
    pub exchange: PhaseAgg,
    /// Progress-coordination rounds (§3.3).
    pub coordination: PhaseAgg,
    /// Elastic-rescale stalls (quiesce + snapshot + transfer + restore +
    /// replay).
    pub rescale: PhaseAgg,
    /// Introspection tax (recorder appends, tap drain, sample exchange,
    /// analysis fold).
    pub introspection: PhaseAgg,
}

impl SimTelemetry {
    pub(crate) fn record_compute(&mut self, stats: PhaseStats) {
        self.compute.record(stats);
    }

    pub(crate) fn record_exchange(&mut self, stats: PhaseStats) {
        self.exchange.record(stats);
    }

    pub(crate) fn record_coordination(&mut self, stats: PhaseStats) {
        self.coordination.record(stats);
    }

    pub(crate) fn record_rescale(&mut self, stats: PhaseStats) {
        self.rescale.record(stats);
    }

    pub(crate) fn record_introspection(&mut self, stats: PhaseStats) {
        self.introspection.record(stats);
    }

    /// Total simulated seconds across every phase kind.
    pub fn total_seconds(&self) -> f64 {
        self.compute.seconds
            + self.exchange.seconds
            + self.coordination.seconds
            + self.rescale.seconds
            + self.introspection.seconds
    }

    /// Total straggler-attributable seconds.
    pub fn straggler_seconds(&self) -> f64 {
        self.compute.straggler_seconds
            + self.exchange.straggler_seconds
            + self.coordination.straggler_seconds
            + self.rescale.straggler_seconds
            + self.introspection.straggler_seconds
    }

    /// A per-phase-kind breakdown table, mirroring the real registry's
    /// `summary_table` format.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "== simulated phases ==");
        let _ = writeln!(
            s,
            "{:<13} {:>8} {:>12} {:>13} {:>7} {:>12}",
            "phase", "count", "seconds", "straggler_s", "struck", "worst_ms"
        );
        for (name, agg) in [
            ("compute", &self.compute),
            ("exchange", &self.exchange),
            ("coordination", &self.coordination),
            ("rescale", &self.rescale),
            ("introspection", &self.introspection),
        ] {
            let _ = writeln!(
                s,
                "{:<13} {:>8} {:>12.6} {:>13.6} {:>7} {:>12.3}",
                name,
                agg.phases,
                agg.seconds,
                agg.straggler_seconds,
                agg.struck,
                agg.worst_straggler * 1e3
            );
        }
        let total = self.total_seconds();
        let stragglers = self.straggler_seconds();
        let share = if total > 0.0 {
            100.0 * stragglers / total
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "total: {total:.6} s simulated, {stragglers:.6} s ({share:.1}%) lost to stragglers"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{ClusterSim, ClusterSpec, StragglerModel};

    #[test]
    fn telemetry_accounts_for_every_phase() {
        let mut spec = ClusterSpec::paper_cluster(4);
        spec.straggler = StragglerModel::none();
        let mut sim = ClusterSim::new(spec, 1);
        sim.compute_phase(0.1);
        sim.compute_phase(0.2);
        sim.exchange_phase(1.0e6);
        sim.coordination_round();

        let t = sim.telemetry();
        assert_eq!(t.compute.phases, 2);
        assert_eq!(t.exchange.phases, 1);
        assert_eq!(t.coordination.phases, 1);
        assert_eq!(t.compute.struck, 0, "no stragglers configured");
        assert!((t.total_seconds() - sim.now()).abs() < 1e-12);
    }

    #[test]
    fn stragglers_show_up_in_the_breakdown() {
        let spec = ClusterSpec::paper_cluster(64);
        let mut sim = ClusterSim::new(spec, 7);
        for _ in 0..2000 {
            sim.coordination_round();
        }
        let t = sim.telemetry();
        assert_eq!(t.coordination.phases, 2000);
        assert!(t.coordination.struck > 0, "64 computers must be struck");
        assert!(t.coordination.straggler_seconds > 0.0);
        assert!(t.coordination.worst_straggler >= 0.020, "a retransmit hit");
        let table = t.summary_table();
        assert!(table.contains("== simulated phases =="));
        assert!(table.contains("coordination"));
        assert!(table.contains("lost to stragglers"));
    }
}
