//! Figure-level workload drivers over the cluster model.

use crate::model::{ClusterSim, ClusterSpec};

/// Figure 6a: aggregate all-to-all throughput in Gbps for the three lines
/// — Ideal (NIC line rate), the socket stack, and Naiad exchanging small
/// records whose per-record serialize/partition cost is `cpu_ns_per_record`
/// per worker.
pub fn exchange_throughput_gbps(
    spec: &ClusterSpec,
    record_bytes: f64,
    cpu_ns_per_record: f64,
) -> (f64, f64, f64) {
    let n = spec.computers as f64;
    let ideal = n * spec.nic_bps / 1e9;
    let socket = ideal * spec.socket_efficiency;
    // Naiad is the slower of the socket path and the CPU path: workers
    // serialize and route records at a bounded rate.
    let worker_records_per_sec = 1.0e9 / cpu_ns_per_record;
    let cpu_bps_per_computer =
        worker_records_per_sec * spec.workers_per_computer as f64 * record_bytes * 8.0;
    let naiad_per_computer = cpu_bps_per_computer.min(spec.nic_bps * spec.socket_efficiency);
    (ideal, socket, naiad_per_computer * n / 1e9)
}

/// Figure 6b: the distribution of global-barrier latencies over
/// `iterations` empty coordination rounds. Returns sorted seconds.
pub fn barrier_distribution(spec: &ClusterSpec, iterations: usize, seed: u64) -> Vec<f64> {
    let mut sim = ClusterSim::new(spec.clone(), seed);
    let mut out: Vec<f64> = (0..iterations)
        .map(|_| sim.coordination_round().duration)
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

/// An iterative job: per-iteration totals across the whole cluster.
#[derive(Debug, Clone)]
pub struct IterativeJob {
    /// Per iteration: (total CPU-seconds across all workers,
    /// total bytes exchanged across all computers).
    pub iterations: Vec<(f64, f64)>,
    /// Coordination rounds per iteration (1 for barrier-per-iteration
    /// algorithms; WCC's async tail still pays one to detect quiescence).
    pub coordination_per_iteration: usize,
}

impl IterativeJob {
    /// A single-phase job (e.g. WordCount: map, exchange, reduce).
    pub fn single_phase(total_cpu_seconds: f64, total_exchange_bytes: f64) -> Self {
        IterativeJob {
            iterations: vec![(total_cpu_seconds, total_exchange_bytes)],
            coordination_per_iteration: 1,
        }
    }

    /// A fixpoint job whose per-iteration activity decays geometrically
    /// (WCC: heavy early exchange, long sparse latency-bound tail).
    pub fn decaying(
        total_cpu_seconds: f64,
        total_exchange_bytes: f64,
        iterations: usize,
        decay: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&decay));
        let norm: f64 = (0..iterations).map(|i| decay.powi(i as i32)).sum();
        let iters = (0..iterations)
            .map(|i| {
                let share = decay.powi(i as i32) / norm;
                (total_cpu_seconds * share, total_exchange_bytes * share)
            })
            .collect();
        IterativeJob {
            iterations: iters,
            coordination_per_iteration: 1,
        }
    }
}

/// Total wall-clock seconds for `job` on `spec`.
pub fn iterative_job_time(spec: &ClusterSpec, job: &IterativeJob, seed: u64) -> f64 {
    let mut sim = ClusterSim::new(spec.clone(), seed);
    for &(cpu_total, bytes_total) in &job.iterations {
        let per_worker = cpu_total / spec.total_workers() as f64;
        sim.compute_phase(per_worker);
        sim.exchange_phase(bytes_total / spec.computers as f64);
        for _ in 0..job.coordination_per_iteration {
            sim.coordination_round();
        }
    }
    sim.now()
}

/// The two AllReduce strategies of §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceKind {
    /// Naiad's data-parallel AllReduce: each of `k` workers reduces and
    /// broadcasts `1/k` of the vector; per-computer traffic is ~2× the
    /// vector, independent of cluster size, with combining across the
    /// processes sharing a machine.
    DataParallel,
    /// Vowpal Wabbit's binary tree with `processes_per_computer`
    /// independent processes: each process sends the full vector up and
    /// down the tree, with no same-machine combining and a latency chain
    /// of `log₂` sequential hops.
    Tree {
        /// VW processes per computer (the paper runs 3).
        processes_per_computer: usize,
    },
}

/// Seconds for one AllReduce of `vector_bytes`, after
/// `local_compute_seconds` of per-worker training (§6.2's three phases).
pub fn allreduce_iteration_time(
    spec: &ClusterSpec,
    kind: AllReduceKind,
    vector_bytes: f64,
    local_compute_seconds: f64,
    seed: u64,
) -> f64 {
    let mut sim = ClusterSim::new(spec.clone(), seed);
    sim.compute_phase(local_compute_seconds);
    match kind {
        AllReduceKind::DataParallel => {
            // Scatter slices, then broadcast reduced slices: ~2× vector
            // per computer, one logical round trip.
            sim.exchange_phase(vector_bytes);
            sim.exchange_phase(vector_bytes);
            sim.coordination_round();
        }
        AllReduceKind::Tree {
            processes_per_computer,
        } => {
            // The tree is pipelined, so bandwidth is paid roughly once up
            // and once down; but processes sharing a machine do not
            // combine, inflating traffic (~1.5× for the paper's three
            // processes), and each of the log₂ levels adds a latency and
            // straggler-exposed hop.
            let inflation = 1.0 + (processes_per_computer.saturating_sub(1)) as f64 * 0.25;
            let total = (spec.computers * processes_per_computer).max(2);
            let levels = (total as f64).log2().ceil() as usize;
            sim.exchange_phase(vector_bytes * inflation);
            sim.exchange_phase(vector_bytes * inflation);
            for _ in 0..levels {
                sim.coordination_round();
            }
        }
    }
    sim.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StragglerModel;

    fn quiet_spec(computers: usize) -> ClusterSpec {
        let mut spec = ClusterSpec::paper_cluster(computers);
        spec.straggler = StragglerModel::none();
        spec
    }

    #[test]
    fn throughput_scales_linearly_and_orders_hold() {
        let mut last = 0.0;
        for n in [1, 2, 8, 32, 64] {
            let spec = quiet_spec(n);
            let (ideal, socket, naiad) = exchange_throughput_gbps(&spec, 8.0, 50.0);
            assert!(ideal >= socket && socket >= naiad, "ordering at n={n}");
            assert!(naiad > last, "monotone growth at n={n}");
            last = naiad;
            assert!((ideal - n as f64).abs() < 1e-9, "ideal is n Gbps");
        }
    }

    #[test]
    fn small_records_are_cpu_bound_large_are_network_bound() {
        let spec = quiet_spec(8);
        // ~1.2 µs of serialize/route per 8-byte record (near worst case,
        // as the paper notes): CPU-bound, below the socket line.
        let (_, socket, naiad_small) = exchange_throughput_gbps(&spec, 8.0, 1200.0);
        assert!(naiad_small < socket, "8-byte records can't saturate");
        // The same cost amortized over 1 KB records saturates the NIC.
        let (_, socket, naiad_large) = exchange_throughput_gbps(&spec, 1024.0, 1200.0);
        assert!(
            (naiad_large - socket).abs() < 1e-9,
            "large records saturate"
        );
    }

    #[test]
    fn barrier_median_grows_modestly_with_cluster_size() {
        let spec2 = ClusterSpec::paper_cluster(2);
        let spec64 = ClusterSpec::paper_cluster(64);
        let d2 = barrier_distribution(&spec2, 3000, 11);
        let d64 = barrier_distribution(&spec64, 3000, 11);
        let median2 = d2[d2.len() / 2];
        let median64 = d64[d64.len() / 2];
        // Sub-millisecond medians; the paper reports 753 µs at 64.
        assert!(median64 < 1.5e-3, "median64 {median64}");
        assert!(median64 >= median2, "median grows");
        // The 95th percentile shows the micro-straggler impact at scale.
        let p95 = d64[d64.len() * 95 / 100];
        assert!(p95 > 3.0 * median64, "p95 {p95} vs median {median64}");
    }

    #[test]
    fn strong_scaling_speeds_up_then_saturates() {
        // Fixed problem: 200 worker-seconds of CPU, 4 GB exchanged.
        // Communication cost is what bends the curve (§5.4).
        let job = IterativeJob::decaying(200.0, 4.0e9, 20, 0.6);
        let t1 = iterative_job_time(&quiet_spec(1), &job, 5);
        let t8 = iterative_job_time(&quiet_spec(8), &job, 5);
        let t64 = iterative_job_time(&quiet_spec(64), &job, 5);
        assert!(t8 < t1 / 3.0, "useful speedup at 8: {t1} -> {t8}");
        assert!(t64 < t8, "still faster at 64");
        let speedup64 = t1 / t64;
        assert!(
            speedup64 < 64.0 && speedup64 > 4.0,
            "sublinear but real: {speedup64}"
        );
        // Efficiency falls with scale — the communication-bound regime.
        assert!(t1 / t8 / 8.0 > speedup64 / 64.0, "efficiency declines");
    }

    #[test]
    fn weak_scaling_degrades_bounded() {
        // Per-computer work constant (the paper's WCC config: ~20 s of
        // local work and 360 MB sent per computer at every scale).
        let time_at = |n: usize| {
            let job = IterativeJob::decaying(160.0 * n as f64, 0.36e9 * n as f64, 20, 0.6);
            iterative_job_time(&quiet_spec(n), &job, 9)
        };
        let t1 = time_at(1);
        let t2 = time_at(2);
        let t64 = time_at(64);
        let slowdown = t64 / t1;
        // The paper measures ~1.44× for WCC at 64 computers; the shape to
        // hold is "bounded degradation, worst at the largest scale".
        assert!(
            (1.02..2.0).contains(&slowdown),
            "weak-scaling slowdown {slowdown}"
        );
        assert!(t2 / t1 < slowdown, "degradation grows with scale");
    }

    #[test]
    fn data_parallel_allreduce_beats_the_tree_at_scale() {
        let spec = quiet_spec(32);
        let v = 268.0e6; // the paper's 268 MB reduced vector
        let dp = allreduce_iteration_time(&spec, AllReduceKind::DataParallel, v, 1.0, 3);
        let tree = allreduce_iteration_time(
            &spec,
            AllReduceKind::Tree {
                processes_per_computer: 3,
            },
            v,
            1.0,
            3,
        );
        assert!(dp < tree, "data parallel {dp} vs tree {tree}");
        // And the gap is meaningful but not absurd (paper: ~35%).
        assert!(tree / dp < 20.0, "gap too extreme: {}", tree / dp);
    }
}
