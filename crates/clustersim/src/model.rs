//! The cluster model: hardware spec, phase timing, stragglers.

use naiad_rng::Xorshift;

use crate::telemetry::SimTelemetry;

/// Hardware description, defaulted to the paper's evaluation cluster
/// (§5): two racks of 32 computers, two quad-core 2.1 GHz Opterons and a
/// Gigabit NIC each, 40 Gbps uplinks.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of computers.
    pub computers: usize,
    /// Worker threads per computer (the paper uses 8).
    pub workers_per_computer: usize,
    /// Computers per rack (32 in the paper).
    pub rack_size: usize,
    /// NIC bandwidth, bits per second, full duplex.
    pub nic_bps: f64,
    /// Fraction of nominal NIC bandwidth achievable by the socket stack
    /// (TCP/IP and API overheads; the paper's ".NET socket" line sits
    /// around 85% of line rate).
    pub socket_efficiency: f64,
    /// Rack-to-core uplink bandwidth, bits per second.
    pub uplink_bps: f64,
    /// One-way small-message latency between two computers, seconds.
    pub hop_latency: f64,
    /// Fixed per-phase scheduling overhead per computer, seconds (thread
    /// wakeups; §3.3's eventcount optimization keeps this small).
    pub wakeup_overhead: f64,
    /// Per-packet handling cost at an endpoint, seconds: the central
    /// accumulator receives one packet per process and broadcasts one
    /// back, which is what makes barrier latency grow with cluster size.
    pub packet_overhead: f64,
    /// Micro-straggler behaviour (§3.5).
    pub straggler: StragglerModel,
    /// Heartbeat failure detection (`None` = detection leans on progress
    /// traffic and the [`FailureModel`]'s pessimistic timeout, the
    /// pre-heartbeat runtime behaviour).
    pub heartbeat: Option<HeartbeatModel>,
}

/// The micro-straggler model of §3.5: per participant and phase, a small
/// probability of a packet-loss retransmit timeout, and a smaller one of
/// a longer (GC-like) pause.
#[derive(Debug, Clone)]
pub struct StragglerModel {
    /// Probability a participant's phase suffers a retransmit timeout.
    pub loss_probability: f64,
    /// The retransmit timeout (the paper tunes Windows down to 20 ms).
    pub retransmit_timeout: f64,
    /// Probability of a long pause (GC, timer coarseness).
    pub pause_probability: f64,
    /// Mean long-pause duration (exponentially distributed).
    pub mean_pause: f64,
}

impl StragglerModel {
    /// No stragglers: the idealized network.
    pub fn none() -> Self {
        StragglerModel {
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
            pause_probability: 0.0,
            mean_pause: 0.0,
        }
    }

    /// The paper-like default: rare losses with a 20 ms timeout, rarer
    /// multi-millisecond pauses.
    pub fn paper_default() -> Self {
        StragglerModel {
            loss_probability: 0.0015,
            retransmit_timeout: 0.020,
            pause_probability: 0.0004,
            mean_pause: 0.030,
        }
    }
}

/// The analytical counterpart of the runtime's heartbeat failure
/// detector (`Config::heartbeats`): each process emits a small control
/// message every `interval` seconds over the latency-exempt control
/// channel, and a peer silent for `fail_after_intervals` intervals is
/// declared failed. Detection latency then depends on the heartbeat
/// cadence instead of the [`FailureModel`]'s pessimistic
/// progress-traffic timeout.
#[derive(Debug, Clone)]
pub struct HeartbeatModel {
    /// Heartbeat emission interval, seconds.
    pub interval: f64,
    /// Silence threshold before declaring a peer failed, in intervals
    /// (the runtime's `heartbeat_fail_after / heartbeat_interval`).
    pub fail_after_intervals: f64,
    /// Heartbeat payload size, bytes — bookkeeping for the (tiny)
    /// control-plane bandwidth tax.
    pub payload_bytes: f64,
}

impl HeartbeatModel {
    /// A runtime-plausible default: 25 ms beats, failure after 8 silent
    /// intervals (200 ms), 32-byte payloads.
    pub fn paper_default() -> Self {
        HeartbeatModel {
            interval: 0.025,
            fail_after_intervals: 8.0,
            payload_bytes: 32.0,
        }
    }

    /// Expected detection latency for a silent failure: the victim dies
    /// mid-interval on average, then the full silence threshold must
    /// elapse before a peer's detector declares it.
    pub fn detection_latency(&self) -> f64 {
        self.interval * (0.5 + self.fail_after_intervals)
    }
}

/// Whole-process failure and coordinated-rollback recovery (§3.4): the
/// macro-scale counterpart of [`StragglerModel`]'s micro-stragglers.
/// Matches the semantics of the real runtime's `execute_resilient`: on
/// any crash the *entire* cluster rolls back to the last consistent
/// checkpoint and replays logged inputs.
#[derive(Debug, Clone)]
pub struct FailureModel {
    /// Probability an individual computer crashes during any given epoch.
    pub crash_probability_per_epoch: f64,
    /// Time to detect a dead process (missed progress traffic; the
    /// paper's testbed leans on TCP timeouts, tuned to tens of ms, plus
    /// application-level suspicion — order seconds in practice).
    pub detection_timeout: f64,
    /// Seconds to reload one computer's checkpoint blob (storage read +
    /// decode); every computer restores in parallel.
    pub restore_seconds_per_computer: f64,
}

impl FailureModel {
    /// No failures: every epoch completes on the first attempt.
    pub fn none() -> Self {
        FailureModel {
            crash_probability_per_epoch: 0.0,
            detection_timeout: 0.0,
            restore_seconds_per_computer: 0.0,
        }
    }

    /// A paper-plausible default: roughly one crash per thousand
    /// computer-epochs, one-second detection, 200 ms restore.
    pub fn paper_default() -> Self {
        FailureModel {
            crash_probability_per_epoch: 0.001,
            detection_timeout: 1.0,
            restore_seconds_per_computer: 0.2,
        }
    }
}

/// Analytical cost model of an epoch-fence elastic rescale — the
/// simulator counterpart of the runtime's `execute_elastic`
/// (`naiad::runtime::rescale`). A rescale stalls the dataflow for:
///
/// 1. **quiesce** — draining the progress frontier to the fence epoch;
/// 2. **snapshot** — encoding every computer's keyed state into
///    per-partition shards at `codec_bps`;
/// 3. **transfer** — moving re-owned shards over the NICs. Modular key
///    re-routing (`hash % workers`) reassigns almost every key when the
///    worker count changes, so nearly all state crosses the network —
///    the megaphone-style tax the EXPERIMENTS.md table prices;
/// 4. **restore + replay** — decoding on the new worker set and
///    replaying the fence epoch's logged input.
#[derive(Debug, Clone)]
pub struct RescaleModel {
    /// Keyed operator state per computer at the fence, bytes.
    pub state_bytes_per_computer: f64,
    /// Seconds to drain the frontier to the fence (bounded by one epoch's
    /// in-flight work; the runtime's barrier is `closed_through`).
    pub quiesce_seconds: f64,
    /// Checkpoint encode/decode throughput per computer, bytes/second.
    pub codec_bps: f64,
    /// Seconds of logged-input replay for the fence epoch on the new
    /// membership.
    pub replay_seconds: f64,
}

impl RescaleModel {
    /// A runtime-plausible default: 150 MB/s codec, 50 ms quiesce, 100 ms
    /// replay.
    pub fn paper_default(state_bytes_per_computer: f64) -> Self {
        RescaleModel {
            state_bytes_per_computer,
            quiesce_seconds: 0.05,
            codec_bps: 150.0e6,
            replay_seconds: 0.1,
        }
    }

    /// Fraction of keys whose owner changes when re-routing from `from`
    /// to `to` partitions. Modular routing keeps a key in place only when
    /// `h % from == h % to`, which for uniform hashes happens about once
    /// per `max(from, to)` keys — so a rescale moves nearly everything
    /// (unlike consistent hashing's `1 - min/max`).
    pub fn moved_fraction(from: usize, to: usize) -> f64 {
        if from == to {
            0.0
        } else {
            1.0 - 1.0 / from.max(to) as f64
        }
    }
}

/// Analytical cost model of the self-hosted introspection pipeline
/// (`naiad::introspect`): the recorder tax on every worker, the tap
/// drain and event→sample attribution in the step hook, and the observer
/// dataflow's own exchange and analysis work. Prices what Fig 6a-style
/// runs pay for leaving critical-path analysis on — the "introspection
/// tax" EXPERIMENTS.md tables against the runtime's measured numbers.
#[derive(Debug, Clone)]
pub struct IntrospectionModel {
    /// Telemetry events recorded per worker per epoch (schedule slices,
    /// transit, progress traffic, notifications).
    pub events_per_worker_per_epoch: f64,
    /// Seconds per recorder append (a bounds check and a buffer write;
    /// the runtime's regression test holds this under ~100 ns even with
    /// the tap installed).
    pub record_seconds: f64,
    /// Fraction of recorded events that are attributable and become
    /// activity samples (the tap filters the rest).
    pub attributable_fraction: f64,
    /// Seconds to drain, attribute, and enqueue one sample in the step
    /// hook.
    pub sample_seconds: f64,
    /// Serialized bytes per sample crossing the fabric to the epoch's
    /// analysis vertex (the runtime's wire encoding is ~40 bytes).
    pub sample_bytes: f64,
    /// Seconds the analysis vertex spends folding one sample into its
    /// epoch accumulator.
    pub fold_seconds: f64,
}

impl IntrospectionModel {
    /// Runtime-plausible defaults, matching the measured recorder and
    /// accumulator costs: ~60 ns per append, ~150 ns per sample drained,
    /// 40-byte samples, ~80 ns per fold, with roughly 70% of events
    /// attributable.
    pub fn paper_default(events_per_worker_per_epoch: f64) -> Self {
        IntrospectionModel {
            events_per_worker_per_epoch,
            record_seconds: 60.0e-9,
            attributable_fraction: 0.7,
            sample_seconds: 150.0e-9,
            sample_bytes: 40.0,
            fold_seconds: 80.0e-9,
        }
    }

    /// Samples generated per worker per epoch.
    pub fn samples_per_worker(&self) -> f64 {
        self.events_per_worker_per_epoch * self.attributable_fraction
    }
}

/// Outcome of simulating a checkpointed streaming job under a
/// [`FailureModel`] — see [`ClusterSim::recovery_run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryStats {
    /// Total simulated wall-clock, including rollbacks and re-execution.
    pub duration: f64,
    /// Crashes that struck the run.
    pub crashes: usize,
    /// Epochs re-executed because a crash rolled the cluster back past
    /// work it had already completed (the §3.4 recovery tax that
    /// checkpoint frequency trades against).
    pub replayed_epochs: usize,
}

impl ClusterSpec {
    /// The paper's evaluation cluster with `computers` machines.
    pub fn paper_cluster(computers: usize) -> Self {
        ClusterSpec {
            computers,
            workers_per_computer: 8,
            rack_size: 32,
            nic_bps: 1.0e9,
            socket_efficiency: 0.85,
            uplink_bps: 40.0e9,
            hop_latency: 45.0e-6,
            wakeup_overhead: 25.0e-6,
            packet_overhead: 4.0e-6,
            straggler: StragglerModel::paper_default(),
            heartbeat: None,
        }
    }

    /// Total workers across the cluster.
    pub fn total_workers(&self) -> usize {
        self.computers * self.workers_per_computer
    }

    /// Number of racks in use.
    pub fn racks(&self) -> usize {
        self.computers.div_ceil(self.rack_size)
    }
}

/// Timing of one simulated phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Wall-clock duration of the phase, seconds.
    pub duration: f64,
    /// Straggler delay included in `duration`, seconds.
    pub straggler_delay: f64,
}

/// A simulated cluster advancing through synchronized phases.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    spec: ClusterSpec,
    rng: Xorshift,
    clock: f64,
    telemetry: SimTelemetry,
}

impl ClusterSim {
    /// A simulator over `spec`, seeded for reproducibility.
    pub fn new(spec: ClusterSpec, seed: u64) -> Self {
        ClusterSim {
            spec,
            rng: Xorshift::new(seed),
            clock: 0.0,
            telemetry: SimTelemetry::default(),
        }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Simulated seconds elapsed.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Phase-level breakdown of where simulated time went.
    pub fn telemetry(&self) -> &SimTelemetry {
        &self.telemetry
    }

    /// Samples the total straggler delay striking a phase with
    /// `participants` independently exposed participants. Phases gate on
    /// their slowest member, so one struck participant delays everyone;
    /// we take the worst single delay.
    fn sample_stragglers(&mut self, participants: usize) -> f64 {
        let s = self.spec.straggler.clone();
        let mut worst: f64 = 0.0;
        // Sampling per participant is exact but slow for huge clusters;
        // the per-phase hit counts are tiny, so sample hit *counts* from
        // the binomial's expectation instead of looping when large.
        if participants <= 4096 {
            for _ in 0..participants {
                if s.loss_probability > 0.0 && self.rng.unit() < s.loss_probability {
                    worst = worst.max(s.retransmit_timeout);
                }
                if s.pause_probability > 0.0 && self.rng.unit() < s.pause_probability {
                    worst = worst.max(self.rng.exponential(s.mean_pause));
                }
            }
        } else {
            let loss_hits = (participants as f64 * s.loss_probability).round() as usize;
            if loss_hits > 0 {
                worst = worst.max(s.retransmit_timeout);
            }
            let pause_hits = (participants as f64 * s.pause_probability).round() as usize;
            for _ in 0..pause_hits {
                worst = worst.max(self.rng.exponential(s.mean_pause));
            }
        }
        worst
    }

    /// A computation phase: every worker grinds through `cpu_seconds` of
    /// work (already divided per worker by the caller).
    pub fn compute_phase(&mut self, cpu_seconds_per_worker: f64) -> PhaseStats {
        let straggler = self.sample_stragglers(self.spec.computers);
        let duration = cpu_seconds_per_worker + self.spec.wakeup_overhead + straggler;
        self.clock += duration;
        let stats = PhaseStats {
            duration,
            straggler_delay: straggler,
        };
        self.telemetry.record_compute(stats);
        stats
    }

    /// A communication phase: every computer sends `egress_bytes` spread
    /// over the others (all-to-all unless `cross_fraction` lowers the
    /// share leaving the machine). Returns the gating transfer time.
    pub fn exchange_phase(&mut self, egress_bytes_per_computer: f64) -> PhaseStats {
        let n = self.spec.computers as f64;
        // Bytes that actually cross the network per computer.
        let network_bytes = if self.spec.computers > 1 {
            egress_bytes_per_computer * (n - 1.0) / n
        } else {
            0.0
        };
        let nic_rate = self.spec.nic_bps * self.spec.socket_efficiency / 8.0;
        let nic_time = network_bytes / nic_rate;

        // Cross-rack share rides the uplink, shared by the whole rack.
        let racks = self.spec.racks() as f64;
        let uplink_time = if racks > 1.0 {
            let cross_fraction = (racks - 1.0) / racks;
            let per_rack_bytes = network_bytes
                * cross_fraction
                * self.spec.rack_size.min(self.spec.computers) as f64;
            per_rack_bytes / (self.spec.uplink_bps / 8.0)
        } else {
            0.0
        };

        let straggler = self.sample_stragglers(self.spec.computers);
        let duration = nic_time.max(uplink_time) + self.spec.hop_latency + straggler;
        self.clock += duration;
        let stats = PhaseStats {
            duration,
            straggler_delay: straggler,
        };
        self.telemetry.record_exchange(stats);
        stats
    }

    /// A progress-coordination round (§3.3): workers' updates accumulate
    /// per process, flow to the central accumulator, and the net effect is
    /// broadcast back — two hops each way plus per-computer wakeups.
    pub fn coordination_round(&mut self) -> PhaseStats {
        let hops = 4.0; // worker → acc → central → acc → worker
        let wakeups =
            self.spec.wakeup_overhead * (self.spec.workers_per_computer as f64).log2().max(1.0);
        // The central accumulator serially absorbs one packet per process
        // and emits one per process (the incast the paper tunes TCP for).
        let fanout = 2.0 * self.spec.computers as f64 * self.spec.packet_overhead;
        // Scheduling jitter grows mildly with the number of participants.
        let jitter = self.rng.exponential(
            self.spec.hop_latency * 0.3 * (self.spec.computers as f64).log2().max(1.0),
        );
        let straggler = self.sample_stragglers(self.spec.computers);
        // Heartbeat control traffic rides the same endpoints: each round a
        // computer handles roughly one incoming and one outgoing beat's
        // worth of packet processing. Tiny by construction — the detector
        // must not tax the barrier it protects.
        let heartbeat_tax = if self.spec.heartbeat.is_some() {
            2.0 * self.spec.packet_overhead
        } else {
            0.0
        };
        let duration =
            hops * self.spec.hop_latency + wakeups + fanout + jitter + straggler + heartbeat_tax;
        self.clock += duration;
        let stats = PhaseStats {
            duration,
            straggler_delay: straggler,
        };
        self.telemetry.record_coordination(stats);
        stats
    }

    /// Prices the stall of one epoch-fence rescale from `from` to `to`
    /// computers (`self.spec.computers` is the *pre*-rescale count used
    /// for straggler exposure; the slower of the two sets gates each
    /// stage). Returns the full stall as one phase; the simulated clock
    /// advances by it.
    ///
    /// # Panics
    ///
    /// Panics if either computer count is zero.
    pub fn rescale_stall(
        &mut self,
        model: &RescaleModel,
        from: usize,
        to: usize,
    ) -> PhaseStats {
        assert!(from > 0 && to > 0, "rescale between non-empty worker sets");
        let total_state = model.state_bytes_per_computer * from as f64;
        // Snapshot: each pre-rescale computer encodes its own state.
        let snapshot = model.state_bytes_per_computer / model.codec_bps;
        // Transfer: moved bytes leave `from` NICs and land on `to` NICs;
        // the busier side of the narrower set gates.
        let moved = total_state * RescaleModel::moved_fraction(from, to);
        let nic_rate = self.spec.nic_bps * self.spec.socket_efficiency / 8.0;
        let egress = moved / from as f64 / nic_rate;
        let ingress = moved / to as f64 / nic_rate;
        let transfer = egress.max(ingress) + self.spec.hop_latency;
        // Restore: the new membership decodes its share in parallel.
        let restore = total_state / to as f64 / model.codec_bps;
        // Every participant of either membership can straggle the fence.
        let straggler = self.sample_stragglers(from.max(to));
        let duration = model.quiesce_seconds
            + snapshot
            + transfer
            + restore
            + model.replay_seconds
            + straggler;
        self.clock += duration;
        let stats = PhaseStats {
            duration,
            straggler_delay: straggler,
        };
        self.telemetry.record_rescale(stats);
        stats
    }

    /// Prices one epoch's *steady-state* introspection tax: the recorder
    /// appends on the hot path, the step hook's tap drain and
    /// attribution, the sample exchange to the epoch's analysis vertex,
    /// and the accumulator fold. The per-worker costs run in parallel
    /// across the cluster. Samples exchange by epoch, so consecutive
    /// epochs land on *different* analysis vertices and their transfers
    /// and folds pipeline — amortized per epoch, each NIC carries its
    /// own egress plus a 1/n share of the converging ingress, and each
    /// computer folds a 1/n share of the epochs.
    pub fn introspection_phase(&mut self, model: &IntrospectionModel) -> PhaseStats {
        let workers = self.spec.workers_per_computer as f64;
        // Per-worker, parallel: recording and the hook's drain.
        let record = model.events_per_worker_per_epoch * model.record_seconds;
        let drain = model.samples_per_worker() * model.sample_seconds;
        let n = self.spec.computers as f64;
        let total_samples = model.samples_per_worker() * workers * n;
        let total_remote_bytes = if self.spec.computers > 1 {
            total_samples * model.sample_bytes * (n - 1.0) / n
        } else {
            0.0
        };
        // Egress: each computer ships its own remote share. Ingress: one
        // epoch converges on one computer, but epochs rotate, so the
        // amortized per-computer ingress equals the egress — the NIC
        // pays each byte once out, once (on average) in.
        let nic_rate = self.spec.nic_bps * self.spec.socket_efficiency / 8.0;
        let transfer = 2.0 * (total_remote_bytes / n) / nic_rate + self.spec.hop_latency;
        // The fold serializes per epoch at one vertex, but pipelines
        // across the rotating vertices: a 1/n share per computer.
        let fold = total_samples * model.fold_seconds / n;
        // Observation only: no barrier of its own, so no straggler
        // exposure beyond what the phases it shadows already pay.
        let duration = record + drain + transfer + fold;
        self.clock += duration;
        let stats = PhaseStats {
            duration,
            straggler_delay: 0.0,
        };
        self.telemetry.record_introspection(stats);
        stats
    }

    /// Simulates a checkpointed streaming job of `epochs` epochs, each
    /// costing `epoch_seconds` of fault-free wall-clock, with a full
    /// checkpoint every `checkpoint_every` epochs, under `failures`.
    ///
    /// Recovery semantics mirror the real runtime's `execute_resilient`
    /// (coordinated rollback, §3.4): a crash anywhere rolls the whole
    /// cluster back to the last consistent checkpoint; the time already
    /// spent on the abandoned epochs is lost and they are re-executed
    /// after detection + parallel restore.
    pub fn recovery_run(
        &mut self,
        epochs: usize,
        epoch_seconds: f64,
        checkpoint_every: usize,
        checkpoint_seconds: f64,
        failures: &FailureModel,
    ) -> RecoveryStats {
        assert!(checkpoint_every > 0, "checkpoint interval must be positive");
        let start = self.clock;
        let mut crashes = 0usize;
        let mut replayed = 0usize;
        let mut completed = 0usize; // epochs durably finished
        let mut last_checkpoint = 0usize; // rollback target
        let p_epoch = {
            // Probability *some* computer crashes during an epoch.
            let p = failures.crash_probability_per_epoch;
            1.0 - (1.0 - p).powi(self.spec.computers as i32)
        };
        // With heartbeats, detection latency is bounded by the beat
        // cadence; without, the run pays the model's pessimistic
        // progress-traffic timeout (EXPERIMENTS.md plots this trade).
        let detection = self
            .spec
            .heartbeat
            .as_ref()
            .map_or(failures.detection_timeout, HeartbeatModel::detection_latency);
        while completed < epochs {
            // Run the epoch; a crash strikes at a uniform point within it.
            if p_epoch > 0.0 && self.rng.unit() < p_epoch {
                crashes += 1;
                self.clock += self.rng.unit() * epoch_seconds; // wasted partial epoch
                self.clock += detection;
                self.clock += failures.restore_seconds_per_computer; // parallel restore
                replayed += completed - last_checkpoint;
                completed = last_checkpoint;
                continue;
            }
            self.clock += epoch_seconds;
            completed += 1;
            if completed.is_multiple_of(checkpoint_every) {
                self.clock += checkpoint_seconds;
                last_checkpoint = completed;
            }
        }
        RecoveryStats {
            duration: self.clock - start,
            crashes,
            replayed_epochs: replayed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(computers: usize) -> ClusterSim {
        let mut spec = ClusterSpec::paper_cluster(computers);
        spec.straggler = StragglerModel::none();
        ClusterSim::new(spec, 1)
    }

    #[test]
    fn compute_phase_is_work_plus_overhead() {
        let mut sim = quiet(4);
        let stats = sim.compute_phase(0.5);
        assert!((stats.duration - 0.500025).abs() < 1e-9);
        assert_eq!(stats.straggler_delay, 0.0);
        assert!(sim.now() > 0.5);
    }

    #[test]
    fn exchange_is_nic_bound_for_small_clusters() {
        let mut sim = quiet(2);
        // 100 MB egress, half stays local... with 2 computers, 1/2 leaves.
        let stats = sim.exchange_phase(100.0e6);
        let expected = 50.0e6 / (1.0e9 * 0.85 / 8.0);
        assert!(
            (stats.duration - expected - sim.spec().hop_latency).abs() < 1e-6,
            "duration {}",
            stats.duration
        );
    }

    #[test]
    fn single_computer_exchanges_for_free() {
        let mut sim = quiet(1);
        let stats = sim.exchange_phase(1.0e9);
        assert!(stats.duration < 1e-3, "loopback only: {}", stats.duration);
    }

    #[test]
    fn coordination_is_sub_millisecond_without_stragglers() {
        let mut sim = quiet(64);
        let stats = sim.coordination_round();
        assert!(stats.duration < 1e-3, "barrier {}", stats.duration);
        assert!(
            stats.duration > 1e-4,
            "barrier too cheap {}",
            stats.duration
        );
    }

    #[test]
    fn stragglers_fatten_the_tail_with_scale() {
        let spec = ClusterSpec::paper_cluster(64);
        let mut sim = ClusterSim::new(spec, 7);
        let mut delays = Vec::new();
        for _ in 0..2000 {
            delays.push(sim.coordination_round().duration);
        }
        delays.sort_by(f64::total_cmp);
        let median = delays[delays.len() / 2];
        let p95 = delays[delays.len() * 95 / 100];
        assert!(p95 > 4.0 * median, "median {median}, p95 {p95}");

        // A small cluster is struck far less often.
        let mut small = ClusterSim::new(ClusterSpec::paper_cluster(2), 7);
        let struck = (0..2000)
            .filter(|_| small.coordination_round().straggler_delay > 0.0)
            .count();
        let struck_big = delays.iter().filter(|d| **d > 0.005).count();
        assert!(struck * 4 < struck_big, "small {struck}, big {struck_big}");
    }

    #[test]
    fn recovery_run_is_exact_without_failures() {
        let mut sim = quiet(8);
        let stats = sim.recovery_run(100, 0.1, 10, 0.5, &FailureModel::none());
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.replayed_epochs, 0);
        // 100 epochs + 10 checkpoints.
        assert!((stats.duration - (100.0 * 0.1 + 10.0 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn crashes_cost_rollback_and_replay() {
        let mut sim = quiet(64);
        let failures = FailureModel {
            crash_probability_per_epoch: 0.002,
            detection_timeout: 1.0,
            restore_seconds_per_computer: 0.2,
        };
        let clean = quiet(64).recovery_run(200, 0.1, 10, 0.2, &FailureModel::none());
        let faulty = sim.recovery_run(200, 0.1, 10, 0.2, &failures);
        assert!(faulty.crashes > 0, "64 computers × 200 epochs must crash");
        assert!(faulty.replayed_epochs > 0);
        assert!(
            faulty.duration > clean.duration,
            "recovery must cost wall-clock: {} vs {}",
            faulty.duration,
            clean.duration
        );
        // Every crash pays at least detection + restore.
        assert!(
            faulty.duration - clean.duration
                >= faulty.crashes as f64 * (failures.detection_timeout),
            "crashes {} underpriced",
            faulty.crashes
        );
    }

    #[test]
    fn frequent_checkpoints_reduce_replay() {
        let failures = FailureModel {
            crash_probability_per_epoch: 0.002,
            detection_timeout: 0.5,
            restore_seconds_per_computer: 0.1,
        };
        let replay_with = |every: usize| {
            let mut total = 0usize;
            for seed in 0..20 {
                let mut spec = ClusterSpec::paper_cluster(64);
                spec.straggler = StragglerModel::none();
                let mut sim = ClusterSim::new(spec, seed);
                total += sim.recovery_run(200, 0.1, every, 0.05, &failures).replayed_epochs;
            }
            total
        };
        let tight = replay_with(2);
        let loose = replay_with(50);
        assert!(
            tight < loose,
            "checkpointing every 2 epochs must replay less than every 50: {tight} vs {loose}"
        );
    }

    #[test]
    fn heartbeats_cut_detection_latency() {
        let failures = FailureModel {
            crash_probability_per_epoch: 0.002,
            detection_timeout: 1.0,
            restore_seconds_per_computer: 0.2,
        };
        let run = |heartbeat: Option<HeartbeatModel>| {
            let mut spec = ClusterSpec::paper_cluster(64);
            spec.straggler = StragglerModel::none();
            spec.heartbeat = heartbeat;
            let mut sim = ClusterSim::new(spec, 11);
            sim.recovery_run(200, 0.1, 10, 0.2, &failures)
        };
        let slow = run(None);
        let fast = run(Some(HeartbeatModel::paper_default()));
        // Same seed, same RNG draw order: identical crash pattern.
        assert_eq!(slow.crashes, fast.crashes);
        assert!(slow.crashes > 0, "64 computers × 200 epochs must crash");
        assert_eq!(slow.replayed_epochs, fast.replayed_epochs);
        let saved = slow.duration - fast.duration;
        let expected = slow.crashes as f64
            * (failures.detection_timeout - HeartbeatModel::paper_default().detection_latency());
        assert!(
            (saved - expected).abs() < 1e-9,
            "heartbeats save exactly the detection gap: saved {saved}, expected {expected}"
        );
    }

    #[test]
    fn heartbeat_tax_on_coordination_is_tiny() {
        let round = |heartbeat: Option<HeartbeatModel>| {
            let mut spec = ClusterSpec::paper_cluster(64);
            spec.straggler = StragglerModel::none();
            spec.heartbeat = heartbeat;
            let mut sim = ClusterSim::new(spec, 5);
            sim.coordination_round().duration
        };
        let plain = round(None);
        let beating = round(Some(HeartbeatModel::paper_default()));
        let tax = beating - plain;
        let expected = 2.0 * ClusterSpec::paper_cluster(64).packet_overhead;
        assert!((tax - expected).abs() < 1e-12, "tax {tax}");
        assert!(tax < plain * 0.1, "detector must not tax the barrier");
    }

    #[test]
    fn rescale_stall_prices_every_protocol_stage() {
        let mut sim = quiet(4);
        let model = RescaleModel::paper_default(100.0e6); // 100 MB/computer
        let stats = sim.rescale_stall(&model, 4, 6);
        // The stall must at least cover quiesce + snapshot + replay, and
        // the NIC-bounded transfer of (nearly) all 400 MB dominates.
        let nic_rate = 1.0e9 * 0.85 / 8.0;
        let moved = 400.0e6 * RescaleModel::moved_fraction(4, 6);
        let floor = 0.05 + 100.0e6 / 150.0e6 + moved / 4.0 / nic_rate + 0.1;
        assert!(stats.duration >= floor, "{} < {floor}", stats.duration);
        assert!((sim.now() - stats.duration).abs() < 1e-12);
        assert_eq!(sim.telemetry().rescale.phases, 1);
    }

    #[test]
    fn growing_the_cluster_shrinks_restore_but_not_transfer() {
        let model = RescaleModel::paper_default(100.0e6);
        let grow = quiet(4).rescale_stall(&model, 4, 8).duration;
        let shrink = quiet(4).rescale_stall(&model, 4, 2).duration;
        // Shrinking funnels the same moved bytes into fewer NICs and
        // decoders: strictly more stall than growing.
        assert!(shrink > grow, "shrink {shrink} <= grow {grow}");
    }

    #[test]
    fn modular_rerouting_moves_nearly_everything() {
        assert_eq!(RescaleModel::moved_fraction(4, 4), 0.0);
        assert!(RescaleModel::moved_fraction(4, 5) > 0.75);
        assert!(RescaleModel::moved_fraction(63, 64) > 0.98);
    }

    #[test]
    fn introspection_tax_is_small_against_paper_epochs() {
        // A paper-scale epoch: 64 computers, ~2000 events per worker.
        let mut sim = quiet(64);
        let epoch = sim.compute_phase(0.05).duration + sim.exchange_phase(10.0e6).duration;
        let model = IntrospectionModel::paper_default(2000.0);
        let tax = sim.introspection_phase(&model).duration;
        assert!(tax > 0.0);
        assert!(
            tax < epoch * 0.10,
            "introspection tax {tax} exceeds 10% of the epoch {epoch}"
        );
        assert_eq!(sim.telemetry().introspection.phases, 1);
        assert!((sim.telemetry().total_seconds() - sim.now()).abs() < 1e-12);
    }

    #[test]
    fn introspection_tax_scales_with_event_volume() {
        let tax = |events: f64| {
            let mut sim = quiet(16);
            sim.introspection_phase(&IntrospectionModel::paper_default(events))
                .duration
        };
        let light = tax(500.0);
        let heavy = tax(50_000.0);
        assert!(heavy > light * 10.0, "light {light}, heavy {heavy}");
        // The fold at the single analysis vertex eventually dominates:
        // doubling events at least doubles the marginal cost.
        let heavier = tax(100_000.0);
        assert!(heavier > heavy * 1.5);
    }

    #[test]
    fn single_computer_introspection_skips_the_fabric() {
        let model = IntrospectionModel::paper_default(10_000.0);
        let local = quiet(1).introspection_phase(&model).duration;
        let mut sim = quiet(2);
        let distributed = sim.introspection_phase(&model).duration;
        // Two computers record twice the samples AND pay the NIC for the
        // remote half converging on the analysis vertex.
        assert!(distributed > local, "local {local}, distributed {distributed}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed| {
            let mut sim = ClusterSim::new(ClusterSpec::paper_cluster(16), seed);
            (0..100)
                .map(|_| sim.exchange_phase(1e6).duration)
                .sum::<f64>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
