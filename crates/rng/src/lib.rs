//! Seeded xorshift64* generator: deterministic, dependency-light, and
//! adequate for straggler injection, fault injection, and synthetic
//! dataset generation.
//!
//! The workspace deliberately carries **no crates.io dependencies** so
//! tier-1 verification works on an air-gapped machine; this crate is the
//! shared randomness primitive that replaces `rand` everywhere. Every
//! consumer seeds its own generator (often salted per link, per worker,
//! or per dataset) so streams are independent and runs are replayable.

#![forbid(unsafe_code)]

/// A seeded xorshift64* generator.
///
/// Statistical quality is adequate for simulation and test-input
/// generation; it is **not** a cryptographic generator.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// A generator seeded by `seed`. Distinct seeds produce independent
    /// streams; the same seed always reproduces the same stream.
    pub fn new(seed: u64) -> Self {
        Xorshift {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// A generator whose stream is independent per `(seed, salt)` pair —
    /// the idiom for per-link or per-worker substreams.
    pub fn with_salt(seed: u64, salt: u64) -> Self {
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
            ^ salt.rotate_left(17);
        Xorshift { state: mixed.max(1) }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded sampling (Lemire); the modulo bias of the
        // fallback would be invisible at simulation scales anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform integer in `[0, bound)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && (hi - lo).is_finite(), "bad range {lo}..{hi}");
        lo + self.unit() * (hi - lo)
    }

    /// A Bernoulli trial: `true` with probability `p`.
    ///
    /// `p <= 0` never fires and `p >= 1` always fires, without consuming
    /// randomness in the degenerate `p <= 0` case only when exactly zero.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Exponentially distributed with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.unit()).ln()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn salted_streams_differ() {
        let mut a = Xorshift::with_salt(7, 1);
        let mut b = Xorshift::with_salt(7, 2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_is_in_range_and_varied() {
        let mut rng = Xorshift::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut rng = Xorshift::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reachable");
    }

    #[test]
    fn range_f64_stays_inside() {
        let mut rng = Xorshift::new(13);
        for _ in 0..1_000 {
            let v = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = Xorshift::new(17);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = Xorshift::new(5);
        let mean = (0..20_000).map(|_| rng.exponential(2.0)).sum::<f64>() / 20_000.0;
        assert!((1.9..2.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Xorshift::new(23);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle is almost surely nontrivial");
    }
}
