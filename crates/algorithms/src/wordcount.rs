//! WordCount (§5.4): the embarrassingly parallel MapReduce benchmark.
//!
//! Worker-local pre-aggregation (the *combiner* the paper credits for
//! WordCount's good weak scaling) runs before the exchange, so the data
//! crossing workers is one partial count per distinct word per worker
//! rather than one record per occurrence.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;
use naiad_operators::prelude::*;

/// Counts words per epoch, with a local combiner before the exchange.
pub fn wordcount(lines: &Stream<String>) -> Stream<(String, u64)> {
    let partials = lines.unary(Pact::Pipeline, "Combiner", |_info| {
        move |input: &mut InputPort<String>, output: &mut OutputPort<(String, u64)>| {
            input.for_each(|time, data| {
                // Combine within the batch: this is where the paper's
                // combiners collapse the Zipf head before any exchange.
                let mut local: std::collections::HashMap<String, u64> = Default::default();
                for line in data {
                    for word in line.split_whitespace() {
                        *local.entry(word.to_string()).or_insert(0) += 1;
                    }
                }
                output.session(time).give_iterator(local);
            });
        }
    });
    partials.reduce(|| 0u64, |_w, acc, n| *acc += n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    #[test]
    fn counts_words_across_workers_and_epochs() {
        let results = execute(Config::processes_and_workers(2, 1), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, lines) = scope.new_input::<String>();
                (input, wordcount(&lines).capture())
            });
            match worker.index() {
                0 => {
                    input.send("the quick brown fox the".to_string());
                    input.advance_to(1);
                    input.send("the end".to_string());
                }
                _ => {
                    input.send("quick quick".to_string());
                    input.advance_to(1);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<(u64, String, u64)> = results
            .into_iter()
            .flatten()
            .flat_map(|(e, d)| d.into_iter().map(move |(w, n)| (e, w, n)))
            .collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                (0, "brown".to_string(), 1),
                (0, "fox".to_string(), 1),
                (0, "quick".to_string(), 3),
                (0, "the".to_string(), 2),
                (1, "end".to_string(), 1),
                (1, "the".to_string(), 1),
            ]
        );
    }
}
