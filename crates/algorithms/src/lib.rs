//! The paper's workloads (§5–§6), implemented on the Naiad operator
//! library and the low-level vertex API:
//!
//! * [`datasets`] — deterministic synthetic generators standing in for the
//!   proprietary corpora (Twitter streams, ClueWeb09) the paper uses,
//! * [`wordcount`] — the embarrassingly parallel MapReduce of §5.4,
//! * [`wcc`] — asynchronous weakly connected components (§5.3, §5.4,
//!   Table 1), incremental across epochs (§6.4),
//! * [`pagerank`] — the three PageRank variants of §6.1 (vertex-
//!   partitioned, edge-partitioned, Pregel),
//! * [`asp`] — approximate shortest paths from sampled sources (Table 1),
//! * [`scc`] — strongly connected components with nested loops (Table 1),
//! * [`kexposure`] — the Kineograph comparison workload (§6.3),
//! * [`logreg`] — logistic regression with the data-parallel AllReduce
//!   (§6.2).

#![forbid(unsafe_code)]

pub mod asp;
pub mod datasets;
pub mod kexposure;
pub mod logreg;
pub mod pagerank;
pub mod scc;
pub mod triangles;
pub mod wcc;
pub mod wordcount;
