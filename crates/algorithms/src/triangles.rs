//! Triangle counting — the interactive graph-mining style the paper's
//! introduction motivates, expressed purely with relational operators:
//! two joins build wedges and close them against the edge set.
//!
//! Edges are canonicalized to `a < b`, so each triangle `{a, b, c}` with
//! `a < b < c` is found exactly once as the wedge `a–b–c` closed by the
//! edge `(a, c)`.

use std::collections::HashSet;

use naiad::Stream;
use naiad_operators::prelude::*;

/// Per-epoch triangle count of that epoch's edges (self-loops and
/// duplicate edges are ignored).
pub fn triangle_count(edges: &Stream<(u64, u64)>) -> Stream<u64> {
    // Canonical, deduplicated edges.
    let canon = edges
        .filter_map(|(a, b)| {
            use std::cmp::Ordering;
            match a.cmp(&b) {
                Ordering::Less => Some((a, b)),
                Ordering::Greater => Some((b, a)),
                Ordering::Equal => None,
            }
        })
        .distinct();

    // Wedges a–b–c with a < b < c: join on the shared middle vertex b.
    let by_high = canon.map(|(a, b)| (b, a)); // keyed by b: (b, a)
    let wedges = by_high.join(&canon, |_b, a, c| (*a, *c)); // (a, c), a < b < c

    // Close each wedge against the edge (a, c).
    let closed = wedges
        .map(|(a, c)| ((a, c), ()))
        .semijoin(&canon.map(|(a, c)| (a, c)));

    closed
        .map(|_| 1.0f64)
        .sum()
        .map(|total| total.round() as u64)
}

/// Brute-force reference.
pub fn triangle_reference(edges: &[(u64, u64)]) -> u64 {
    let set: HashSet<(u64, u64)> = edges
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    let mut nodes: Vec<u64> = set.iter().flat_map(|&(a, b)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut count = 0;
    for (i, &a) in nodes.iter().enumerate() {
        for (j, &b) in nodes.iter().enumerate().skip(i + 1) {
            if !set.contains(&(a, b)) {
                continue;
            }
            for &c in nodes.iter().skip(j + 1) {
                if set.contains(&(b, c)) && set.contains(&(a, c)) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::random_graph;
    use naiad::{execute, Config};
    use std::sync::Arc;

    fn run(workers: usize, edges: Vec<(u64, u64)>) -> u64 {
        let edges = Arc::new(edges);
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, triangle_count(&stream).capture())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        results.into_iter().flatten().flat_map(|(_, d)| d).sum()
    }

    #[test]
    fn counts_a_known_clique() {
        // K4 has 4 triangles; the pendant edge adds none.
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)];
        assert_eq!(triangle_reference(&edges), 4);
        for workers in [1, 2] {
            assert_eq!(run(workers, edges.clone()), 4, "workers={workers}");
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let edges = random_graph(60, 240, seed);
            let expected = triangle_reference(&edges);
            assert_eq!(run(2, edges), expected, "seed={seed}");
        }
    }

    #[test]
    fn duplicates_and_loops_are_ignored() {
        let edges = vec![(0, 1), (1, 0), (0, 1), (1, 1), (1, 2), (0, 2)];
        assert_eq!(triangle_reference(&edges), 1);
        assert_eq!(run(1, edges), 1);
    }
}
