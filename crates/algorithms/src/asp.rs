//! Approximate shortest paths (Table 1): exact BFS distances from a small
//! sample of source nodes, propagated asynchronously.
//!
//! The paper's ASP computes distances from sampled sources to approximate
//! all-pairs shortest paths; like WCC it benefits from Naiad's cheap
//! iterations because the frontier becomes very sparse near convergence.

use std::collections::HashMap;

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::Stream;
use naiad_operators::hash_of;
use naiad_operators::prelude::*;

/// Distances from each of `sources` to every reachable node, per epoch:
/// emits `(node, source, distance)` improvements; the minimum per
/// `(node, source)` is the true distance. Edges are treated as undirected.
pub fn approximate_shortest_paths(
    edges: &Stream<(u64, u64)>,
    sources: Vec<u64>,
) -> Stream<(u64, u64, u64)> {
    let mut scope = edges.scope();
    let sym = edges.flat_map(|(a, b)| vec![(a, b), (b, a)]);

    let lc = scope.loop_context(edges.context());
    let entered = lc.enter(&sym);
    // Messages: (node, source, candidate distance).
    let (handle, cycle) = lc.feedback::<(u64, u64, u64)>(None);

    let improvements: Stream<(u64, u64, u64)> = entered.binary(
        &cycle,
        Pact::exchange(|(a, _): &(u64, u64)| hash_of(a)),
        Pact::exchange(|(n, _, _): &(u64, u64, u64)| hash_of(n)),
        "AspPropagate",
        move |_info| {
            let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
            // dist[(node, source)] = best known distance.
            let mut dist: HashMap<(u64, u64), u64> = HashMap::new();
            move |edges: &mut InputPort<(u64, u64)>,
                  msgs: &mut InputPort<(u64, u64, u64)>,
                  output: &mut OutputPort<(u64, u64, u64)>| {
                edges.for_each(|time, data| {
                    let mut session = output.session(time);
                    for (a, b) in data {
                        adjacency.entry(a).or_default().push(b);
                        if sources.contains(&a) && !dist.contains_key(&(a, a)) {
                            // Seed the source itself (reported as an
                            // improvement so it reaches the output) and
                            // offer distance 1 to the new neighbour.
                            dist.insert((a, a), 0);
                            session.give((a, a, 0));
                        }
                        if sources.contains(&a) {
                            session.give((b, a, 1));
                        }
                        // Offer every known distance through the new edge.
                        for &s in &sources {
                            if let Some(d) = dist.get(&(a, s)) {
                                session.give((b, s, d + 1));
                            }
                        }
                    }
                });
                msgs.for_each(|time, data| {
                    let mut session = output.session(time);
                    for (n, s, d) in data {
                        let best = dist.entry((n, s)).or_insert(u64::MAX);
                        if d < *best {
                            *best = d;
                            for neighbour in adjacency.get(&n).into_iter().flatten() {
                                session.give((*neighbour, s, d + 1));
                            }
                        }
                    }
                });
            }
        },
    );

    handle.connect(&improvements);
    lc.leave(&improvements)
        .map(|(n, s, d)| ((n, s), d))
        .reduce(|| u64::MAX, |_k, acc, d| *acc = (*acc).min(d))
        .map(|((n, s), d)| (n, s, d))
}

/// Sequential BFS reference.
pub fn asp_reference(edges: &[(u64, u64)], sources: &[u64]) -> HashMap<(u64, u64), u64> {
    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
        adjacency.entry(b).or_default().push(a);
    }
    let mut out = HashMap::new();
    for &s in sources {
        let mut queue = std::collections::VecDeque::from([(s, 0u64)]);
        let mut seen = std::collections::HashSet::from([s]);
        while let Some((n, d)) = queue.pop_front() {
            out.insert((n, s), d);
            for &m in adjacency.get(&n).into_iter().flatten() {
                if seen.insert(m) {
                    queue.push_back((m, d + 1));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::random_graph;
    use naiad::{execute, Config};
    use std::sync::Arc;

    #[test]
    fn matches_bfs_reference() {
        let edges = random_graph(120, 240, 21);
        let sources = vec![0, 5, 17];
        let reference = asp_reference(&edges, &sources);
        for workers in [1, 2] {
            let edges_in = Arc::new(edges.clone());
            let srcs = sources.clone();
            let results = execute(Config::single_process(workers), move |worker| {
                let srcs = srcs.clone();
                let (mut input, captured) = worker.dataflow(move |scope| {
                    let (input, stream) = scope.new_input::<(u64, u64)>();
                    (input, approximate_shortest_paths(&stream, srcs).capture())
                });
                for (i, e) in edges_in.iter().enumerate() {
                    if i % worker.peers() == worker.index() {
                        input.send(*e);
                    }
                }
                input.close();
                worker.step_until_done();
                let result = captured.borrow().clone();
                result
            })
            .unwrap();
            let mut ours: HashMap<(u64, u64), u64> = HashMap::new();
            for (_, data) in results.into_iter().flatten() {
                for (n, s, d) in data {
                    let e = ours.entry((n, s)).or_insert(d);
                    *e = (*e).min(d);
                }
            }
            assert_eq!(ours, reference, "workers={workers}");
        }
    }
}
