//! The k-exposure metric (§6.3), the Kineograph comparison workload.
//!
//! Kineograph identifies controversial topics by counting, for each user,
//! how many distinct neighbours exposed them to a topic before they saw
//! it. The paper reimplements it in 26 lines of `Distinct`, `Join`, and
//! `Count`. This module follows the same pipeline:
//!
//! 1. tweets contribute *mention edges* `(author → mentioned)` to a graph
//!    that accumulates across epochs,
//! 2. each tweet bearing a hashtag is an *event* `(author, topic)`,
//! 3. joining events against the mention graph yields *exposures*
//!    `(neighbour, topic, author)`,
//! 4. `distinct` keeps one exposure per `(neighbour, topic, author)` per
//!    epoch, and `count` yields each `(neighbour, topic)`'s exposure
//!    degree `k` — the k-exposure histogram's raw material.

use naiad::Stream;
use naiad_operators::prelude::*;

use crate::datasets::Tweet;

/// The per-epoch k-exposure counts: `((user, topic), k)` for every user
/// exposed to a topic this epoch, where `k` counts the distinct authors
/// who exposed them.
pub fn k_exposure(tweets: &Stream<Tweet>) -> Stream<((u64, u64), u64)> {
    // Mention edges accumulate across epochs (the evolving graph).
    let edges: Stream<(u64, u64)> =
        tweets.flat_map(|t: Tweet| t.mentions.iter().map(|&m| (t.user, m)).collect::<Vec<_>>());
    // Topic events: (author, topic).
    let events: Stream<(u64, u64)> =
        tweets.flat_map(|t: Tweet| t.hashtags.iter().map(|&h| (t.user, h)).collect::<Vec<_>>());
    // Exposures: every mention edge carries the author's topics to the
    // mentioned user; the graph side accumulates, so old edges expose new
    // events and vice versa.
    let exposures: Stream<(u64, u64, u64)> = events
        .join_accumulate(&edges, |author, topic, neighbour| {
            (*neighbour, *topic, *author)
        });
    // One exposure per (user, topic, author) per epoch, then count per
    // (user, topic).
    exposures
        .distinct()
        .map(|(user, topic, author)| ((user, topic), author))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};

    fn tweet(user: u64, hashtags: &[u64], mentions: &[u64]) -> Tweet {
        Tweet {
            user,
            hashtags: hashtags.to_vec(),
            mentions: mentions.to_vec(),
        }
    }

    #[test]
    fn counts_distinct_exposing_authors() {
        let results = execute(Config::single_process(2), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, tweets) = scope.new_input::<Tweet>();
                (input, k_exposure(&tweets).capture())
            });
            if worker.index() == 0 {
                // Users 1 and 2 both mention user 9 and tweet topic 7:
                // user 9 is exposed to topic 7 twice (k = 2).
                input.send(tweet(1, &[7], &[9]));
                input.send(tweet(2, &[7], &[9]));
                // User 1 tweets topic 7 again: still one distinct author.
                input.send(tweet(1, &[7], &[]));
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut all: Vec<((u64, u64), u64)> =
            results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        all.sort();
        assert_eq!(all, vec![((9, 7), 2)]);
    }

    #[test]
    fn old_edges_expose_new_events() {
        let results = execute(Config::single_process(1), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, tweets) = scope.new_input::<Tweet>();
                (input, k_exposure(&tweets).capture())
            });
            // Epoch 0: only the mention edge 3 → 8.
            input.send(tweet(3, &[], &[8]));
            input.advance_to(1);
            // Epoch 1: author 3 tweets topic 5; user 8 is exposed via the
            // edge from epoch 0.
            input.send(tweet(3, &[5], &[]));
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        type Row = (u64, ((u64, u64), u64));
        let all: Vec<Row> = results
            .into_iter()
            .flatten()
            .flat_map(|(e, d)| d.into_iter().map(move |x| (e, x)))
            .collect();
        assert_eq!(all, vec![(1, ((8, 5), 1))]);
    }
}
