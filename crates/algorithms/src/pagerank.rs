//! PageRank (§6.1): three implementations with different partitionings.
//!
//! * [`pagerank_vertex`] — "Naiad Vertex": edges partitioned by source
//!   vertex; one exchange per iteration (30 lines in the paper).
//! * [`pagerank_edge`] — "Naiad Edge": edges partitioned over a 2-D grid
//!   keyed by `(src block, dst block)` (the paper uses a space-filling
//!   curve with the same intent): each rank share travels to one grid
//!   *row* and each partial sum down one *column*, trading an extra stage
//!   for less data movement on skewed graphs — the idea behind
//!   PowerGraph's vertex cuts.
//! * [`pagerank_pregel`] — the same computation on the Pregel port
//!   (38 lines in the paper).
//!
//! All variants run a fixed number of synchronous iterations, using
//! notifications as the per-iteration barrier, and emit `(node, rank)`
//! after the final iteration, once per epoch.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_operators::hash_of;
use naiad_operators::prelude::*;
use naiad_pregel::{pregel, Compute, VertexProgram};

const DAMPING: f64 = 0.85;

fn iteration_of(time: &Timestamp) -> u64 {
    *time
        .counters
        .as_slice()
        .last()
        .expect("loop times carry an iteration counter")
}

/// Vertex-partitioned PageRank over the edges of each epoch.
pub fn pagerank_vertex(edges: &Stream<(u64, u64)>, iterations: u64) -> Stream<(u64, f64)> {
    let mut scope = edges.scope();
    let lc = scope.loop_context(edges.context());
    let entered = lc.enter(edges);
    let (handle, cycle) = lc.feedback::<(u64, f64)>(Some(iterations + 1));

    struct Node {
        rank: f64,
        edges: Vec<u64>,
    }
    struct Run {
        nodes: HashMap<u64, Node>,
        sums: HashMap<u64, HashMap<u64, f64>>,
    }
    fn new_run() -> Run {
        Run {
            nodes: HashMap::new(),
            sums: HashMap::new(),
        }
    }
    fn new_node() -> Node {
        Node {
            rank: 1.0,
            edges: Vec::new(),
        }
    }

    let out: Stream<(u64, f64)> = entered.binary_notify(
        &cycle,
        Pact::exchange(|(src, _): &(u64, u64)| hash_of(src)),
        Pact::exchange(|(n, _): &(u64, f64)| hash_of(n)),
        "PageRankVertex",
        move |_info| {
            let runs: Rc<RefCell<HashMap<u64, Run>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv_runs = runs.clone();
            (
                move |edges: &mut InputPort<(u64, u64)>,
                      ranks: &mut InputPort<(u64, f64)>,
                      _output: &mut OutputPort<(u64, f64)>,
                      notify: &Notify| {
                    let mut runs = recv_runs.borrow_mut();
                    edges.for_each(|time, data| {
                        notify.notify_at(time);
                        let run = runs.entry(time.epoch).or_insert_with(new_run);
                        for (src, dst) in data {
                            run.nodes
                                .entry(src)
                                .or_insert_with(new_node)
                                .edges
                                .push(dst);
                        }
                    });
                    ranks.for_each(|time, data| {
                        let run = runs.entry(time.epoch).or_insert_with(new_run);
                        let sums = run.sums.entry(iteration_of(&time)).or_default();
                        for (n, v) in data {
                            *sums.entry(n).or_insert(0.0) += v;
                        }
                    });
                },
                move |time: Timestamp, output: &mut OutputPort<(u64, f64)>, notify: &Notify| {
                    let mut runs = runs.borrow_mut();
                    let Some(run) = runs.get_mut(&time.epoch) else {
                        return;
                    };
                    let iter = iteration_of(&time);
                    if iter > 0 {
                        let sums = run.sums.remove(&iter).unwrap_or_default();
                        // Destinations with no out-edges materialize on
                        // first contribution.
                        for n in sums.keys() {
                            run.nodes.entry(*n).or_insert_with(new_node);
                        }
                        for (node, data) in run.nodes.iter_mut() {
                            data.rank =
                                (1.0 - DAMPING) + DAMPING * sums.get(node).copied().unwrap_or(0.0);
                        }
                    }
                    let mut session = output.session(time);
                    if iter == iterations {
                        for (node, data) in &run.nodes {
                            session.give((*node, data.rank));
                        }
                        runs.remove(&time.epoch);
                    } else {
                        for data in run.nodes.values() {
                            if !data.edges.is_empty() {
                                let share = data.rank / data.edges.len() as f64;
                                for &dst in &data.edges {
                                    session.give((dst, share));
                                }
                            }
                        }
                        // Self-scheduled barrier: the next iteration's
                        // notification fires even if no shares flow.
                        if let Some(next) = time.incremented() {
                            notify.notify_at(next);
                        }
                    }
                },
            )
        },
    );

    handle.connect(&out);
    filter_final(&lc, &out, iterations)
}

/// Keeps only records of the final loop iteration and leaves the loop.
///
/// Intermediate shares circulate on the feedback edge *and* reach the
/// egress; this filter is what separates "rank shares" from "final ranks"
/// without a second output port.
fn filter_final(
    lc: &naiad::dataflow::LoopContext,
    stream: &Stream<(u64, f64)>,
    iterations: u64,
) -> Stream<(u64, f64)> {
    let only_final = stream.unary(Pact::Pipeline, "FinalIteration", move |_info| {
        move |input: &mut InputPort<(u64, f64)>, output: &mut OutputPort<(u64, f64)>| {
            input.for_each(|time, data| {
                if iteration_of(&time) == iterations {
                    output.session(time).give_vec(data);
                }
            });
        }
    });
    lc.leave(&only_final)
}

/// Edge-partitioned PageRank on a `rows × cols` worker grid.
pub fn pagerank_edge(
    edges: &Stream<(u64, u64)>,
    iterations: u64,
    workers: usize,
) -> Stream<(u64, f64)> {
    let rows = (workers as f64).sqrt().floor().max(1.0) as u64;
    let cols = (workers as u64 / rows).max(1);

    let mut scope = edges.scope();
    let lc = scope.loop_context(edges.context());

    // Place each edge in its grid cell.
    let placed = edges.map(move |(src, dst)| {
        let cell = (hash_of(&src) % rows) * cols + (hash_of(&dst) % cols);
        (cell, src, dst)
    });
    let entered = lc.enter(&placed);

    // Node owners learn degrees (and the node set) at iteration 0.
    let degrees = entered
        .flat_map(|(_, src, dst)| vec![(src, 1u64), (dst, 0u64)])
        .reduce(|| 0u64, |_n, acc, d| *acc += d);

    // Feedback carries partial sums back to node owners.
    let (handle, cycle) = lc.feedback::<(u64, f64)>(Some(iterations + 1));

    // Stage A — node owners: apply sums, emit one share per (src, column)
    // across the source's grid row, or final ranks tagged cell = u64::MAX.
    let shares: Stream<(u64, u64, f64)> = degrees.binary_notify(
        &cycle,
        Pact::exchange(|(n, _): &(u64, u64)| hash_of(n)),
        Pact::exchange(|(n, _): &(u64, f64)| hash_of(n)),
        "PageRankNodes",
        move |_info| {
            struct Run {
                nodes: HashMap<u64, (f64, u64)>,
                sums: HashMap<u64, HashMap<u64, f64>>,
            }
            fn new_run() -> Run {
                Run {
                    nodes: HashMap::new(),
                    sums: HashMap::new(),
                }
            }
            let runs: Rc<RefCell<HashMap<u64, Run>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv_runs = runs.clone();
            (
                move |degrees: &mut InputPort<(u64, u64)>,
                      partials: &mut InputPort<(u64, f64)>,
                      _output: &mut OutputPort<(u64, u64, f64)>,
                      notify: &Notify| {
                    let mut runs = recv_runs.borrow_mut();
                    degrees.for_each(|time, data| {
                        notify.notify_at(time);
                        let run = runs.entry(time.epoch).or_insert_with(new_run);
                        for (n, deg) in data {
                            let e = run.nodes.entry(n).or_insert((1.0, 0));
                            e.1 += deg;
                        }
                    });
                    partials.for_each(|time, data| {
                        let run = runs.entry(time.epoch).or_insert_with(new_run);
                        let sums = run.sums.entry(iteration_of(&time)).or_default();
                        for (n, v) in data {
                            *sums.entry(n).or_insert(0.0) += v;
                        }
                    });
                },
                move |time: Timestamp,
                      output: &mut OutputPort<(u64, u64, f64)>,
                      notify: &Notify| {
                    let mut runs = runs.borrow_mut();
                    let Some(run) = runs.get_mut(&time.epoch) else {
                        return;
                    };
                    let iter = iteration_of(&time);
                    if iter > 0 {
                        let sums = run.sums.remove(&iter).unwrap_or_default();
                        for (node, state) in run.nodes.iter_mut() {
                            state.0 =
                                (1.0 - DAMPING) + DAMPING * sums.get(node).copied().unwrap_or(0.0);
                        }
                    }
                    let mut session = output.session(time);
                    if iter == iterations {
                        for (node, (rank, _)) in &run.nodes {
                            session.give((u64::MAX, *node, *rank));
                        }
                        runs.remove(&time.epoch);
                    } else {
                        for (node, (rank, degree)) in &run.nodes {
                            if *degree > 0 {
                                let share = rank / *degree as f64;
                                let row = hash_of(node) % rows;
                                for col in 0..cols {
                                    session.give((row * cols + col, *node, share));
                                }
                            }
                        }
                        if let Some(next) = time.incremented() {
                            notify.notify_at(next);
                        }
                    }
                },
            )
        },
    );

    // Stage B — grid cells: scatter shares along local edges; one partial
    // sum per destination per iteration flows back to the node owners.
    let partials: Stream<(u64, f64)> = entered.binary_notify(
        &shares,
        Pact::exchange(|(cell, _, _): &(u64, u64, u64)| *cell),
        Pact::exchange(|(cell, _, _): &(u64, u64, f64)| *cell),
        "PageRankCells",
        move |_info| {
            struct Cell {
                by_src: HashMap<u64, Vec<u64>>,
                partial: HashMap<u64, HashMap<u64, f64>>,
            }
            fn new_cell() -> Cell {
                Cell {
                    by_src: HashMap::new(),
                    partial: HashMap::new(),
                }
            }
            let cells: Rc<RefCell<HashMap<u64, Cell>>> = Rc::new(RefCell::new(HashMap::new()));
            let recv_cells = cells.clone();
            (
                move |edges: &mut InputPort<(u64, u64, u64)>,
                      shares: &mut InputPort<(u64, u64, f64)>,
                      _output: &mut OutputPort<(u64, f64)>,
                      notify: &Notify| {
                    let mut cells = recv_cells.borrow_mut();
                    edges.for_each(|time, data| {
                        let cell = cells.entry(time.epoch).or_insert_with(new_cell);
                        for (_c, src, dst) in data {
                            cell.by_src.entry(src).or_default().push(dst);
                        }
                    });
                    shares.for_each(|time, data| {
                        let cell = cells.entry(time.epoch).or_insert_with(new_cell);
                        let iter = iteration_of(&time);
                        let first = !cell.partial.contains_key(&iter);
                        let mut any = false;
                        let partial = cell.partial.entry(iter).or_default();
                        for (grid_cell, src, share) in data {
                            if grid_cell == u64::MAX {
                                continue; // Final ranks bypass this stage.
                            }
                            any = true;
                            for dst in cell.by_src.get(&src).into_iter().flatten() {
                                *partial.entry(*dst).or_insert(0.0) += share;
                            }
                        }
                        if first && any {
                            notify.notify_at(time);
                        }
                    });
                },
                move |time: Timestamp, output: &mut OutputPort<(u64, f64)>, _notify: &Notify| {
                    let mut cells = cells.borrow_mut();
                    let Some(cell) = cells.get_mut(&time.epoch) else {
                        return;
                    };
                    let iter = iteration_of(&time);
                    if let Some(partial) = cell.partial.remove(&iter) {
                        output.session(time).give_iterator(partial);
                    }
                    if iter >= iterations {
                        cells.remove(&time.epoch);
                    }
                },
            )
        },
    );

    handle.connect(&partials);
    // Final ranks leave via the shares stream, tagged with cell u64::MAX.
    let finals = shares.filter_map(|(cell, node, rank)| (cell == u64::MAX).then_some((node, rank)));
    lc.leave(&finals)
}

/// PageRank as a Pregel vertex program ("Naiad Pregel" in Figure 7a).
pub struct PageRankProgram {
    /// Total iterations to run.
    pub iterations: u64,
}

impl VertexProgram for PageRankProgram {
    type State = f64;
    type Msg = f64;
    fn compute(&mut self, ctx: &mut Compute<'_, Self>) {
        if ctx.superstep() > 0 {
            let sum: f64 = ctx.messages().iter().sum();
            *ctx.state_mut() = (1.0 - DAMPING) + DAMPING * sum;
        }
        if ctx.superstep() < self.iterations {
            let share = *ctx.state() / ctx.edges().len().max(1) as f64;
            ctx.send_to_all(share);
        } else {
            ctx.vote_to_halt();
        }
    }
    fn combine(&self, a: f64, b: f64) -> Option<f64> {
        Some(a + b)
    }
}

/// Runs PageRank through the Pregel port; seeds are
/// `(node, (1.0, out-neighbours))`.
pub fn pagerank_pregel(
    seeds: &Stream<(u64, (f64, Vec<u64>))>,
    iterations: u64,
) -> Stream<(u64, f64)> {
    pregel(seeds, PageRankProgram { iterations }, iterations)
}

/// Sequential reference implementation for validation.
pub fn pagerank_reference(edges: &[(u64, u64)], iterations: u64) -> HashMap<u64, f64> {
    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut nodes: std::collections::HashSet<u64> = Default::default();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut ranks: HashMap<u64, f64> = nodes.iter().map(|&n| (n, 1.0)).collect();
    for _ in 0..iterations {
        let mut sums: HashMap<u64, f64> = HashMap::new();
        for (&src, dsts) in &adjacency {
            let share = ranks[&src] / dsts.len() as f64;
            for &dst in dsts {
                *sums.entry(dst).or_insert(0.0) += share;
            }
        }
        for (&n, r) in ranks.iter_mut() {
            *r = (1.0 - DAMPING) + DAMPING * sums.get(&n).copied().unwrap_or(0.0);
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::powerlaw_graph;
    use naiad::{execute, Config};
    use std::sync::Arc;

    fn run_vertex(workers: usize, edges: Vec<(u64, u64)>, iters: u64) -> HashMap<u64, f64> {
        let edges = Arc::new(edges);
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, pagerank_vertex(&stream, iters).capture())
            });
            let peers = worker.peers();
            for (i, e) in edges.iter().enumerate() {
                if i % peers == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        results.into_iter().flatten().flat_map(|(_, d)| d).collect()
    }

    fn run_edge(workers: usize, edges: Vec<(u64, u64)>, iters: u64) -> HashMap<u64, f64> {
        let edges = Arc::new(edges);
        let results = execute(Config::single_process(workers), move |worker| {
            let peers = worker.peers();
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, pagerank_edge(&stream, iters, peers).capture())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % peers == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        results.into_iter().flatten().flat_map(|(_, d)| d).collect()
    }

    fn assert_close(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: node sets differ");
        for (n, r) in a {
            let rb = b
                .get(n)
                .unwrap_or_else(|| panic!("{what}: missing node {n}"));
            assert!(
                (r - rb).abs() < 1e-9,
                "{what}: rank mismatch at {n}: {r} vs {rb}"
            );
        }
    }

    #[test]
    fn vertex_variant_matches_reference() {
        let edges = powerlaw_graph(50, 200, 11);
        let reference = pagerank_reference(&edges, 5);
        for workers in [1, 2] {
            let ours = run_vertex(workers, edges.clone(), 5);
            assert_close(&ours, &reference, &format!("vertex w={workers}"));
        }
    }

    #[test]
    fn edge_variant_matches_reference() {
        let edges = powerlaw_graph(50, 200, 12);
        let reference = pagerank_reference(&edges, 4);
        for workers in [1, 4] {
            let ours = run_edge(workers, edges.clone(), 4);
            assert_close(&ours, &reference, &format!("edge w={workers}"));
        }
    }

    #[test]
    fn pregel_variant_matches_reference() {
        let edges = powerlaw_graph(40, 150, 13);
        let reference = pagerank_reference(&edges, 4);
        let edges_in = Arc::new(edges);
        let results = execute(Config::single_process(2), move |worker| {
            let (mut seeds, captured) = worker.dataflow(|scope| {
                let (input, seed_stream) = scope.new_input::<(u64, (f64, Vec<u64>))>();
                (input, pagerank_pregel(&seed_stream, 4).capture())
            });
            if worker.index() == 0 {
                let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
                let mut nodes: std::collections::HashSet<u64> = Default::default();
                for &(a, b) in edges_in.iter() {
                    adjacency.entry(a).or_default().push(b);
                    nodes.insert(a);
                    nodes.insert(b);
                }
                for n in nodes {
                    seeds.send((n, (1.0, adjacency.remove(&n).unwrap_or_default())));
                }
            }
            seeds.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let ours: HashMap<u64, f64> = results.into_iter().flatten().flat_map(|(_, d)| d).collect();
        assert_close(&ours, &reference, "pregel");
    }
}
