//! Weakly connected components (§5.3, §5.4, Table 1, §6.4).
//!
//! An *asynchronous* min-label propagation in the Bloom style §4.2
//! describes: the loop vertex never requests a blocking notification, so
//! iterations run without coordination and the loop drains as soon as no
//! label improves — exactly the sparse, latency-bound tail the paper uses
//! WCC to stress.
//!
//! The vertex state persists across epochs, and labels only ever decrease
//! under edge additions, so feeding more edges in later epochs yields
//! *incremental* connected components: each epoch's output is exactly the
//! set of label changes it causes (§6.4's streaming analysis). To keep
//! per-epoch outputs consistent, state is *versioned*: adjacency entries
//! remember the epoch that introduced them, and each node keeps a small
//! staircase of `(epoch, label)` versions, so an epoch's propagation never
//! observes a later epoch's edges — the multi-version discipline the
//! paper's incremental library [McSherry et al., CIDR 2013] formalizes.

use std::collections::HashMap;

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_operators::hash_of;
use naiad_operators::prelude::*;

/// A node's label history: `(epoch, label)` with strictly increasing
/// epochs and strictly decreasing labels.
#[derive(Debug, Default, Clone)]
struct Versions(Vec<(u64, u64)>);

impl Versions {
    /// The label as of `epoch` (`None` if the node is unknown then).
    fn at(&self, epoch: u64) -> Option<u64> {
        self.0
            .iter()
            .take_while(|(e, _)| *e <= epoch)
            .map(|(_, l)| *l)
            .last()
    }

    /// Records `label` at `epoch` if it improves that epoch's value.
    /// Returns whether anything changed.
    fn improve(&mut self, epoch: u64, label: u64) -> bool {
        if self.at(epoch).is_some_and(|cur| cur <= label) {
            return false;
        }
        // Drop superseded later-or-equal versions, then insert in order.
        self.0.retain(|(e, l)| *e < epoch || *l < label);
        let pos = self.0.partition_point(|(e, _)| *e < epoch);
        self.0.insert(pos, (epoch, label));
        true
    }
}

/// Connected components by asynchronous min-label propagation.
///
/// `edges` are undirected (symmetrized internally). Returns the label
/// *improvements* `(node, label)` of each epoch; a node's component is the
/// last label it was assigned in any epoch so far. For a single-epoch
/// input, reduce per node with `min` to obtain the component map.
pub fn connected_components(edges: &Stream<(u64, u64)>) -> Stream<(u64, u64)> {
    let mut scope = edges.scope();
    // Symmetrize: deliver each edge to both endpoints' owners.
    let sym = edges.flat_map(|(a, b)| vec![(a, b), (b, a)]);

    let lc = scope.loop_context(edges.context());
    let entered = lc.enter(&sym);
    let (handle, cycle) = lc.feedback::<(u64, u64)>(None);

    let improvements: Stream<(u64, u64)> = entered.binary(
        &cycle,
        Pact::exchange(|(a, _): &(u64, u64)| hash_of(a)),
        Pact::exchange(|(n, _): &(u64, u64)| hash_of(n)),
        "MinLabelPropagate",
        |_info| {
            // Adjacency entries remember the epoch that introduced them.
            let mut adjacency: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
            let mut labels: HashMap<u64, Versions> = HashMap::new();
            move |edges: &mut InputPort<(u64, u64)>,
                  msgs: &mut InputPort<(u64, u64)>,
                  output: &mut OutputPort<(u64, u64)>| {
                edges.for_each(|time, data| {
                    let mut session = output.session(time);
                    for (a, b) in data {
                        adjacency.entry(a).or_default().push((b, time.epoch));
                        let versions = labels.entry(a).or_default();
                        versions.improve(time.epoch, a);
                        let la = versions.at(time.epoch).expect("just seeded");
                        // Offer `a`'s label *as of this epoch* to the new
                        // neighbour; its owner keeps the minimum.
                        session.give((b, la));
                        // Report `a` itself so singletons get labels.
                        session.give((a, la));
                    }
                });
                msgs.for_each(|time, data| {
                    for (n, candidate) in data {
                        let versions = labels.entry(n).or_default();
                        if versions.improve(time.epoch, candidate) {
                            for &(neighbour, edge_epoch) in adjacency.get(&n).into_iter().flatten()
                            {
                                if edge_epoch <= time.epoch {
                                    // Propagate within this epoch's loop.
                                    output.session(time).give((neighbour, candidate));
                                } else {
                                    // The edge belongs to a later epoch:
                                    // re-offer the improvement there, at
                                    // that epoch's first iteration.
                                    let later = Timestamp::with_counters(edge_epoch, &[0]);
                                    output.session(later).give((neighbour, candidate));
                                }
                            }
                        }
                    }
                });
            }
        },
    );

    handle.connect(&improvements);
    // Outside the loop: collapse each epoch's offer churn to the minimal
    // candidate per node, then emit only labels that improve on earlier
    // epochs — clean per-epoch deltas for incremental consumers (§6.4).
    // Epochs are processed in notification order, which the frontier
    // guarantees is epoch order, so the cross-epoch filter is sound.
    let per_epoch = lc
        .leave(&improvements)
        .reduce(|| u64::MAX, |_n, acc, l| *acc = (*acc).min(l));
    per_epoch.unary_notify(
        Pact::exchange(|(n, _): &(u64, u64)| hash_of(n)),
        "ImprovementFilter",
        |_info| {
            let pending: std::rc::Rc<std::cell::RefCell<HashMap<u64, HashMap<u64, u64>>>> =
                std::rc::Rc::new(std::cell::RefCell::new(HashMap::new()));
            let recv_pending = pending.clone();
            let mut best: HashMap<u64, u64> = HashMap::new();
            (
                move |input: &mut InputPort<(u64, u64)>,
                      _output: &mut OutputPort<(u64, u64)>,
                      notify: &Notify| {
                    let mut pending = recv_pending.borrow_mut();
                    input.for_each(|time, data| {
                        let epoch = pending.entry(time.epoch).or_insert_with(|| {
                            notify.notify_at(time);
                            HashMap::new()
                        });
                        for (n, label) in data {
                            let e = epoch.entry(n).or_insert(label);
                            *e = (*e).min(label);
                        }
                    });
                },
                move |time: Timestamp, output: &mut OutputPort<(u64, u64)>, _notify: &Notify| {
                    if let Some(epoch) = pending.borrow_mut().remove(&time.epoch) {
                        let mut session = output.session(time);
                        for (n, label) in epoch {
                            match best.get_mut(&n) {
                                None => {
                                    best.insert(n, label);
                                    session.give((n, label));
                                }
                                Some(b) if label < *b => {
                                    *b = label;
                                    session.give((n, label));
                                }
                                _ => {}
                            }
                        }
                    }
                },
            )
        },
    )
}

/// Runs [`connected_components`] to completion on a static edge list and
/// returns the full component map — a harness used by tests, benchmarks,
/// and Table 1.
pub fn wcc_once(config: naiad::Config, edges: Vec<(u64, u64)>) -> HashMap<u64, u64> {
    let edges = std::sync::Arc::new(edges);
    let results = naiad::execute(config, move |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            (input, connected_components(&stream).capture())
        });
        let peers = worker.peers();
        let index = worker.index();
        for (i, e) in edges.iter().enumerate() {
            if i % peers == index {
                input.send(*e);
            }
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut map = HashMap::new();
    for (_, data) in results.into_iter().flatten() {
        for (n, l) in data {
            let e = map.entry(n).or_insert(l);
            *e = (*e).min(l);
        }
    }
    map
}

/// Reference sequential union-find, for validation.
pub fn wcc_reference(edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut parent: HashMap<u64, u64> = HashMap::new();
    fn find(parent: &mut HashMap<u64, u64>, x: u64) -> u64 {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    for &(a, b) in edges {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent.insert(ra.max(rb), ra.min(rb));
        }
    }
    let keys: Vec<u64> = parent.keys().copied().collect();
    keys.into_iter()
        .map(|k| {
            let root = find(&mut parent, k);
            (k, root)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::random_graph;
    use naiad::Config;

    #[test]
    fn matches_union_find_on_random_graphs() {
        for (workers, seed) in [(1, 1), (2, 2), (3, 3)] {
            let edges = random_graph(200, 300, seed);
            let ours = wcc_once(Config::single_process(workers), edges.clone());
            let reference = wcc_reference(&edges);
            assert_eq!(ours, reference, "workers={workers} seed={seed}");
        }
    }

    #[test]
    fn multi_process_agrees() {
        let edges = random_graph(100, 150, 9);
        let ours = wcc_once(Config::processes_and_workers(2, 2), edges.clone());
        assert_eq!(ours, wcc_reference(&edges));
    }

    #[test]
    fn incremental_epochs_report_only_changes() {
        let results = naiad::execute(Config::single_process(1), |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, connected_components(&stream).capture())
            });
            // Epoch 0: 1–2 and 3–4 as separate components.
            input.send_batch([(1, 2), (3, 4)]);
            input.advance_to(1);
            // Epoch 1: bridge them; only 3 and 4 change label.
            input.send((2, 3));
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        let mut by_epoch: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for (e, data) in results.into_iter().flatten() {
            by_epoch.entry(e).or_default().extend(data);
        }
        let mut e0 = by_epoch.remove(&0).unwrap();
        e0.sort();
        assert_eq!(e0, vec![(1, 1), (2, 1), (3, 3), (4, 3)]);
        let mut e1 = by_epoch.remove(&1).unwrap();
        e1.sort();
        // The bridge relabels 3 and 4 to component 1; 1 and 2 are silent.
        assert_eq!(e1, vec![(3, 1), (4, 1)]);
    }
}
