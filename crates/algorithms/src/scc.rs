//! Strongly connected components (Table 1), with *nested* loop contexts.
//!
//! The algorithm is the forward–backward label partition refinement: in
//! each outer round, propagate minimum labels along forward edges and
//! along reversed edges (two inner loops); a node whose forward and
//! backward labels agree is strongly connected to that label's node and
//! settles, while edges joining nodes with different label pairs can never
//! sit inside an SCC and are discarded. Remaining edges go around the
//! outer feedback for another round. Every round settles at least the
//! component of the smallest remaining node, so the outer loop terminates.
//!
//! This is the paper's point about cheap iteration: the inner loops are
//! asynchronous min propagations and the outer loop re-launches them on an
//! ever-shrinking edge set — 161 lines of non-library code in the paper,
//! and the only Table 1 workload that needs loop nesting.

use std::collections::HashMap;

use naiad::dataflow::{InputPort, LoopContext, OutputPort};
use naiad::runtime::Pact;
use naiad::{Stream, Timestamp};
use naiad_operators::hash_of;
use naiad_operators::prelude::*;

/// Key identifying one propagation instance: (epoch, outer round).
fn round_key(time: &Timestamp) -> (u64, u64) {
    (time.epoch, time.counters.as_slice()[0])
}

/// Asynchronous min-label propagation along `edges` (directed), scoped to
/// each (epoch, outer round): returns each node's final label once per
/// round. Runs in an inner loop nested inside `outer`.
fn propagate_min(outer: &LoopContext, edges: &Stream<(u64, u64)>) -> Stream<(u64, u64)> {
    let mut scope = edges.scope();
    let lc = scope.loop_context(outer.context());
    let entered = lc.enter(edges);
    let (handle, cycle) = lc.feedback::<(u64, u64)>(None);

    let improvements: Stream<(u64, u64)> = entered.binary(
        &cycle,
        Pact::exchange(|(a, _): &(u64, u64)| hash_of(a)),
        Pact::exchange(|(n, _): &(u64, u64)| hash_of(n)),
        "SccPropagate",
        |_info| {
            // State per (epoch, outer round): this operator is shared by
            // every outer iteration, so scoping by round is what makes the
            // nested loop correct.
            let mut adjacency: HashMap<(u64, u64), HashMap<u64, Vec<u64>>> = HashMap::new();
            let mut labels: HashMap<(u64, u64), HashMap<u64, u64>> = HashMap::new();
            move |edges: &mut InputPort<(u64, u64)>,
                  msgs: &mut InputPort<(u64, u64)>,
                  output: &mut OutputPort<(u64, u64)>| {
                edges.for_each(|time, data| {
                    let key = round_key(&time);
                    let adj = adjacency.entry(key).or_default();
                    let lab = labels.entry(key).or_default();
                    let mut session = output.session(time);
                    for (a, b) in data {
                        adj.entry(a).or_default().push(b);
                        let la = *lab.entry(a).or_insert(a);
                        session.give((b, la));
                        session.give((a, la));
                        session.give((b, b));
                    }
                });
                msgs.for_each(|time, data| {
                    let key = round_key(&time);
                    let adj = adjacency.entry(key).or_default();
                    let lab = labels.entry(key).or_default();
                    let mut session = output.session(time);
                    for (n, candidate) in data {
                        let label = lab.entry(n).or_insert(n);
                        if candidate < *label {
                            *label = candidate;
                            for neighbour in adj.get(&n).into_iter().flatten() {
                                session.give((*neighbour, candidate));
                            }
                        }
                    }
                });
            }
        },
    );

    handle.connect(&improvements);
    // Collapse the round's churn to the final labels at (epoch, round).
    lc.leave(&improvements)
        .reduce(|| u64::MAX, |_n, acc, l| *acc = (*acc).min(l))
}

/// Strongly connected components: returns `(node, component)` per epoch,
/// where the component id is its smallest member. `max_rounds` bounds the
/// outer refinement (each round settles at least one component; the node
/// count is always a safe bound).
pub fn strongly_connected_components(
    edges: &Stream<(u64, u64)>,
    max_rounds: u64,
) -> Stream<(u64, u64)> {
    let mut scope = edges.scope();
    let lc = scope.loop_context(edges.context());
    let entered = lc.enter(edges);
    let (handle, cycle) = lc.feedback::<(u64, u64)>(Some(max_rounds));
    let round_edges = naiad::dataflow::ops::concatenate(&entered, &cycle);

    // Two inner propagations: forward and (on reversed edges) backward.
    let forward = propagate_min(&lc, &round_edges);
    let backward = propagate_min(&lc, &round_edges.map(|(a, b)| (b, a)));

    // Pair each node's labels: (node, (fwd, bwd)). Per-time join — both
    // streams sit at (epoch, round).
    let pairs: Stream<(u64, u64, u64)> = forward.join(&backward, |n, f, b| (*n, *f, *b));

    // Settled nodes: forward label equals backward label.
    let settled = pairs.filter_map(|(n, f, b)| (f == b).then_some((n, f)));

    // Surviving edges: both endpoints unsettled with identical label
    // pairs. Per-time join of edges against pairs, twice.
    let by_src = round_edges
        .map(|(a, b)| (a, b))
        .join(&pairs.map(|(n, f, b)| (n, (f, b))), |a, b, fb| {
            (*b, (*a, fb.0, fb.1))
        });
    let survivors = by_src.join(
        &pairs.map(|(n, f, b)| (n, (f, b))),
        |b, (a, fa, ba), (fb, bb)| {
            if fa == fb && ba == bb && fa != ba {
                (*a, *b)
            } else {
                (u64::MAX, u64::MAX)
            }
        },
    );
    let survivors = survivors.filter(|&(a, _)| a != u64::MAX);

    // Unsettled nodes whose edges were all discarded must still settle in
    // a later round: keep them alive as self-loops (a self-loop never
    // changes a node's labels, and a node with only a self-loop settles as
    // its own singleton component next round).
    let keepalive = pairs.filter_map(|(n, f, b)| (f != b).then_some((n, n)));
    let survivors = naiad::dataflow::ops::concatenate(&survivors, &keepalive);

    handle.connect(&survivors);
    lc.leave(&settled)
}

/// Sequential Tarjan reference (iterative), components labelled by their
/// smallest member.
pub fn scc_reference(edges: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut nodes: Vec<u64> = Vec::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
        for n in [a, b] {
            if !adjacency.contains_key(&n) {
                adjacency.entry(n).or_default();
            }
        }
    }
    let mut keys: Vec<u64> = adjacency.keys().copied().collect();
    keys.sort_unstable();
    nodes.extend(keys);

    // Iterative Tarjan.
    #[derive(Default, Clone)]
    struct Info {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut info: HashMap<u64, Info> = nodes.iter().map(|&n| (n, Info::default())).collect();
    let mut stack: Vec<u64> = Vec::new();
    let mut next_index = 0usize;
    let mut out: HashMap<u64, u64> = HashMap::new();

    for &root in &nodes {
        if info[&root].index.is_some() {
            continue;
        }
        // Explicit DFS stack: (node, child cursor).
        let mut dfs: Vec<(u64, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                let e = info.get_mut(&v).expect("known node");
                e.index = Some(next_index);
                e.lowlink = next_index;
                e.on_stack = true;
                next_index += 1;
                stack.push(v);
            }
            let children = adjacency.get(&v).cloned().unwrap_or_default();
            if let Some(&w) = children.get(*cursor) {
                *cursor += 1;
                match info[&w].index {
                    None => dfs.push((w, 0)),
                    Some(wi) if info[&w].on_stack => {
                        let low = info[&v].lowlink.min(wi);
                        info.get_mut(&v).expect("known").lowlink = low;
                    }
                    _ => {}
                }
            } else {
                // Post-order: pop component if root, fold lowlink upward.
                if info[&v].lowlink == info[&v].index.expect("visited") {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack nonempty");
                        info.get_mut(&w).expect("known").on_stack = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let label = members.iter().min().copied().expect("nonempty");
                    for w in members {
                        out.insert(w, label);
                    }
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    let low = info[&parent].lowlink.min(info[&v].lowlink);
                    info.get_mut(&parent).expect("known").lowlink = low;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad::{execute, Config};
    use std::sync::Arc;

    fn run_scc(workers: usize, edges: Vec<(u64, u64)>) -> HashMap<u64, u64> {
        let edges = Arc::new(edges);
        let results = execute(Config::single_process(workers), move |worker| {
            let (mut input, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, strongly_connected_components(&stream, 64).capture())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            let result = captured.borrow().clone();
            result
        })
        .unwrap();
        results.into_iter().flatten().flat_map(|(_, d)| d).collect()
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0→1→2→0 and 3→4→3, bridged by 2→3.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)];
        let reference = scc_reference(&edges);
        for workers in [1, 2] {
            let ours = run_scc(workers, edges.clone());
            assert_eq!(ours, reference, "workers={workers}");
        }
    }

    #[test]
    fn matches_tarjan_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let edges = crate::datasets::random_graph(40, 80, seed);
            let reference = scc_reference(&edges);
            let ours = run_scc(2, edges);
            assert_eq!(ours, reference, "seed={seed}");
        }
    }

    #[test]
    fn dag_yields_singletons() {
        let edges = vec![(0, 1), (1, 2), (0, 2)];
        let ours = run_scc(1, edges.clone());
        assert_eq!(ours, scc_reference(&edges));
        assert!(
            ours.iter().all(|(n, c)| n == c),
            "DAG nodes are their own SCCs"
        );
    }
}
