//! Deterministic synthetic datasets.
//!
//! The paper evaluates on corpora we cannot ship: Twitter firehose
//! samples, the ClueWeb09 web graph, a 128 GB text corpus. These
//! generators produce inputs with the same *shape* — uniform random
//! graphs (the paper's WCC inputs are explicitly random graphs),
//! power-law "follower" graphs, Zipf-distributed word streams, and tweet
//! streams with hashtags and mentions — at laptop scale, seeded for
//! reproducibility.

use naiad_rng::Xorshift;
use naiad_wire::{Wire, WireError};

/// A directed edge list over `nodes` vertices with `edges` uniformly
/// random edges (the WCC input of §5.3/§5.4).
pub fn random_graph(nodes: u64, edges: usize, seed: u64) -> Vec<(u64, u64)> {
    assert!(nodes > 0);
    let mut rng = Xorshift::new(seed);
    (0..edges)
        .map(|_| (rng.below(nodes), rng.below(nodes)))
        .collect()
}

/// A power-law graph approximating a social "follower" network (§6.1):
/// target in-degrees follow a Zipf-like distribution via preferential
/// attachment over a shuffled node order.
pub fn powerlaw_graph(nodes: u64, edges: usize, seed: u64) -> Vec<(u64, u64)> {
    assert!(nodes > 1);
    let mut rng = Xorshift::new(seed);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(edges);
    // Preferential attachment on destinations: a new edge points at the
    // destination of an earlier edge with high probability, so in-degrees
    // develop the celebrity-skewed tail of a follower graph.
    for i in 0..edges {
        let src = rng.below(nodes);
        let dst = if i > 0 && rng.chance(0.75) {
            out[rng.below_usize(i)].1
        } else {
            rng.below(nodes)
        };
        if src != dst {
            out.push((src, dst));
        } else {
            out.push((src, (dst + 1) % nodes));
        }
    }
    out
}

/// A stream of words with Zipf-like frequencies over a vocabulary of
/// `vocabulary` words (the WordCount corpus of §5.4).
pub fn zipf_words(count: usize, vocabulary: u64, seed: u64) -> Vec<String> {
    assert!(vocabulary > 0);
    let mut rng = Xorshift::new(seed);
    (0..count)
        .map(|_| {
            // Inverse-CDF sampling of an approximate Zipf(1) distribution.
            let u: f64 = rng.unit();
            let rank = ((vocabulary as f64).powf(u) - 1.0) as u64;
            format!("w{rank}")
        })
        .collect()
}

/// A synthetic tweet: author, hashtags used, users mentioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tweet {
    /// Author id.
    pub user: u64,
    /// Hashtag ids (small Zipf-distributed topic space).
    pub hashtags: Vec<u64>,
    /// Mentioned user ids.
    pub mentions: Vec<u64>,
}

impl Wire for Tweet {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.user.encode(buf);
        self.hashtags.encode(buf);
        self.mentions.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Tweet {
            user: u64::decode(input)?,
            hashtags: Vec::<u64>::decode(input)?,
            mentions: Vec::<u64>::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.user.encoded_len() + self.hashtags.encoded_len() + self.mentions.encoded_len()
    }
}

/// A deterministic tweet stream over `users` users and `topics` hashtags
/// (the §6.3/§6.4 input).
pub fn tweet_stream(count: usize, users: u64, topics: u64, seed: u64) -> Vec<Tweet> {
    assert!(users > 1 && topics > 0);
    let mut rng = Xorshift::new(seed);
    (0..count)
        .map(|_| {
            let user = rng.below(users);
            let n_tags = rng.below(3);
            let hashtags = (0..n_tags)
                .map(|_| {
                    let u: f64 = rng.unit();
                    ((topics as f64).powf(u) - 1.0) as u64
                })
                .collect();
            let n_mentions = rng.below(3);
            let mentions = (0..n_mentions)
                .map(|_| {
                    let mut m = rng.below(users);
                    if m == user {
                        m = (m + 1) % users;
                    }
                    m
                })
                .collect();
            Tweet {
                user,
                hashtags,
                mentions,
            }
        })
        .collect()
}

/// Labelled examples for logistic regression: `dims`-dimensional points
/// whose labels follow a fixed random hyperplane plus noise (the §6.2
/// input).
pub fn logreg_data(count: usize, dims: usize, seed: u64) -> Vec<(Vec<f64>, f64)> {
    let mut rng = Xorshift::new(seed);
    let truth: Vec<f64> = (0..dims).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    (0..count)
        .map(|_| {
            let x: Vec<f64> = (0..dims).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let dot: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            let label = if dot + rng.range_f64(-0.1, 0.1) > 0.0 {
                1.0
            } else {
                0.0
            };
            (x, label)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_graph(100, 50, 7), random_graph(100, 50, 7));
        assert_eq!(powerlaw_graph(100, 50, 7), powerlaw_graph(100, 50, 7));
        assert_eq!(zipf_words(50, 100, 7), zipf_words(50, 100, 7));
        assert_eq!(tweet_stream(20, 50, 10, 7), tweet_stream(20, 50, 10, 7));
    }

    #[test]
    fn graphs_respect_bounds() {
        for (a, b) in random_graph(10, 100, 1) {
            assert!(a < 10 && b < 10);
        }
        for (a, b) in powerlaw_graph(10, 100, 1) {
            assert!(a < 10 && b < 10);
            assert_ne!(a, b, "no self loops in the follower graph");
        }
    }

    #[test]
    fn powerlaw_is_skewed() {
        let edges = powerlaw_graph(1000, 20_000, 3);
        let mut indeg = std::collections::HashMap::new();
        for (_, b) in &edges {
            *indeg.entry(b).or_insert(0u64) += 1;
        }
        let max = indeg.values().max().copied().unwrap_or(0);
        let mean = 20_000.0 / 1000.0;
        assert!(
            max as f64 > 5.0 * mean,
            "expected a heavy tail: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn zipf_head_dominates() {
        let words = zipf_words(10_000, 1000, 5);
        let head = words.iter().filter(|w| *w == "w0").count();
        assert!(head > 10_000 / 1000, "w0 should be far above uniform");
    }

    #[test]
    fn logreg_labels_are_binary() {
        for (_, y) in logreg_data(100, 5, 2) {
            assert!(y == 0.0 || y == 1.0);
        }
    }
}
