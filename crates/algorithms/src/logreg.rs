//! Logistic regression with the data-parallel AllReduce (§6.2).
//!
//! The paper's Vowpal Wabbit integration runs each iteration in three
//! phases: update local state, train on local data, and a global
//! AllReduce of the gradient. Here each *epoch* of the dataflow is one
//! iteration: workers compute gradients over their local shards outside
//! the dataflow (as VW does), feed them in, and receive the summed
//! gradient through [`AllReduceOps::all_reduce_sum`].

use std::sync::Arc;

use naiad::{execute, Config};
use naiad_operators::prelude::*;

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Gradient of the log-loss over `shard` at `weights`.
pub fn gradient(shard: &[(Vec<f64>, f64)], weights: &[f64]) -> Vec<f64> {
    let mut grad = vec![0.0; weights.len()];
    for (x, y) in shard {
        let p = sigmoid(x.iter().zip(weights).map(|(a, w)| a * w).sum());
        let err = p - y;
        for (g, a) in grad.iter_mut().zip(x) {
            *g += err * a;
        }
    }
    grad
}

/// Mean log-loss over `shard` at `weights`.
pub fn log_loss(shard: &[(Vec<f64>, f64)], weights: &[f64]) -> f64 {
    let mut loss = 0.0;
    for (x, y) in shard {
        let p = sigmoid(x.iter().zip(weights).map(|(a, w)| a * w).sum()).clamp(1e-12, 1.0 - 1e-12);
        loss -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
    }
    loss / shard.len().max(1) as f64
}

/// Trains for `iterations` epochs of batch gradient descent across the
/// cluster, each worker holding an equal shard of `data`. Returns every
/// worker's final weight vector (all identical — the AllReduce guarantee).
pub fn train(
    config: Config,
    data: Vec<(Vec<f64>, f64)>,
    dims: usize,
    iterations: u64,
    learning_rate: f64,
) -> Vec<Vec<f64>> {
    let data = Arc::new(data);
    let total = data.len().max(1) as f64;
    execute(config, move |worker| {
        let shard: Vec<(Vec<f64>, f64)> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % worker.peers() == worker.index())
            .map(|(_, d)| d.clone())
            .collect();
        let summed = std::rc::Rc::new(std::cell::RefCell::new(Vec::<Vec<f64>>::new()));
        let sink = summed.clone();
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, grads) = scope.new_input::<Vec<f64>>();
            let reduced = grads.all_reduce_sum();
            reduced.subscribe(move |_epoch, mut vectors| {
                assert_eq!(vectors.len(), 1, "one reduced gradient per epoch");
                sink.borrow_mut().push(vectors.pop().expect("just checked"));
            });
            let probe = grads.probe();
            (input, probe)
        });
        let mut weights = vec![0.0; dims];
        for epoch in 0..iterations {
            input.send(gradient(&shard, &weights));
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            // Wait for the subscriber to hand us this epoch's sum.
            while summed.borrow().len() <= epoch as usize {
                worker.step();
            }
            let grad = summed.borrow()[epoch as usize].clone();
            for (w, g) in weights.iter_mut().zip(&grad) {
                *w -= learning_rate * g / total;
            }
        }
        input.close();
        worker.step_until_done();
        weights
    })
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::logreg_data;

    #[test]
    fn training_reduces_loss_and_workers_agree() {
        let data = logreg_data(400, 5, 42);
        let before = log_loss(&data, &[0.0; 5]);
        let weights = train(Config::single_process(3), data.clone(), 5, 20, 0.5);
        // All workers end with identical weights.
        for w in &weights[1..] {
            for (a, b) in w.iter().zip(&weights[0]) {
                assert!((a - b).abs() < 1e-12, "weights diverged across workers");
            }
        }
        let after = log_loss(&data, &weights[0]);
        assert!(
            after < before * 0.7,
            "training failed to reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn distributed_training_matches_sequential() {
        let data = logreg_data(200, 4, 7);
        let solo = train(Config::single_process(1), data.clone(), 4, 10, 0.5);
        let multi = train(Config::processes_and_workers(2, 2), data, 4, 10, 0.5);
        for (a, b) in solo[0].iter().zip(&multi[0]) {
            assert!((a - b).abs() < 1e-9, "parallel training diverged");
        }
    }
}
