//! Regression: the fabric's per-link FIFO and duplicate-suppression
//! guarantees must survive latency injection (§2.2's exactly-once,
//! in-order channel contract is what the progress protocol's per-sender
//! sequence numbers are built on).
//!
//! * Data and Progress envelopes arrive in send order per source, each
//!   exactly once, even when a lossy latency model stalls the link and
//!   the fault plan injects wire duplicates.
//! * Control envelopes (heartbeats) are latency-exempt and ride ahead,
//!   without perturbing the data-space dedup high-water mark.

use std::time::Duration;

use naiad_netsim::{Fabric, FaultPlan, LatencyModel, TrafficClass};

/// Payload helper: (index) encoded little-endian.
fn payload(i: u32) -> naiad_wire::Bytes {
    i.to_le_bytes().to_vec().into()
}

fn index_of(payload: &[u8]) -> u32 {
    u32::from_le_bytes(payload.try_into().expect("4-byte payload"))
}

const MESSAGES: u32 = 200;

/// Two senders blast sequenced Data and Progress streams at one receiver
/// through a stalling, duplicating fabric: every message arrives exactly
/// once, in per-source send order.
#[test]
fn fifo_and_dedup_survive_lossy_latency() {
    let latency = LatencyModel::lossy(
        Duration::from_micros(200),
        0.3,
        Duration::from_millis(2),
        0xF1F0,
    );
    let plan = FaultPlan::seeded(0xF1F0).duplicate_probability(0.25);
    let mut eps = Fabric::builder(3).latency(latency).faults(plan).build();
    let mut receiver = eps.pop().expect("endpoint 2");
    let mut progress_sender = eps.pop().expect("endpoint 1");
    let mut data_sender = eps.pop().expect("endpoint 0");

    for i in 0..MESSAGES {
        data_sender
            .send(2, 7, TrafficClass::Data, payload(i))
            .expect("no drops in this plan");
        progress_sender
            .send(2, 9, TrafficClass::Progress, payload(i))
            .expect("no drops in this plan");
    }

    let mut next_expected = [0u32; 2];
    for _ in 0..(2 * MESSAGES) {
        let env = receiver
            .recv_deadline(Some(Duration::from_secs(30)))
            .expect("all messages deliverable");
        let (src, class, channel) = (env.src, env.class, env.channel);
        assert!(src < 2, "unexpected source {src}");
        let expected_class = [TrafficClass::Data, TrafficClass::Progress][src];
        let expected_channel = [7, 9][src];
        assert_eq!(class, expected_class);
        assert_eq!(channel, expected_channel);
        // Exactly-once, in-order per source: each stream's payloads count
        // 0, 1, 2, … with no duplicate and no reordering, despite stalls
        // and injected wire duplicates.
        assert_eq!(
            index_of(&env.payload),
            next_expected[src],
            "stream from {src} reordered or duplicated"
        );
        next_expected[src] += 1;
    }
    assert_eq!(next_expected, [MESSAGES; 2], "a stream came up short");

    // The fabric really did inject duplicates — and suppressed every one.
    let faults = receiver.metrics().faults();
    assert!(faults.duplicated > 0, "plan injected no duplicates");
    assert_eq!(faults.duplicated, faults.duplicates_suppressed);
}

/// Control traffic is latency-exempt: pings sent *after* a burst of
/// delayed data are deliverable immediately, and their separate sequence
/// space leaves the data stream's dedup and ordering untouched.
#[test]
fn control_rides_ahead_without_perturbing_data_dedup() {
    const PINGS: u32 = 5;
    let latency = LatencyModel::lossy(
        Duration::from_millis(5),
        0.2,
        Duration::from_millis(5),
        0xBEA7,
    );
    let plan = FaultPlan::seeded(0xBEA7).duplicate_probability(0.25);
    let mut eps = Fabric::builder(2).latency(latency).faults(plan).build();
    let mut receiver = eps.pop().expect("endpoint 1");
    let mut sender = eps.pop().expect("endpoint 0");

    for i in 0..MESSAGES {
        sender
            .send(1, 7, TrafficClass::Data, payload(i))
            .expect("no drops in this plan");
    }
    for i in 0..PINGS {
        sender.send_control(1, 11, payload(i)).expect("link is up");
    }

    let mut controls_seen = 0u32;
    let mut data_seen = 0u32;
    for _ in 0..(MESSAGES + PINGS) {
        let env = receiver
            .recv_deadline(Some(Duration::from_secs(30)))
            .expect("all messages deliverable");
        match env.class {
            TrafficClass::Control => {
                // Every ping outruns the ≥5 ms-delayed data even though it
                // was sent after all of it.
                assert_eq!(data_seen, 0, "a control message queued behind data");
                assert_eq!(env.channel, 11);
                assert_eq!(index_of(&env.payload), controls_seen);
                controls_seen += 1;
            }
            TrafficClass::Data => {
                assert_eq!(env.channel, 7);
                assert_eq!(
                    index_of(&env.payload),
                    data_seen,
                    "data stream reordered or duplicated"
                );
                data_seen += 1;
            }
            other => panic!("unexpected class {other:?}"),
        }
    }
    assert_eq!(controls_seen, PINGS);
    assert_eq!(data_seen, MESSAGES);
    // Control bytes are metered under their own class, data under Data.
    let metrics = receiver.metrics();
    assert_eq!(
        metrics.network_bytes(TrafficClass::Control),
        u64::from(PINGS) * 4
    );
    assert_eq!(
        metrics.network_bytes(TrafficClass::Data),
        u64::from(MESSAGES) * 4
    );
}
