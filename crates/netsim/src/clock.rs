//! A cluster-wide monotonic clock shared by every endpoint of a fabric.
//!
//! Failure detection (heartbeats, suspicion timeouts) needs a single time
//! base that all processes agree on. In a real deployment each machine has
//! its own clock and the detector must tolerate skew; in the simulated
//! fabric we can do better and hand every endpoint an `Arc` of the same
//! origin instant, so "the cluster's opinion of now" is exact and
//! timestamps embedded in heartbeat payloads are directly comparable.
//!
//! The clock is monotonic (backed by [`Instant`]) and reports nanoseconds
//! since fabric construction, which keeps payloads small (a single `u64`)
//! and makes zero a meaningful "never heard from" sentinel.

use std::time::{Duration, Instant};

/// Monotonic nanosecond clock shared by all endpoints of one fabric.
#[derive(Debug)]
pub struct ClusterClock {
    origin: Instant,
}

impl ClusterClock {
    /// Create a clock whose epoch is "now". Called once per fabric by
    /// [`FabricBuilder::build`](crate::FabricBuilder::build).
    pub(crate) fn new() -> Self {
        ClusterClock {
            // lint-allow(NS0003): this is the one sanctioned wall-clock
            // read — ClusterClock *is* the fabric's time source, and all
            // other modules are expected to route through it.
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the fabric was built. Saturates at
    /// `u64::MAX` (after ~584 years, which outlives any test run).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time since the fabric was built, as a [`Duration`].
    pub fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = ClusterClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn duration_and_ns_agree() {
        let clock = ClusterClock::new();
        let d = clock.now();
        let ns = clock.now_ns();
        // `now_ns` was sampled after `now`, so it can only be larger.
        assert!(ns >= u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}
