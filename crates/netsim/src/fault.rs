//! Deterministic fault injection for the fabric.
//!
//! The paper's fault-tolerance story (§3.4) is exercised here by making
//! the simulated network misbehave on purpose: links can drop or
//! duplicate messages, scheduled partitions can sever a link for a
//! window of sends, and whole processes can crash. Every decision is
//! drawn from a seeded generator salted per link, so a given
//! [`FaultPlan`] produces the same fault sequence on every run — the
//! property the recovery tests rely on.
//!
//! Faults are *sender-visible*: a dropped or partitioned send returns
//! [`SendError`] instead of silently vanishing. The fabric models the
//! wire *below* TCP; the runtime's bounded retry loop plays the role of
//! TCP retransmission, so per-link FIFO is preserved (a failed send
//! never entered the channel). Duplicated messages model the opposite
//! failure — delivery above the retransmit layer — and are suppressed at
//! the receiver by per-link sequence numbers, exactly as TCP suppresses
//! duplicate segments.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::FabricMetrics;

/// A scheduled partition of one directed link: send attempts numbered
/// `from..until` on `src → dst` fail with [`SendError::Partitioned`].
///
/// Windows are counted in *send attempts* on the link (failed attempts
/// included), so a retrying sender eventually emerges from the window —
/// the partition heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// Sending endpoint.
    pub src: usize,
    /// Receiving endpoint.
    pub dst: usize,
    /// First affected attempt number (0-based).
    pub from: u64,
    /// First attempt past the window.
    pub until: u64,
}

/// A scheduled process crash: once endpoint `process` has attempted
/// `after_sends` sends in total, it is marked crashed and every
/// subsequent send from or to it fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The endpoint that crashes.
    pub process: usize,
    /// Total send attempts by that endpoint before the crash fires.
    pub after_sends: u64,
}

/// A deterministic, seeded fault-injection plan for the whole fabric.
///
/// The default plan injects nothing. Probabilistic faults (drops and
/// duplicates) apply only to cross-process links — loopback traffic
/// never touches a physical network — while partitions and crashes
/// follow their explicit schedules.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-link fault generators.
    pub seed: u64,
    /// Per-message probability in [0, 1] that a cross-process send is
    /// dropped (sender sees [`SendError::Dropped`]).
    pub drop_probability: f64,
    /// Per-message probability in [0, 1] that a cross-process send is
    /// delivered twice (receiver suppresses the copy).
    pub duplicate_probability: f64,
    /// Scheduled link partitions.
    pub partitions: Vec<LinkPartition>,
    /// Scheduled process crashes.
    pub crashes: Vec<CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(1)
    }
}

impl FaultPlan {
    /// A plan that injects nothing, with fault generators seeded by `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed: seed.max(1),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 1].
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.drop_probability = p;
        self
    }

    /// Sets the per-message duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 1].
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.duplicate_probability = p;
        self
    }

    /// Schedules a partition of the `src → dst` link for send attempts
    /// `from..until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn partition(mut self, src: usize, dst: usize, from: u64, until: u64) -> Self {
        assert!(from < until, "empty partition window {from}..{until}");
        self.partitions.push(LinkPartition {
            src,
            dst,
            from,
            until,
        });
        self
    }

    /// Schedules a crash of `process` after it has attempted
    /// `after_sends` sends.
    pub fn crash(mut self, process: usize, after_sends: u64) -> Self {
        self.crashes.push(CrashPoint {
            process,
            after_sends,
        });
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_inert(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// A copy of the plan with all scheduled crashes removed — what the
    /// recovery coordinator runs after a crash has been absorbed (the
    /// "restarted" process does not re-crash), keeping the lossy-link
    /// behaviour intact.
    pub fn without_crashes(&self) -> Self {
        let mut plan = self.clone();
        plan.crashes.clear();
        plan
    }

    /// A copy of the plan with **every** schedule removed — crashes *and*
    /// partitions — keeping only the probabilistic losses. A restarted
    /// fabric resets its per-link attempt counters, so scheduled
    /// partition windows would re-fire from attempt zero on every
    /// recovery attempt (forever, for open-ended windows); the recovery
    /// coordinator therefore absorbs schedules wholesale once a fatal
    /// fault has been observed.
    pub fn without_schedules(&self) -> Self {
        let mut plan = self.clone();
        plan.crashes.clear();
        plan.partitions.clear();
        plan
    }
}

/// Error returned by a faulting [`send`](crate::NetSender::send).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The message was lost in flight (transient: a retry models the
    /// TCP retransmission that would mask this in a real deployment).
    Dropped {
        /// Sending endpoint.
        src: usize,
        /// Receiving endpoint.
        dst: usize,
    },
    /// The link is partitioned (transient if the partition window ends).
    Partitioned {
        /// Sending endpoint.
        src: usize,
        /// Receiving endpoint.
        dst: usize,
    },
    /// The destination process has crashed (fatal for this attempt; only
    /// cluster-level recovery helps).
    PeerCrashed {
        /// The crashed destination.
        dst: usize,
    },
    /// The sending process itself has crashed.
    SelfCrashed {
        /// The crashed sender.
        src: usize,
    },
    /// The destination endpoint was dropped (its receiver is gone).
    Disconnected {
        /// The vanished destination.
        dst: usize,
    },
}

impl SendError {
    /// Whether a bounded retry can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SendError::Dropped { .. } | SendError::Partitioned { .. }
        )
    }
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Dropped { src, dst } => write!(f, "message dropped on link {src} → {dst}"),
            SendError::Partitioned { src, dst } => write!(f, "link {src} → {dst} is partitioned"),
            SendError::PeerCrashed { dst } => write!(f, "destination process {dst} has crashed"),
            SendError::SelfCrashed { src } => write!(f, "sending process {src} has crashed"),
            SendError::Disconnected { dst } => write!(f, "destination endpoint {dst} is gone"),
        }
    }
}

impl std::error::Error for SendError {}

/// Fabric-wide mutable fault state, shared by all endpoints.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    crashed: Vec<AtomicBool>,
    /// Directed links severed at runtime via [`FaultController`].
    dynamic_partitions: Mutex<HashSet<(usize, usize)>>,
    /// Shared meters; crash transitions are counted here.
    metrics: Arc<FabricMetrics>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, processes: usize, metrics: Arc<FabricMetrics>) -> Self {
        let mut crashed = Vec::with_capacity(processes);
        crashed.resize_with(processes, || AtomicBool::new(false));
        FaultState {
            plan,
            crashed,
            dynamic_partitions: Mutex::new(HashSet::new()),
            metrics,
        }
    }

    pub(crate) fn is_crashed(&self, process: usize) -> bool {
        self.crashed
            .get(process)
            .is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// Marks `process` crashed; returns whether this call flipped it.
    pub(crate) fn mark_crashed(&self, process: usize) -> bool {
        let flipped = !self.crashed[process].swap(true, Ordering::AcqRel);
        if flipped {
            self.metrics.record_crash();
        }
        flipped
    }

    pub(crate) fn clear_crashed(&self, process: usize) {
        self.crashed[process].store(false, Ordering::Release);
    }

    pub(crate) fn crash_count(&self) -> u64 {
        self.metrics.faults().crashes
    }

    fn partitions(&self) -> std::sync::MutexGuard<'_, HashSet<(usize, usize)>> {
        match self.dynamic_partitions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub(crate) fn is_dynamically_partitioned(&self, src: usize, dst: usize) -> bool {
        self.partitions().contains(&(src, dst))
    }

    pub(crate) fn set_partition(&self, src: usize, dst: usize, severed: bool) {
        let mut parts = self.partitions();
        if severed {
            parts.insert((src, dst));
        } else {
            parts.remove(&(src, dst));
        }
    }
}

/// A handle for injecting faults at runtime: crash or revive a process,
/// sever or heal a directed link. Cloneable and shareable across
/// threads; obtained from [`Endpoint::fault_controller`](crate::Endpoint::fault_controller).
#[derive(Debug, Clone)]
pub struct FaultController {
    pub(crate) state: Arc<FaultState>,
}

impl FaultController {
    /// Marks `process` crashed: every send from or to it now fails.
    pub fn crash(&self, process: usize) {
        self.state.mark_crashed(process);
    }

    /// Clears the crashed flag of `process` (a restart in place).
    pub fn revive(&self, process: usize) {
        self.state.clear_crashed(process);
    }

    /// Whether `process` is currently marked crashed.
    pub fn is_crashed(&self, process: usize) -> bool {
        self.state.is_crashed(process)
    }

    /// Severs the directed link `src → dst`.
    pub fn sever(&self, src: usize, dst: usize) {
        self.state.set_partition(src, dst, true);
    }

    /// Heals the directed link `src → dst`.
    pub fn heal(&self, src: usize, dst: usize) {
        self.state.set_partition(src, dst, false);
    }

    /// Number of processes ever marked crashed.
    pub fn crashes(&self) -> u64 {
        self.state.crash_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_compose_and_validate() {
        let plan = FaultPlan::seeded(9)
            .drop_probability(0.1)
            .duplicate_probability(0.05)
            .partition(0, 1, 10, 20)
            .crash(2, 100);
        assert_eq!(plan.seed, 9);
        assert!(!plan.is_inert());
        assert!(plan.without_crashes().crashes.is_empty());
        assert_eq!(plan.without_crashes().partitions.len(), 1);
        assert!(FaultPlan::default().is_inert());
    }

    #[test]
    fn without_schedules_keeps_probabilistic_losses() {
        let plan = FaultPlan::seeded(9)
            .drop_probability(0.1)
            .duplicate_probability(0.05)
            .partition(0, 1, 0, u64::MAX)
            .crash(1, 50);
        let absorbed = plan.without_schedules();
        assert!(absorbed.crashes.is_empty());
        assert!(absorbed.partitions.is_empty());
        assert_eq!(absorbed.drop_probability, 0.1);
        assert_eq!(absorbed.duplicate_probability, 0.05);
        assert_eq!(absorbed.seed, plan.seed);
        assert!(!absorbed.is_inert());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn plan_rejects_bad_probability() {
        let _ = FaultPlan::seeded(1).drop_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "empty partition window")]
    fn plan_rejects_empty_window() {
        let _ = FaultPlan::seeded(1).partition(0, 1, 5, 5);
    }

    #[test]
    fn controller_flips_state() {
        let metrics = Arc::new(FabricMetrics::new(3));
        let state = Arc::new(FaultState::new(FaultPlan::default(), 3, metrics));
        let ctl = FaultController {
            state: state.clone(),
        };
        assert!(!ctl.is_crashed(1));
        ctl.crash(1);
        assert!(ctl.is_crashed(1));
        assert_eq!(ctl.crashes(), 1);
        ctl.crash(1); // idempotent
        assert_eq!(ctl.crashes(), 1);
        ctl.revive(1);
        assert!(!ctl.is_crashed(1));

        ctl.sever(0, 2);
        assert!(state.is_dynamically_partitioned(0, 2));
        assert!(!state.is_dynamically_partitioned(2, 0));
        ctl.heal(0, 2);
        assert!(!state.is_dynamically_partitioned(0, 2));
    }

    #[test]
    fn transience_classification() {
        assert!(SendError::Dropped { src: 0, dst: 1 }.is_transient());
        assert!(SendError::Partitioned { src: 0, dst: 1 }.is_transient());
        assert!(!SendError::PeerCrashed { dst: 1 }.is_transient());
        assert!(!SendError::SelfCrashed { src: 0 }.is_transient());
        assert!(!SendError::Disconnected { dst: 1 }.is_transient());
    }
}
