//! Delivery-latency injection.
//!
//! §3.5 of the paper identifies micro-stragglers — transient delivery
//! stalls from packet loss, timer coarseness, and GC — as the main obstacle
//! to low-latency coordination. The real runtime in this reproduction runs
//! in shared memory, so stalls are injected here instead: a [`LatencyModel`]
//! assigns each message a delivery delay, and endpoints hold messages until
//! their delivery time.

use std::time::Duration;

use naiad_rng::Xorshift;

/// A per-message delivery delay model.
///
/// The model is deterministic given its seed, which keeps latency
/// experiments repeatable.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Delay applied to every message (propagation plus protocol overhead).
    pub base: Duration,
    /// Probability in [0, 1] that a message suffers a stall.
    pub stall_probability: f64,
    /// Duration of a stall (e.g. a 20 ms retransmit timeout, §3.5).
    pub stall: Duration,
    /// Link bandwidth in bytes per second; each message additionally
    /// serializes onto the link at this rate (`None` = infinite).
    pub bytes_per_sec: Option<f64>,
    /// Seed for the internal xorshift generator.
    pub seed: u64,
}

impl LatencyModel {
    /// A model with a fixed delay and no stalls.
    pub fn constant(base: Duration) -> Self {
        LatencyModel {
            base,
            stall_probability: 0.0,
            stall: Duration::ZERO,
            bytes_per_sec: None,
            seed: 1,
        }
    }

    /// Adds a link-bandwidth limit: a message of `n` bytes takes an extra
    /// `n / bytes_per_sec` to serialize onto the link, and back-to-back
    /// messages queue behind each other (FIFO delivery already enforces
    /// the ordering; the bandwidth term supplies the spacing).
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// A model emulating a best-effort network: `base` propagation delay
    /// plus a `stall` of the given probability (packet loss followed by a
    /// retransmit timeout).
    pub fn lossy(base: Duration, stall_probability: f64, stall: Duration, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stall_probability),
            "probability must be in [0, 1]"
        );
        LatencyModel {
            base,
            stall_probability,
            stall,
            bytes_per_sec: None,
            seed: seed.max(1),
        }
    }
}

/// Stateful sampler for a [`LatencyModel`]; one per link so streams of
/// delays are independent across links.
#[derive(Debug, Clone)]
pub(crate) struct LatencySampler {
    model: LatencyModel,
    rng: Xorshift,
}

impl LatencySampler {
    pub(crate) fn new(model: LatencyModel, link_salt: u64) -> Self {
        let rng = Xorshift::with_salt(model.seed, link_salt);
        LatencySampler { model, rng }
    }

    /// Propagation + stall delay for one message of `payload_len` bytes,
    /// plus the time the message occupies the link (returned separately so
    /// the sender can serialize back-to-back messages).
    pub(crate) fn sample(&mut self, payload_len: usize) -> (Duration, Duration) {
        let mut delay = self.model.base;
        if self.model.stall_probability > 0.0 && self.rng.unit() < self.model.stall_probability {
            delay += self.model.stall;
        }
        let occupancy = match self.model.bytes_per_sec {
            Some(rate) => Duration::from_secs_f64(payload_len as f64 / rate),
            None => Duration::ZERO,
        };
        (delay, occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_never_stalls() {
        let mut s = LatencySampler::new(LatencyModel::constant(Duration::from_micros(5)), 3);
        for _ in 0..100 {
            assert_eq!(s.sample(0), (Duration::from_micros(5), Duration::ZERO));
        }
    }

    #[test]
    fn bandwidth_adds_size_proportional_occupancy() {
        let model = LatencyModel::constant(Duration::ZERO).with_bandwidth(1_000_000.0);
        let mut s = LatencySampler::new(model, 1);
        let (_, occ) = s.sample(10_000);
        assert_eq!(occ, Duration::from_millis(10));
        let (_, occ) = s.sample(0);
        assert_eq!(occ, Duration::ZERO);
    }

    #[test]
    fn lossy_model_stalls_at_roughly_the_configured_rate() {
        let model = LatencyModel::lossy(Duration::ZERO, 0.25, Duration::from_millis(20), 42);
        let mut s = LatencySampler::new(model, 0);
        let stalls = (0..10_000).filter(|_| !s.sample(0).0.is_zero()).count();
        assert!((2_000..3_000).contains(&stalls), "stalls = {stalls}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed_and_salt() {
        let model = LatencyModel::lossy(Duration::ZERO, 0.5, Duration::from_millis(1), 7);
        let mut a = LatencySampler::new(model.clone(), 1);
        let mut b = LatencySampler::new(model.clone(), 1);
        let mut c = LatencySampler::new(model, 2);
        let sa: Vec<_> = (0..64).map(|_| a.sample(0)).collect();
        let sb: Vec<_> = (0..64).map(|_| b.sample(0)).collect();
        let sc: Vec<_> = (0..64).map(|_| c.sample(0)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_invalid_probability() {
        let _ = LatencyModel::lossy(Duration::ZERO, 1.5, Duration::ZERO, 1);
    }
}
