//! Endpoints and the fabric builder.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use naiad_rng::Xorshift;
use naiad_wire::Bytes;

use crate::clock::ClusterClock;
use crate::fault::{FaultController, FaultState};
use crate::latency::LatencySampler;
use crate::metrics::{FabricMetrics, TrafficClass};
use crate::{FaultPlan, LatencyModel, SendError};

/// A message in flight between two endpoints.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Index of the sending endpoint.
    pub src: usize,
    /// Application-chosen channel tag, used by the runtime to route the
    /// payload to the right dataflow connector or to the progress protocol.
    pub channel: u32,
    /// Accounting class.
    pub class: TrafficClass,
    /// Per-link delivery sequence number, used by the receiver to suppress
    /// fabric-duplicated messages (strictly increasing per `src` at any
    /// receiver; gaps mark dropped messages).
    pub seq: u64,
    /// Serialized payload. `Bytes` makes broadcast fan-out cheap: the same
    /// buffer is reference-counted across all destinations.
    pub payload: Bytes,
}

struct Timed {
    deliver_at: Option<Instant>,
    envelope: Envelope,
}

/// Error returned by [`Endpoint::recv_blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Every peer endpoint has been dropped and no messages remain.
    Disconnected,
    /// The deadline elapsed before a message became deliverable.
    Timeout,
}

/// The entry point for building a fabric.
///
/// `Fabric` itself is a namespace; [`FabricBuilder::build`] hands out the
/// per-process [`Endpoint`]s, which is all the runtime needs.
#[derive(Debug)]
pub struct Fabric;

impl Fabric {
    /// Starts building a fabric with `processes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is zero.
    pub fn builder(processes: usize) -> FabricBuilder {
        assert!(processes > 0, "a fabric needs at least one endpoint");
        FabricBuilder {
            processes,
            latency: None,
            faults: None,
        }
    }
}

/// Configures and constructs a fabric.
#[derive(Debug)]
pub struct FabricBuilder {
    processes: usize,
    latency: Option<LatencyModel>,
    faults: Option<FaultPlan>,
}

impl FabricBuilder {
    /// Injects a delivery-latency model on every link (loopback included:
    /// in Naiad even local progress updates traverse the broadcast path).
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Injects a fault plan: message drops, duplications, scheduled link
    /// partitions, and scheduled process crashes. See [`FaultPlan`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Builds the fabric, returning one endpoint per process, in index
    /// order. Endpoints are `Send`, so each can move to its process thread.
    pub fn build(self) -> Vec<Endpoint> {
        let n = self.processes;
        let metrics = Arc::new(FabricMetrics::new(n));
        let clock = Arc::new(ClusterClock::new());
        let plan = self.faults.unwrap_or_default();
        let fault_seed = plan.seed;
        let faults = Arc::new(FaultState::new(plan, n, metrics.clone()));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Timed>();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(index, receiver)| {
                let samplers = self.latency.as_ref().map(|model| {
                    (0..n)
                        .map(|dst| {
                            let salt = (index as u64) << 32 | dst as u64;
                            LatencySampler::new(model.clone(), salt)
                        })
                        .collect::<Vec<_>>()
                });
                let fault_rng = (0..n)
                    .map(|dst| {
                        let salt = (index as u64) << 32 | dst as u64;
                        Xorshift::with_salt(fault_seed, salt)
                    })
                    .collect();
                Endpoint {
                    sender: NetSender {
                        index,
                        senders: senders.clone(),
                        metrics: metrics.clone(),
                        clock: clock.clone(),
                        samplers,
                        last_delivery: vec![None; n],
                        faults: faults.clone(),
                        fault_rng,
                        next_seq: vec![0; n],
                        next_ctl_seq: vec![0; n],
                        link_attempts: vec![0; n],
                        total_attempts: 0,
                    },
                    receiver: NetReceiver {
                        receiver,
                        pending: BinaryHeap::new(),
                        arrivals: 0,
                        last_seen: HashMap::new(),
                        metrics: metrics.clone(),
                    },
                }
            })
            .collect()
    }
}

/// One process's attachment to the fabric.
///
/// Sending is addressed by endpoint index; receiving merges all incoming
/// links. Per-link FIFO order is guaranteed even under latency injection,
/// matching TCP's in-order delivery — the property the progress protocol
/// of §3.3 depends on. Fault injection preserves FIFO as well: a failed
/// send never enters the link, and duplicated deliveries are suppressed
/// at the receiver by per-link sequence numbers.
///
/// An endpoint can be [`split`](Endpoint::split) into a [`NetSender`] and a
/// [`NetReceiver`] so a process's workers can share the send half (behind a
/// lock) while a dedicated router thread owns the receive half.
pub struct Endpoint {
    sender: NetSender,
    receiver: NetReceiver,
}

/// The sending half of an [`Endpoint`].
pub struct NetSender {
    index: usize,
    senders: Vec<Sender<Timed>>,
    metrics: Arc<FabricMetrics>,
    /// Fabric-wide monotonic clock, shared by all endpoints.
    clock: Arc<ClusterClock>,
    samplers: Option<Vec<LatencySampler>>,
    /// Last scheduled delivery instant per destination, used to keep each
    /// link FIFO under randomized delays.
    last_delivery: Vec<Option<Instant>>,
    /// Shared fault-injection state.
    faults: Arc<FaultState>,
    /// Per-destination fault generators (independent, seeded streams).
    fault_rng: Vec<Xorshift>,
    /// Next per-link delivery sequence number, per destination.
    next_seq: Vec<u64>,
    /// Next control-channel sequence number, per destination. Control
    /// envelopes live in their own sequence space: they bypass latency
    /// injection, so threading them through the data sequence would make
    /// a prompt heartbeat look "newer" than a delayed data message and
    /// trip the receiver's duplicate suppression.
    next_ctl_seq: Vec<u64>,
    /// Send attempts per destination link (partition windows count these).
    link_attempts: Vec<u64>,
    /// Total send attempts by this endpoint (crash schedules count these).
    total_attempts: u64,
}

/// The receiving half of an [`Endpoint`].
pub struct NetReceiver {
    receiver: Receiver<Timed>,
    pending: BinaryHeap<Reverse<PendingEntry>>,
    /// Arrival counter used to break delivery-time ties FIFO.
    arrivals: u64,
    /// Highest envelope sequence number seen per source, for duplicate
    /// suppression.
    last_seen: HashMap<usize, u64>,
    metrics: Arc<FabricMetrics>,
}

struct PendingEntry {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for PendingEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for PendingEntry {}
impl PartialOrd for PendingEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl NetSender {
    /// This endpoint's index in the fabric.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The number of endpoints in the fabric.
    pub fn peers(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic meters.
    pub fn metrics(&self) -> &Arc<FabricMetrics> {
        &self.metrics
    }

    /// The fabric-wide monotonic clock shared by all endpoints.
    pub fn clock(&self) -> &Arc<ClusterClock> {
        &self.clock
    }

    /// A handle for injecting faults at runtime.
    pub fn fault_controller(&self) -> FaultController {
        FaultController {
            state: self.faults.clone(),
        }
    }

    /// Sends `payload` to endpoint `dst` on `channel`.
    ///
    /// Under an active [`FaultPlan`] the send can fail: the message may be
    /// dropped in flight, the link may be partitioned, or either process
    /// may have crashed — see [`SendError`] for which failures are worth
    /// retrying. Dropped messages are still metered (the bytes were put on
    /// the wire before being lost); partition and crash rejections are not.
    ///
    /// # Errors
    ///
    /// Returns a [`SendError`] describing the injected fault, or
    /// [`SendError::Disconnected`] if the destination endpoint is gone.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send(
        &mut self,
        dst: usize,
        channel: u32,
        class: TrafficClass,
        payload: Bytes,
    ) -> Result<(), SendError> {
        assert!(dst < self.senders.len(), "destination {dst} out of range");
        let src = self.index;

        // Scheduled crash: fires once this endpoint's attempt counter
        // reaches the crash point, failing this and every later send.
        let attempt = self.total_attempts;
        self.total_attempts += 1;
        if self
            .faults
            .plan
            .crashes
            .iter()
            .any(|c| c.process == src && attempt >= c.after_sends)
        {
            self.faults.mark_crashed(src);
        }
        if self.faults.is_crashed(src) {
            self.metrics.record_crash_reject();
            return Err(SendError::SelfCrashed { src });
        }
        if self.faults.is_crashed(dst) {
            self.metrics.record_crash_reject();
            return Err(SendError::PeerCrashed { dst });
        }

        // Partitions: scheduled windows count per-link attempts (so a
        // retrying sender eventually emerges), dynamic ones last until
        // healed.
        let link_attempt = self.link_attempts[dst];
        self.link_attempts[dst] += 1;
        let scheduled = self
            .faults
            .plan
            .partitions
            .iter()
            .any(|p| p.src == src && p.dst == dst && (p.from..p.until).contains(&link_attempt));
        if scheduled || self.faults.is_dynamically_partitioned(src, dst) {
            self.metrics.record_partition_reject();
            return Err(SendError::Partitioned { src, dst });
        }

        // The bytes now reach the wire: meter them, drops included.
        self.metrics
            .link(self.index, dst)
            .record(class, payload.len());

        // Probabilistic faults apply only to cross-process links; loopback
        // never crosses a physical network.
        let cross = src != dst;
        if cross
            && self.faults.plan.drop_probability > 0.0
            && self.fault_rng[dst].chance(self.faults.plan.drop_probability)
        {
            self.metrics.record_dropped();
            return Err(SendError::Dropped { src, dst });
        }
        let duplicate = cross
            && self.faults.plan.duplicate_probability > 0.0
            && self.fault_rng[dst].chance(self.faults.plan.duplicate_probability);

        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let deliver_at = self.schedule(dst, payload.len());
        let envelope = Envelope {
            src: self.index,
            channel,
            class,
            seq,
            payload,
        };
        let timed = Timed {
            deliver_at,
            envelope: envelope.clone(),
        };
        if self.senders[dst].send(timed).is_err() {
            return Err(SendError::Disconnected { dst });
        }
        if duplicate {
            // The copy carries the same sequence number, so the receiver
            // suppresses it; it trails the original on the link.
            self.metrics.record_duplicated();
            let deliver_at = self.schedule(dst, 0);
            let _ = self.senders[dst].send(Timed {
                deliver_at,
                envelope,
            });
        }
        Ok(())
    }

    /// Sends the same payload to every endpoint (including this one), the
    /// primitive used by progress-update broadcasts.
    ///
    /// # Errors
    ///
    /// Every destination is attempted; the first failure (in destination
    /// order) is returned. Callers needing per-destination recovery should
    /// loop over [`NetSender::send`] instead.
    pub fn broadcast(
        &mut self,
        channel: u32,
        class: TrafficClass,
        payload: &Bytes,
    ) -> Result<(), SendError> {
        let mut first_err = None;
        for dst in 0..self.senders.len() {
            if let Err(e) = self.send(dst, channel, class, payload.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Sends a liveness control message to endpoint `dst` on `channel`.
    ///
    /// The control channel models a tiny ping/heartbeat datagram riding a
    /// dedicated QoS class: it still respects the physical failure state —
    /// a crashed process can neither send nor be reached, and a
    /// partitioned link rejects it — but it is exempt from latency
    /// injection and from probabilistic drop/duplication, and it does
    /// **not** advance any fault-schedule counter. That last property is
    /// what makes fault schedules heartbeat-invariant: enabling
    /// heartbeats never shifts *when* a scheduled crash or partition
    /// window fires relative to data traffic, so a seeded run is
    /// bit-identical with detection on or off. Metered under
    /// [`TrafficClass::Control`].
    ///
    /// # Errors
    ///
    /// Returns [`SendError::SelfCrashed`] / [`SendError::PeerCrashed`] if
    /// either end is crashed, [`SendError::Partitioned`] if the link is
    /// severed (scheduled window or dynamic), or
    /// [`SendError::Disconnected`] if the destination endpoint is gone.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send_control(
        &mut self,
        dst: usize,
        channel: u32,
        payload: Bytes,
    ) -> Result<(), SendError> {
        assert!(dst < self.senders.len(), "destination {dst} out of range");
        let src = self.index;

        // Respect the physical failure state, but never *advance* it:
        // no attempt counters move and no crash schedule can fire here.
        if self.faults.is_crashed(src) {
            self.metrics.record_crash_reject();
            return Err(SendError::SelfCrashed { src });
        }
        if self.faults.is_crashed(dst) {
            self.metrics.record_crash_reject();
            return Err(SendError::PeerCrashed { dst });
        }
        // Scheduled windows are evaluated against the link's *current*
        // data-attempt position without consuming an attempt.
        let link_attempt = self.link_attempts[dst];
        let scheduled = self
            .faults
            .plan
            .partitions
            .iter()
            .any(|p| p.src == src && p.dst == dst && (p.from..p.until).contains(&link_attempt));
        if scheduled || self.faults.is_dynamically_partitioned(src, dst) {
            self.metrics.record_partition_reject();
            return Err(SendError::Partitioned { src, dst });
        }

        self.metrics
            .link(src, dst)
            .record(TrafficClass::Control, payload.len());

        let seq = self.next_ctl_seq[dst];
        self.next_ctl_seq[dst] += 1;
        let timed = Timed {
            // Control skips latency injection: detection latency is
            // governed by the detector's timeouts, not the link model.
            deliver_at: None,
            envelope: Envelope {
                src,
                channel,
                class: TrafficClass::Control,
                seq,
                payload,
            },
        };
        if self.senders[dst].send(timed).is_err() {
            return Err(SendError::Disconnected { dst });
        }
        Ok(())
    }

    fn schedule(&mut self, dst: usize, payload_len: usize) -> Option<Instant> {
        let samplers = self.samplers.as_mut()?;
        let (delay, occupancy) = samplers[dst].sample(payload_len);
        // lint-allow(NS0003): netsim models latency in real time by
        // design — the sampled delay (seeded, deterministic) is imposed
        // on the wall clock; delivery *order* comes from the sampler.
        let mut at = Instant::now() + delay;
        if let Some(prev) = self.last_delivery[dst] {
            // FIFO per link: never deliver before an earlier message, and
            // queue behind its link occupancy.
            at = at.max(prev);
        }
        // The message itself occupies the link for `occupancy`.
        at += occupancy;
        self.last_delivery[dst] = Some(at);
        Some(at)
    }
}

impl NetReceiver {
    fn absorb(&mut self, timed: Timed) -> Option<Envelope> {
        // Per-link duplicate suppression: arrival order equals send order
        // per source (mpsc preserves per-sender FIFO), so a non-increasing
        // sequence number can only be a fabric-injected duplicate.
        //
        // Control envelopes are exempt: they live in their own sequence
        // space (the fabric never duplicates them) and must not perturb
        // the data-space high-water mark.
        let env = &timed.envelope;
        if env.class == TrafficClass::Control {
            debug_assert!(timed.deliver_at.is_none());
            return Some(timed.envelope);
        }
        if let Some(&last) = self.last_seen.get(&env.src) {
            if env.seq <= last {
                self.metrics.record_duplicate_suppressed();
                return None;
            }
        }
        self.last_seen.insert(env.src, env.seq);
        match timed.deliver_at {
            None => Some(timed.envelope),
            Some(deliver_at) => {
                let seq = self.arrivals;
                self.arrivals += 1;
                self.pending.push(Reverse(PendingEntry {
                    deliver_at,
                    seq,
                    envelope: timed.envelope,
                }));
                None
            }
        }
    }

    fn pop_ready(&mut self, now: Instant) -> Option<Envelope> {
        if let Some(Reverse(head)) = self.pending.peek() {
            if head.deliver_at <= now {
                return self.pending.pop().map(|Reverse(e)| e.envelope);
            }
        }
        None
    }

    /// Returns the next deliverable message, if any, without blocking.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        // Drain the channel into the delay heap first so ready messages are
        // considered in delivery-time order.
        while let Ok(timed) = self.receiver.try_recv() {
            if let Some(env) = self.absorb(timed) {
                return Some(env);
            }
        }
        // lint-allow(NS0003): real-time delivery check; see `schedule`.
        self.pop_ready(Instant::now())
    }

    /// Blocks until a message is deliverable, all peers disconnect, or
    /// `timeout` (if given) elapses.
    pub fn recv_deadline(&mut self, timeout: Option<Duration>) -> Result<Envelope, RecvError> {
        // lint-allow(NS0003): real-time receive deadline; see `schedule`.
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(env) = self.try_recv() {
                return Ok(env);
            }
            // lint-allow(NS0003): real-time wakeup computation; see
            // `schedule`.
            let now = Instant::now();
            // Wake at the earliest of: next delayed delivery, caller deadline,
            // or a coarse tick to re-check for disconnection.
            let mut wait = Duration::from_millis(50);
            if let Some(Reverse(head)) = self.pending.peek() {
                wait = wait.min(head.deliver_at.saturating_duration_since(now));
            }
            if let Some(deadline) = deadline {
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                wait = wait.min(deadline - now);
            }
            match self.receiver.recv_timeout(wait) {
                Ok(timed) => {
                    if let Some(env) = self.absorb(timed) {
                        return Ok(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Channel closed: only delayed messages can remain.
                    if self.pending.is_empty() {
                        return Err(RecvError::Disconnected);
                    }
                }
            }
        }
    }

    /// Blocks until a message is deliverable or all peers disconnect.
    pub fn recv_blocking(&mut self) -> Result<Envelope, RecvError> {
        self.recv_deadline(None)
    }
}

impl Endpoint {
    /// Splits the endpoint into its send and receive halves.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (self.sender, self.receiver)
    }

    /// This endpoint's index in the fabric.
    pub fn index(&self) -> usize {
        self.sender.index()
    }

    /// The number of endpoints in the fabric.
    pub fn peers(&self) -> usize {
        self.sender.peers()
    }

    /// Shared traffic meters.
    pub fn metrics(&self) -> &Arc<FabricMetrics> {
        self.sender.metrics()
    }

    /// The fabric-wide monotonic clock shared by all endpoints.
    pub fn clock(&self) -> &Arc<ClusterClock> {
        self.sender.clock()
    }

    /// A handle for injecting faults at runtime.
    pub fn fault_controller(&self) -> FaultController {
        self.sender.fault_controller()
    }

    /// Sends `payload` to endpoint `dst` on `channel`; see [`NetSender::send`].
    ///
    /// # Errors
    ///
    /// See [`NetSender::send`].
    pub fn send(
        &mut self,
        dst: usize,
        channel: u32,
        class: TrafficClass,
        payload: Bytes,
    ) -> Result<(), SendError> {
        self.sender.send(dst, channel, class, payload)
    }

    /// Sends a liveness control message; see [`NetSender::send_control`].
    ///
    /// # Errors
    ///
    /// See [`NetSender::send_control`].
    pub fn send_control(
        &mut self,
        dst: usize,
        channel: u32,
        payload: Bytes,
    ) -> Result<(), SendError> {
        self.sender.send_control(dst, channel, payload)
    }

    /// Broadcasts to every endpoint; see [`NetSender::broadcast`].
    ///
    /// # Errors
    ///
    /// See [`NetSender::broadcast`].
    pub fn broadcast(
        &mut self,
        channel: u32,
        class: TrafficClass,
        payload: &Bytes,
    ) -> Result<(), SendError> {
        self.sender.broadcast(channel, class, payload)
    }

    /// Returns the next deliverable message, if any, without blocking.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        self.receiver.try_recv()
    }

    /// Blocks until a message is deliverable; see [`NetReceiver::recv_deadline`].
    ///
    /// # Errors
    ///
    /// See [`NetReceiver::recv_deadline`].
    pub fn recv_deadline(&mut self, timeout: Option<Duration>) -> Result<Envelope, RecvError> {
        self.receiver.recv_deadline(timeout)
    }

    /// Blocks until a message is deliverable or all peers disconnect.
    ///
    /// # Errors
    ///
    /// See [`NetReceiver::recv_deadline`].
    pub fn recv_blocking(&mut self) -> Result<Envelope, RecvError> {
        self.receiver.recv_blocking()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_fifo_order_per_link() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into()).unwrap();
        }
        for i in 0..100u8 {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn loopback_works() {
        let mut eps = Fabric::builder(1).build();
        let mut a = eps.pop().unwrap();
        a.send(0, 3, TrafficClass::Progress, vec![9].into()).unwrap();
        let env = a.try_recv().unwrap();
        assert_eq!((env.src, env.channel), (0, 3));
    }

    #[test]
    fn broadcast_reaches_everyone_and_meters_each_link() {
        let mut eps = Fabric::builder(3).build();
        let payload = Bytes::from_static(&[1, 2, 3, 4]);
        eps[0].broadcast(1, TrafficClass::Progress, &payload).unwrap();
        let metrics = eps[0].metrics().clone();
        for ep in eps.iter_mut() {
            let env = ep.recv_blocking().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.payload.len(), 4);
        }
        assert_eq!(metrics.total(TrafficClass::Progress, true).bytes, 12);
        // Loopback excluded: 2 links × 4 bytes.
        assert_eq!(metrics.network_bytes(TrafficClass::Progress), 8);
    }

    #[test]
    fn latency_delays_delivery_but_preserves_link_fifo() {
        let model =
            LatencyModel::lossy(Duration::from_millis(1), 0.5, Duration::from_millis(3), 11);
        let mut eps = Fabric::builder(2).latency(model).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let start = Instant::now();
        for i in 0..50u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into()).unwrap();
        }
        // Nothing should be deliverable immediately.
        assert!(b.try_recv().is_none());
        for i in 0..50u8 {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i, "FIFO violated under latency");
        }
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn recv_reports_disconnect_after_draining() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, TrafficClass::Data, vec![1].into()).unwrap();
        drop(a);
        drop(eps);
        assert!(b.recv_blocking().is_ok());
        // `b` still holds a sender to itself, so use a deadline to observe
        // quiescence rather than a hang.
        assert!(matches!(
            b.recv_deadline(Some(Duration::from_millis(10))),
            Err(RecvError::Timeout)
        ));
    }

    #[test]
    fn cross_thread_exchange() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..1000u32 {
                a.send(1, 0, TrafficClass::Data, i.to_le_bytes().to_vec().into())
                    .unwrap();
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            let env = b.recv_blocking().unwrap();
            sum += u64::from(u32::from_le_bytes(env.payload[..].try_into().unwrap()));
        }
        handle.join().unwrap();
        assert_eq!(sum, (0..1000u64).sum::<u64>());
    }
}

#[cfg(test)]
mod split_tests {
    use super::*;

    #[test]
    fn split_halves_cooperate_across_threads() {
        let mut eps = Fabric::builder(2).build();
        let (_b_tx, mut b_rx) = eps.pop().unwrap().split();
        let (mut a_tx, _a_rx) = eps.pop().unwrap().split();
        let handle = std::thread::spawn(move || {
            for i in 0..10u8 {
                a_tx.send(1, 0, TrafficClass::Data, vec![i].into()).unwrap();
            }
            a_tx
        });
        for i in 0..10u8 {
            let env = b_rx.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i);
        }
        let a_tx = handle.join().unwrap();
        assert_eq!(a_tx.metrics().link_counters(0, 1).data.messages, 10);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn drops_are_sender_visible_and_metered() {
        let plan = FaultPlan::seeded(7).drop_probability(0.3);
        let mut eps = Fabric::builder(2).faults(plan).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for i in 0..200u8 {
            match a.send(1, 0, TrafficClass::Data, vec![i].into()) {
                Ok(()) => delivered += 1,
                Err(SendError::Dropped { src: 0, dst: 1 }) => dropped += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(dropped > 20 && dropped < 100, "dropped = {dropped}");
        let faults = a.metrics().faults();
        assert_eq!(faults.dropped, dropped);
        // Exactly the successful sends arrive, in order.
        for _ in 0..delivered {
            assert!(b.recv_blocking().is_ok());
        }
        assert!(b.try_recv().is_none());
        // Dropped bytes were still metered (put on the wire, then lost).
        assert_eq!(
            a.metrics().link_counters(0, 1).data.messages,
            delivered + dropped
        );
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let outcome = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).drop_probability(0.5);
            let mut eps = Fabric::builder(2).faults(plan).build();
            let mut a = eps.swap_remove(0);
            (0..64u8)
                .map(|i| a.send(1, 0, TrafficClass::Data, vec![i].into()).is_ok())
                .collect()
        };
        assert_eq!(outcome(3), outcome(3));
        assert_ne!(outcome(3), outcome(4));
    }

    #[test]
    fn duplicates_are_suppressed_at_the_receiver() {
        let plan = FaultPlan::seeded(5).duplicate_probability(0.4);
        let mut eps = Fabric::builder(2).faults(plan).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into()).unwrap();
        }
        // All 100 arrive exactly once, in order, despite duplicates.
        for i in 0..100u8 {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i);
        }
        assert!(b.try_recv().is_none());
        let faults = b.metrics().faults();
        assert!(faults.duplicated > 10, "duplicated = {}", faults.duplicated);
        assert_eq!(faults.duplicated, faults.duplicates_suppressed);
    }

    #[test]
    fn scheduled_partition_rejects_inside_the_window_only() {
        let plan = FaultPlan::seeded(1).partition(0, 1, 2, 5);
        let mut eps = Fabric::builder(2).faults(plan).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut outcomes = Vec::new();
        for i in 0..8u8 {
            outcomes.push(a.send(1, 0, TrafficClass::Data, vec![i].into()).is_ok());
        }
        assert_eq!(
            outcomes,
            vec![true, true, false, false, false, true, true, true]
        );
        assert_eq!(a.metrics().faults().partition_rejects, 3);
        // Loopback and the reverse direction are unaffected.
        a.send(0, 0, TrafficClass::Data, vec![9].into()).unwrap();
        b.send(0, 0, TrafficClass::Data, vec![9].into()).unwrap();
    }

    #[test]
    fn dynamic_partition_and_heal() {
        let mut eps = Fabric::builder(2).build();
        let ctl = eps[0].fault_controller();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, TrafficClass::Data, vec![0].into()).unwrap();
        ctl.sever(0, 1);
        assert_eq!(
            a.send(1, 0, TrafficClass::Data, vec![1].into()),
            Err(SendError::Partitioned { src: 0, dst: 1 })
        );
        ctl.heal(0, 1);
        a.send(1, 0, TrafficClass::Data, vec![2].into()).unwrap();
        assert_eq!(b.recv_blocking().unwrap().payload[0], 0);
        assert_eq!(b.recv_blocking().unwrap().payload[0], 2);
    }

    #[test]
    fn scheduled_crash_fails_sends_in_both_directions() {
        let plan = FaultPlan::seeded(1).crash(0, 3);
        let mut eps = Fabric::builder(2).faults(plan).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..3u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into()).unwrap();
        }
        // The 4th attempt trips the crash point.
        assert_eq!(
            a.send(1, 0, TrafficClass::Data, vec![3].into()),
            Err(SendError::SelfCrashed { src: 0 })
        );
        // Peers can no longer reach the crashed process either.
        assert_eq!(
            b.send(0, 0, TrafficClass::Data, vec![7].into()),
            Err(SendError::PeerCrashed { dst: 0 })
        );
        let faults = a.metrics().faults();
        assert_eq!(faults.crashes, 1);
        assert_eq!(faults.crash_rejects, 2);
        // The three pre-crash messages were delivered.
        for i in 0..3u8 {
            assert_eq!(b.recv_blocking().unwrap().payload[0], i);
        }
    }

    #[test]
    fn controller_crash_and_revive() {
        let mut eps = Fabric::builder(2).build();
        let ctl = eps[1].fault_controller();
        let mut a = eps.swap_remove(0);
        ctl.crash(1);
        assert_eq!(
            a.send(1, 0, TrafficClass::Data, vec![1].into()),
            Err(SendError::PeerCrashed { dst: 1 })
        );
        ctl.revive(1);
        a.send(1, 0, TrafficClass::Data, vec![2].into()).unwrap();
        assert_eq!(ctl.crashes(), 1, "revive does not erase the count");
    }

    #[test]
    fn control_bypasses_latency_and_probabilistic_faults() {
        let plan = FaultPlan::seeded(13)
            .drop_probability(0.9)
            .duplicate_probability(0.9);
        let model = LatencyModel::lossy(
            Duration::from_millis(50),
            0.0,
            Duration::from_millis(50),
            3,
        );
        let mut eps = Fabric::builder(2).faults(plan).latency(model).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for _ in 0..20 {
            a.send_control(1, 7, vec![1, 2, 3, 4].into()).unwrap();
        }
        // All 20 deliver immediately despite 90% drop/dup and 50ms latency.
        for _ in 0..20 {
            let env = b.try_recv().expect("control message delayed or lost");
            assert_eq!(env.class, TrafficClass::Control);
            assert_eq!(env.channel, 7);
        }
        let faults = a.metrics().faults();
        assert_eq!(faults.dropped, 0);
        assert_eq!(faults.duplicated, 0);
        assert_eq!(a.metrics().link_counters(0, 1).control.messages, 20);
        assert_eq!(a.metrics().link_counters(0, 1).data.messages, 0);
    }

    #[test]
    fn control_does_not_perturb_data_fault_determinism() {
        // The same seeded drop sequence must hit the same data sends
        // whether or not heartbeats are interleaved.
        let outcome = |heartbeats: bool| -> Vec<bool> {
            let plan = FaultPlan::seeded(21).drop_probability(0.5).crash(0, 40);
            let mut eps = Fabric::builder(2).faults(plan).build();
            let mut a = eps.swap_remove(0);
            (0..48u8)
                .map(|i| {
                    if heartbeats {
                        let _ = a.send_control(1, 7, vec![0].into());
                    }
                    a.send(1, 0, TrafficClass::Data, vec![i].into()).is_ok()
                })
                .collect()
        };
        assert_eq!(outcome(false), outcome(true));
    }

    #[test]
    fn control_respects_crash_and_partition_state() {
        let mut eps = Fabric::builder(2).build();
        let ctl = eps[0].fault_controller();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();

        ctl.sever(0, 1);
        assert_eq!(
            a.send_control(1, 7, vec![0].into()),
            Err(SendError::Partitioned { src: 0, dst: 1 })
        );
        ctl.heal(0, 1);
        a.send_control(1, 7, vec![0].into()).unwrap();

        ctl.crash(1);
        assert_eq!(
            a.send_control(1, 7, vec![0].into()),
            Err(SendError::PeerCrashed { dst: 1 })
        );
        ctl.crash(0);
        assert_eq!(
            a.send_control(1, 7, vec![0].into()),
            Err(SendError::SelfCrashed { src: 0 })
        );
        ctl.revive(0);
        ctl.revive(1);
        // Exactly the two successful heartbeats arrived.
        assert!(b.try_recv().is_some());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn control_inside_scheduled_partition_window_is_rejected() {
        // Window covers link attempts 0..5; no data has flowed, so the
        // link sits at attempt 0 and control sends must be rejected —
        // this is how a partition is *detectable before any data moves*.
        let plan = FaultPlan::seeded(1).partition(0, 1, 0, 5);
        let mut eps = Fabric::builder(2).faults(plan).build();
        let mut a = eps.swap_remove(0);
        for _ in 0..3 {
            assert_eq!(
                a.send_control(1, 7, vec![0].into()),
                Err(SendError::Partitioned { src: 0, dst: 1 })
            );
        }
        // Control attempts never consume window positions: data still
        // sees the full 5-attempt window.
        let mut outcomes = Vec::new();
        for i in 0..6u8 {
            outcomes.push(a.send(1, 0, TrafficClass::Data, vec![i].into()).is_ok());
        }
        assert_eq!(outcomes, vec![false, false, false, false, false, true]);
    }

    #[test]
    fn control_is_not_suppressed_ahead_of_delayed_data() {
        // A heartbeat racing past delayed data must not make the data
        // message look like a stale duplicate.
        let model = LatencyModel::constant(Duration::from_millis(20));
        let mut eps = Fabric::builder(2).latency(model).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, TrafficClass::Data, vec![42].into()).unwrap();
        a.send_control(1, 7, vec![0].into()).unwrap();
        // Heartbeat arrives first (latency-exempt).
        let first = b.recv_blocking().unwrap();
        assert_eq!(first.class, TrafficClass::Control);
        // The delayed data message must still be delivered.
        let second = b.recv_blocking().unwrap();
        assert_eq!(second.class, TrafficClass::Data);
        assert_eq!(second.payload[0], 42);
    }

    #[test]
    fn shared_clock_is_fabric_wide() {
        let eps = Fabric::builder(2).build();
        assert!(Arc::ptr_eq(eps[0].clock(), eps[1].clock()));
        let t0 = eps[0].clock().now_ns();
        let t1 = eps[1].clock().now_ns();
        assert!(t1 >= t0);
    }

    #[test]
    fn faults_preserve_fifo_under_latency() {
        let plan = FaultPlan::seeded(23)
            .drop_probability(0.2)
            .duplicate_probability(0.2);
        let model = LatencyModel::lossy(
            Duration::from_micros(100),
            0.3,
            Duration::from_millis(1),
            9,
        );
        let mut eps = Fabric::builder(2).faults(plan).latency(model).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut sent = Vec::new();
        for i in 0..120u8 {
            if a.send(1, 0, TrafficClass::Data, vec![i].into()).is_ok() {
                sent.push(i);
            }
        }
        for &i in &sent {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i, "FIFO violated under faults + latency");
        }
        assert!(b.try_recv().is_none());
    }
}
