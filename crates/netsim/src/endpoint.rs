//! Endpoints and the fabric builder.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::latency::LatencySampler;
use crate::metrics::{FabricMetrics, TrafficClass};
use crate::LatencyModel;

/// A message in flight between two endpoints.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Index of the sending endpoint.
    pub src: usize,
    /// Application-chosen channel tag, used by the runtime to route the
    /// payload to the right dataflow connector or to the progress protocol.
    pub channel: u32,
    /// Accounting class.
    pub class: TrafficClass,
    /// Serialized payload. `Bytes` makes broadcast fan-out cheap: the same
    /// buffer is reference-counted across all destinations.
    pub payload: Bytes,
}

struct Timed {
    deliver_at: Option<Instant>,
    envelope: Envelope,
}

/// Error returned by [`Endpoint::recv_blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Every peer endpoint has been dropped and no messages remain.
    Disconnected,
    /// The deadline elapsed before a message became deliverable.
    Timeout,
}

/// The entry point for building a fabric.
///
/// `Fabric` itself is a namespace; [`FabricBuilder::build`] hands out the
/// per-process [`Endpoint`]s, which is all the runtime needs.
#[derive(Debug)]
pub struct Fabric;

impl Fabric {
    /// Starts building a fabric with `processes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is zero.
    pub fn builder(processes: usize) -> FabricBuilder {
        assert!(processes > 0, "a fabric needs at least one endpoint");
        FabricBuilder {
            processes,
            latency: None,
        }
    }
}

/// Configures and constructs a fabric.
#[derive(Debug)]
pub struct FabricBuilder {
    processes: usize,
    latency: Option<LatencyModel>,
}

impl FabricBuilder {
    /// Injects a delivery-latency model on every link (loopback included:
    /// in Naiad even local progress updates traverse the broadcast path).
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Builds the fabric, returning one endpoint per process, in index
    /// order. Endpoints are `Send`, so each can move to its process thread.
    pub fn build(self) -> Vec<Endpoint> {
        let n = self.processes;
        let metrics = Arc::new(FabricMetrics::new(n));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded::<Timed>();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(index, receiver)| {
                let samplers = self.latency.as_ref().map(|model| {
                    (0..n)
                        .map(|dst| {
                            let salt = (index as u64) << 32 | dst as u64;
                            LatencySampler::new(model.clone(), salt)
                        })
                        .collect::<Vec<_>>()
                });
                Endpoint {
                    sender: NetSender {
                        index,
                        senders: senders.clone(),
                        metrics: metrics.clone(),
                        samplers,
                        last_delivery: vec![None; n],
                    },
                    receiver: NetReceiver {
                        receiver,
                        pending: BinaryHeap::new(),
                        next_seq: 0,
                    },
                }
            })
            .collect()
    }
}

/// One process's attachment to the fabric.
///
/// Sending is addressed by endpoint index; receiving merges all incoming
/// links. Per-link FIFO order is guaranteed even under latency injection,
/// matching TCP's in-order delivery — the property the progress protocol
/// of §3.3 depends on.
///
/// An endpoint can be [`split`](Endpoint::split) into a [`NetSender`] and a
/// [`NetReceiver`] so a process's workers can share the send half (behind a
/// lock) while a dedicated router thread owns the receive half.
pub struct Endpoint {
    sender: NetSender,
    receiver: NetReceiver,
}

/// The sending half of an [`Endpoint`].
pub struct NetSender {
    index: usize,
    senders: Vec<Sender<Timed>>,
    metrics: Arc<FabricMetrics>,
    samplers: Option<Vec<LatencySampler>>,
    /// Last scheduled delivery instant per destination, used to keep each
    /// link FIFO under randomized delays.
    last_delivery: Vec<Option<Instant>>,
}

/// The receiving half of an [`Endpoint`].
pub struct NetReceiver {
    receiver: Receiver<Timed>,
    pending: BinaryHeap<Reverse<PendingEntry>>,
    next_seq: u64,
}

struct PendingEntry {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for PendingEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for PendingEntry {}
impl PartialOrd for PendingEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl NetSender {
    /// This endpoint's index in the fabric.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The number of endpoints in the fabric.
    pub fn peers(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic meters.
    pub fn metrics(&self) -> &Arc<FabricMetrics> {
        &self.metrics
    }

    /// Sends `payload` to endpoint `dst` on `channel`.
    ///
    /// Sends to dropped endpoints are silently discarded (the peer can no
    /// longer observe anything), but are still metered — the bytes were
    /// "put on the wire".
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: usize, channel: u32, class: TrafficClass, payload: Bytes) {
        assert!(dst < self.senders.len(), "destination {dst} out of range");
        self.metrics
            .link(self.index, dst)
            .record(class, payload.len());
        let deliver_at = self.schedule(dst, payload.len());
        let timed = Timed {
            deliver_at,
            envelope: Envelope {
                src: self.index,
                channel,
                class,
                payload,
            },
        };
        let _ = self.senders[dst].send(timed);
    }

    /// Sends the same payload to every endpoint (including this one), the
    /// primitive used by progress-update broadcasts.
    pub fn broadcast(&mut self, channel: u32, class: TrafficClass, payload: Bytes) {
        for dst in 0..self.senders.len() {
            self.send(dst, channel, class, payload.clone());
        }
    }

    fn schedule(&mut self, dst: usize, payload_len: usize) -> Option<Instant> {
        let samplers = self.samplers.as_mut()?;
        let (delay, occupancy) = samplers[dst].sample(payload_len);
        let mut at = Instant::now() + delay;
        if let Some(prev) = self.last_delivery[dst] {
            // FIFO per link: never deliver before an earlier message, and
            // queue behind its link occupancy.
            at = at.max(prev);
        }
        // The message itself occupies the link for `occupancy`.
        at += occupancy;
        self.last_delivery[dst] = Some(at);
        Some(at)
    }
}

impl NetReceiver {
    fn absorb(&mut self, timed: Timed) -> Option<Envelope> {
        match timed.deliver_at {
            None => Some(timed.envelope),
            Some(deliver_at) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending.push(Reverse(PendingEntry {
                    deliver_at,
                    seq,
                    envelope: timed.envelope,
                }));
                None
            }
        }
    }

    fn pop_ready(&mut self, now: Instant) -> Option<Envelope> {
        if let Some(Reverse(head)) = self.pending.peek() {
            if head.deliver_at <= now {
                return self.pending.pop().map(|Reverse(e)| e.envelope);
            }
        }
        None
    }

    /// Returns the next deliverable message, if any, without blocking.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        // Drain the channel into the delay heap first so ready messages are
        // considered in delivery-time order.
        while let Ok(timed) = self.receiver.try_recv() {
            if let Some(env) = self.absorb(timed) {
                return Some(env);
            }
        }
        self.pop_ready(Instant::now())
    }

    /// Blocks until a message is deliverable, all peers disconnect, or
    /// `timeout` (if given) elapses.
    pub fn recv_deadline(&mut self, timeout: Option<Duration>) -> Result<Envelope, RecvError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(env) = self.try_recv() {
                return Ok(env);
            }
            let now = Instant::now();
            // Wake at the earliest of: next delayed delivery, caller deadline,
            // or a coarse tick to re-check for disconnection.
            let mut wait = Duration::from_millis(50);
            if let Some(Reverse(head)) = self.pending.peek() {
                wait = wait.min(head.deliver_at.saturating_duration_since(now));
            }
            if let Some(deadline) = deadline {
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                wait = wait.min(deadline - now);
            }
            match self.receiver.recv_timeout(wait) {
                Ok(timed) => {
                    if let Some(env) = self.absorb(timed) {
                        return Ok(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Channel closed: only delayed messages can remain.
                    if self.pending.is_empty() {
                        return Err(RecvError::Disconnected);
                    }
                }
            }
        }
    }

    /// Blocks until a message is deliverable or all peers disconnect.
    pub fn recv_blocking(&mut self) -> Result<Envelope, RecvError> {
        self.recv_deadline(None)
    }
}

impl Endpoint {
    /// Splits the endpoint into its send and receive halves.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (self.sender, self.receiver)
    }

    /// This endpoint's index in the fabric.
    pub fn index(&self) -> usize {
        self.sender.index()
    }

    /// The number of endpoints in the fabric.
    pub fn peers(&self) -> usize {
        self.sender.peers()
    }

    /// Shared traffic meters.
    pub fn metrics(&self) -> &Arc<FabricMetrics> {
        self.sender.metrics()
    }

    /// Sends `payload` to endpoint `dst` on `channel`; see [`NetSender::send`].
    pub fn send(&mut self, dst: usize, channel: u32, class: TrafficClass, payload: Bytes) {
        self.sender.send(dst, channel, class, payload);
    }

    /// Broadcasts to every endpoint; see [`NetSender::broadcast`].
    pub fn broadcast(&mut self, channel: u32, class: TrafficClass, payload: Bytes) {
        self.sender.broadcast(channel, class, payload);
    }

    /// Returns the next deliverable message, if any, without blocking.
    pub fn try_recv(&mut self) -> Option<Envelope> {
        self.receiver.try_recv()
    }

    /// Blocks until a message is deliverable; see [`NetReceiver::recv_deadline`].
    pub fn recv_deadline(&mut self, timeout: Option<Duration>) -> Result<Envelope, RecvError> {
        self.receiver.recv_deadline(timeout)
    }

    /// Blocks until a message is deliverable or all peers disconnect.
    pub fn recv_blocking(&mut self) -> Result<Envelope, RecvError> {
        self.receiver.recv_blocking()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_fifo_order_per_link() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into());
        }
        for i in 0..100u8 {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn loopback_works() {
        let mut eps = Fabric::builder(1).build();
        let mut a = eps.pop().unwrap();
        a.send(0, 3, TrafficClass::Progress, vec![9].into());
        let env = a.try_recv().unwrap();
        assert_eq!((env.src, env.channel), (0, 3));
    }

    #[test]
    fn broadcast_reaches_everyone_and_meters_each_link() {
        let mut eps = Fabric::builder(3).build();
        let payload = Bytes::from_static(&[1, 2, 3, 4]);
        eps[0].broadcast(1, TrafficClass::Progress, payload);
        let metrics = eps[0].metrics().clone();
        for ep in eps.iter_mut() {
            let env = ep.recv_blocking().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.payload.len(), 4);
        }
        assert_eq!(metrics.total(TrafficClass::Progress, true).bytes, 12);
        // Loopback excluded: 2 links × 4 bytes.
        assert_eq!(metrics.network_bytes(TrafficClass::Progress), 8);
    }

    #[test]
    fn latency_delays_delivery_but_preserves_link_fifo() {
        let model =
            LatencyModel::lossy(Duration::from_millis(1), 0.5, Duration::from_millis(3), 11);
        let mut eps = Fabric::builder(2).latency(model).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let start = Instant::now();
        for i in 0..50u8 {
            a.send(1, 0, TrafficClass::Data, vec![i].into());
        }
        // Nothing should be deliverable immediately.
        assert!(b.try_recv().is_none());
        for i in 0..50u8 {
            let env = b.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i, "FIFO violated under latency");
        }
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn recv_reports_disconnect_after_draining() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, TrafficClass::Data, vec![1].into());
        drop(a);
        drop(eps);
        assert!(b.recv_blocking().is_ok());
        // `b` still holds a sender to itself, so use a deadline to observe
        // quiescence rather than a hang.
        assert!(matches!(
            b.recv_deadline(Some(Duration::from_millis(10))),
            Err(RecvError::Timeout)
        ));
    }

    #[test]
    fn cross_thread_exchange() {
        let mut eps = Fabric::builder(2).build();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..1000u32 {
                a.send(1, 0, TrafficClass::Data, i.to_le_bytes().to_vec().into());
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            let env = b.recv_blocking().unwrap();
            sum += u64::from(u32::from_le_bytes(env.payload[..].try_into().unwrap()));
        }
        handle.join().unwrap();
        assert_eq!(sum, (0..1000u64).sum::<u64>());
    }
}

#[cfg(test)]
mod split_tests {
    use super::*;

    #[test]
    fn split_halves_cooperate_across_threads() {
        let mut eps = Fabric::builder(2).build();
        let (_b_tx, mut b_rx) = eps.pop().unwrap().split();
        let (mut a_tx, _a_rx) = eps.pop().unwrap().split();
        let handle = std::thread::spawn(move || {
            for i in 0..10u8 {
                a_tx.send(1, 0, TrafficClass::Data, vec![i].into());
            }
            a_tx
        });
        for i in 0..10u8 {
            let env = b_rx.recv_blocking().unwrap();
            assert_eq!(env.payload[0], i);
        }
        let a_tx = handle.join().unwrap();
        assert_eq!(a_tx.metrics().link_counters(0, 1).data.messages, 10);
    }
}
