//! Traffic meters.
//!
//! The evaluation distinguishes application data from progress-protocol
//! traffic: Figure 6a reports aggregate data throughput, Figure 6c reports
//! progress traffic in MB under four accumulation policies. Counters are
//! plain atomics so metering adds no locking to the send path.

use std::sync::atomic::{AtomicU64, Ordering};

/// The accounting class of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Application records flowing along dataflow connectors.
    Data,
    /// Progress-protocol updates (§3.3).
    Progress,
    /// Liveness control traffic: heartbeats and failure-detection pings
    /// (§3.4/§3.5). Cheap, latency-exempt, and metered separately so the
    /// paper's data/progress byte figures stay unperturbed.
    Control,
}

impl TrafficClass {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Progress => 1,
            TrafficClass::Control => 2,
        }
    }
}

/// Bytes and message counts for one traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounters {
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Total messages sent.
    pub messages: u64,
}

/// Counters for a single directed link.
#[derive(Debug, Default)]
pub(crate) struct LinkMeter {
    bytes: [AtomicU64; TrafficClass::COUNT],
    messages: [AtomicU64; TrafficClass::COUNT],
}

impl LinkMeter {
    pub(crate) fn record(&self, class: TrafficClass, bytes: usize) {
        let i = class.index();
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages[i].fetch_add(1, Ordering::Relaxed);
    }

    fn read(&self, class: TrafficClass) -> ClassCounters {
        let i = class.index();
        ClassCounters {
            bytes: self.bytes[i].load(Ordering::Relaxed),
            messages: self.messages[i].load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one directed link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkCounters {
    /// Application data counters.
    pub data: ClassCounters,
    /// Progress-protocol counters.
    pub progress: ClassCounters,
    /// Liveness control-channel counters.
    pub control: ClassCounters,
}

/// A snapshot of the fabric's fault-injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Messages dropped in flight (sender observed `SendError::Dropped`).
    pub dropped: u64,
    /// Messages delivered twice by the fabric.
    pub duplicated: u64,
    /// Duplicate copies suppressed at a receiver.
    pub duplicates_suppressed: u64,
    /// Sends rejected because the link was partitioned.
    pub partition_rejects: u64,
    /// Sends rejected because an involved process had crashed.
    pub crash_rejects: u64,
    /// Processes ever marked crashed.
    pub crashes: u64,
}

/// Internal atomics behind [`FaultCounters`].
#[derive(Debug, Default)]
struct FaultMeter {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    duplicates_suppressed: AtomicU64,
    partition_rejects: AtomicU64,
    crash_rejects: AtomicU64,
    crashes: AtomicU64,
}

/// Per-class traffic totals summed over every directed link — the
/// aggregation the telemetry registry reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficTotals {
    /// Application-data totals.
    pub data: ClassCounters,
    /// Progress-protocol totals.
    pub progress: ClassCounters,
    /// Liveness control-channel totals.
    pub control: ClassCounters,
}

/// Fabric-wide traffic meters, shared by all endpoints.
#[derive(Debug)]
pub struct FabricMetrics {
    processes: usize,
    // Row-major `processes × processes` matrix of directed links.
    links: Vec<LinkMeter>,
    faults: FaultMeter,
}

impl FabricMetrics {
    pub(crate) fn new(processes: usize) -> Self {
        let mut links = Vec::with_capacity(processes * processes);
        links.resize_with(processes * processes, LinkMeter::default);
        FabricMetrics {
            processes,
            links,
            faults: FaultMeter::default(),
        }
    }

    pub(crate) fn record_dropped(&self) {
        self.faults.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_duplicated(&self) {
        self.faults.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_duplicate_suppressed(&self) {
        self.faults
            .duplicates_suppressed
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_partition_reject(&self) {
        self.faults.partition_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_crash_reject(&self) {
        self.faults.crash_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_crash(&self) {
        self.faults.crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the fault-injection counters.
    pub fn faults(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.faults.dropped.load(Ordering::Relaxed),
            duplicated: self.faults.duplicated.load(Ordering::Relaxed),
            duplicates_suppressed: self.faults.duplicates_suppressed.load(Ordering::Relaxed),
            partition_rejects: self.faults.partition_rejects.load(Ordering::Relaxed),
            crash_rejects: self.faults.crash_rejects.load(Ordering::Relaxed),
            crashes: self.faults.crashes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn link(&self, src: usize, dst: usize) -> &LinkMeter {
        &self.links[src * self.processes + dst]
    }

    /// The number of endpoints in the fabric.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Snapshot of the `src → dst` link.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn link_counters(&self, src: usize, dst: usize) -> LinkCounters {
        assert!(src < self.processes && dst < self.processes);
        let meter = self.link(src, dst);
        LinkCounters {
            data: meter.read(TrafficClass::Data),
            progress: meter.read(TrafficClass::Progress),
            control: meter.read(TrafficClass::Control),
        }
    }

    /// Sum over all directed links, optionally excluding loopback
    /// (`src == dst`) traffic, which never crosses a physical network.
    pub fn total(&self, class: TrafficClass, include_loopback: bool) -> ClassCounters {
        let mut out = ClassCounters::default();
        for src in 0..self.processes {
            for dst in 0..self.processes {
                if !include_loopback && src == dst {
                    continue;
                }
                let c = self.link(src, dst).read(class);
                out.bytes += c.bytes;
                out.messages += c.messages;
            }
        }
        out
    }

    /// Total cross-process (non-loopback) bytes for a class: the quantity
    /// the paper's byte-denominated figures report.
    pub fn network_bytes(&self, class: TrafficClass) -> u64 {
        self.total(class, false).bytes
    }

    /// Sum over all links for **every** traffic class at once, optionally
    /// excluding loopback — one call instead of one per class.
    pub fn totals(&self, include_loopback: bool) -> TrafficTotals {
        TrafficTotals {
            data: self.total(TrafficClass::Data, include_loopback),
            progress: self.total(TrafficClass::Progress, include_loopback),
            control: self.total(TrafficClass::Control, include_loopback),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_link_and_class() {
        let m = FabricMetrics::new(3);
        m.link(0, 1).record(TrafficClass::Data, 100);
        m.link(0, 1).record(TrafficClass::Data, 50);
        m.link(0, 1).record(TrafficClass::Progress, 8);
        m.link(2, 2).record(TrafficClass::Data, 7);

        let c = m.link_counters(0, 1);
        assert_eq!(
            c.data,
            ClassCounters {
                bytes: 150,
                messages: 2
            }
        );
        assert_eq!(
            c.progress,
            ClassCounters {
                bytes: 8,
                messages: 1
            }
        );
        assert_eq!(m.link_counters(1, 0), LinkCounters::default());
    }

    #[test]
    fn fault_counters_start_zero_and_accumulate() {
        let m = FabricMetrics::new(2);
        assert_eq!(m.faults(), FaultCounters::default());
        m.record_dropped();
        m.record_dropped();
        m.record_duplicated();
        m.record_duplicate_suppressed();
        m.record_partition_reject();
        m.record_crash_reject();
        m.record_crash();
        assert_eq!(
            m.faults(),
            FaultCounters {
                dropped: 2,
                duplicated: 1,
                duplicates_suppressed: 1,
                partition_rejects: 1,
                crash_rejects: 1,
                crashes: 1,
            }
        );
    }

    #[test]
    fn totals_sums_every_class_at_once() {
        let m = FabricMetrics::new(2);
        m.link(0, 0).record(TrafficClass::Data, 10);
        m.link(0, 1).record(TrafficClass::Data, 20);
        m.link(1, 0).record(TrafficClass::Progress, 5);
        m.link(1, 1).record(TrafficClass::Progress, 3);

        for include_loopback in [true, false] {
            let t = m.totals(include_loopback);
            assert_eq!(t.data, m.total(TrafficClass::Data, include_loopback));
            assert_eq!(
                t.progress,
                m.total(TrafficClass::Progress, include_loopback)
            );
        }
        assert_eq!(
            m.totals(true),
            TrafficTotals {
                data: ClassCounters {
                    bytes: 30,
                    messages: 2
                },
                progress: ClassCounters {
                    bytes: 8,
                    messages: 2
                },
                control: ClassCounters::default(),
            }
        );
        assert_eq!(m.totals(false).data.bytes, 20);
        assert_eq!(m.totals(false).progress.bytes, 5);
    }

    #[test]
    fn control_class_is_metered_separately() {
        let m = FabricMetrics::new(2);
        m.link(0, 1).record(TrafficClass::Control, 16);
        m.link(0, 1).record(TrafficClass::Data, 100);
        let c = m.link_counters(0, 1);
        assert_eq!(
            c.control,
            ClassCounters {
                bytes: 16,
                messages: 1
            }
        );
        assert_eq!(c.data.bytes, 100);
        // Control bytes never leak into the paper's data/progress figures.
        assert_eq!(m.network_bytes(TrafficClass::Data), 100);
        assert_eq!(m.network_bytes(TrafficClass::Progress), 0);
        assert_eq!(m.network_bytes(TrafficClass::Control), 16);
        assert_eq!(m.totals(false).control.messages, 1);
    }

    #[test]
    fn duplicate_suppression_accounting_balances() {
        let m = FabricMetrics::new(2);
        // The fabric delivered three duplicate copies; receivers suppressed
        // two of them (one slipped through before dedup state existed).
        m.record_duplicated();
        m.record_duplicated();
        m.record_duplicated();
        m.record_duplicate_suppressed();
        m.record_duplicate_suppressed();

        let f = m.faults();
        assert_eq!(f.duplicated, 3);
        assert_eq!(f.duplicates_suppressed, 2);
        // Suppression can never exceed the duplicates actually injected.
        assert!(f.duplicates_suppressed <= f.duplicated);
        // No unrelated counters moved.
        assert_eq!(f.dropped, 0);
        assert_eq!(f.partition_rejects, 0);
        assert_eq!(f.crash_rejects, 0);
        assert_eq!(f.crashes, 0);
    }

    #[test]
    fn totals_respect_loopback_flag() {
        let m = FabricMetrics::new(2);
        m.link(0, 0).record(TrafficClass::Data, 10);
        m.link(0, 1).record(TrafficClass::Data, 20);
        assert_eq!(m.total(TrafficClass::Data, true).bytes, 30);
        assert_eq!(m.total(TrafficClass::Data, false).bytes, 20);
        assert_eq!(m.network_bytes(TrafficClass::Data), 20);
        assert_eq!(m.network_bytes(TrafficClass::Progress), 0);
    }
}
