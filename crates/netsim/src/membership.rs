//! Control-plane cluster-membership messages for elastic rescaling.
//!
//! When the rescale coordinator changes the worker set, each phase's
//! routers announce the membership they were brought up with — process
//! index, process count, and a monotonically increasing *generation* —
//! on the latency-exempt control channel. Receivers fold announcements
//! into a [`MembershipTable`], which classifies each one:
//!
//! * **admitted** — first announcement from that process for the current
//!   generation;
//! * **duplicate** — the same announcement again (the chaos plane may
//!   duplicate messages; the control protocol must be idempotent);
//! * **stale** — an announcement from an *older* generation, i.e. a
//!   straggler from a pre-rescale membership that must not resurrect a
//!   removed peer in the failure detector;
//! * **future** — a *newer* generation than ours, meaning this endpoint
//!   itself is the straggler (possible only across a coordinator bug,
//!   hence surfaced loudly).
//!
//! Messages use a fixed little-endian layout and decode with typed
//! [`MembershipError`]s — a truncated or oversized announcement is
//! rejected, never mis-parsed.

/// Fixed encoded size of a [`MembershipMsg`] in bytes.
pub const MEMBERSHIP_MSG_LEN: usize = 24;

/// One membership announcement: "process `process` of `processes` is up
/// under generation `generation`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipMsg {
    /// Membership generation, bumped on every rescale.
    pub generation: u64,
    /// The announcing process.
    pub process: usize,
    /// Total processes in this generation's membership.
    pub processes: usize,
}

/// Typed failures decoding or folding membership announcements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipError {
    /// The payload is not exactly [`MEMBERSHIP_MSG_LEN`] bytes.
    BadLength {
        /// Bytes received.
        found: usize,
    },
    /// The announcing process index is not below the announced process
    /// count.
    ProcessOutOfRange {
        /// The claimed process index.
        process: usize,
        /// The claimed process count.
        processes: usize,
    },
    /// The announced process count disagrees with the table's membership
    /// for the same generation — two clusters claiming one generation.
    SizeConflict {
        /// The table's process count.
        expected: usize,
        /// The announcement's process count.
        found: usize,
    },
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::BadLength { found } => {
                write!(
                    f,
                    "membership message is {found} bytes, expected {MEMBERSHIP_MSG_LEN}"
                )
            }
            MembershipError::ProcessOutOfRange { process, processes } => {
                write!(f, "process {process} out of range for {processes} processes")
            }
            MembershipError::SizeConflict { expected, found } => {
                write!(
                    f,
                    "generation claims {found} processes but the table has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for MembershipError {}

impl MembershipMsg {
    /// Encodes the fixed little-endian layout:
    /// `generation:u64 | process:u64 | processes:u64`.
    pub fn encode(&self) -> [u8; MEMBERSHIP_MSG_LEN] {
        let mut out = [0u8; MEMBERSHIP_MSG_LEN];
        out[0..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..16].copy_from_slice(&(self.process as u64).to_le_bytes());
        out[16..24].copy_from_slice(&(self.processes as u64).to_le_bytes());
        out
    }

    /// Decodes and validates an announcement.
    ///
    /// # Errors
    ///
    /// [`MembershipError::BadLength`] unless the payload is exactly
    /// [`MEMBERSHIP_MSG_LEN`] bytes;
    /// [`MembershipError::ProcessOutOfRange`] if the indices are
    /// inconsistent.
    pub fn decode(payload: &[u8]) -> Result<Self, MembershipError> {
        if payload.len() != MEMBERSHIP_MSG_LEN {
            return Err(MembershipError::BadLength {
                found: payload.len(),
            });
        }
        let word = |at: usize| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&payload[at..at + 8]);
            u64::from_le_bytes(bytes)
        };
        let msg = MembershipMsg {
            generation: word(0),
            process: word(8) as usize,
            processes: word(16) as usize,
        };
        if msg.process >= msg.processes {
            return Err(MembershipError::ProcessOutOfRange {
                process: msg.process,
                processes: msg.processes,
            });
        }
        Ok(msg)
    }
}

/// How a [`MembershipTable`] classified an announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// First announcement from that process for the current generation.
    Admitted,
    /// Already admitted — an idempotent re-delivery (chaos duplicates a
    /// message, or a retried send re-announces).
    Duplicate,
    /// From an older generation: a pre-rescale straggler, discarded.
    Stale {
        /// The straggler's generation.
        generation: u64,
    },
    /// From a newer generation than this table's — the receiver itself
    /// is behind a membership change it has not been told about.
    Future {
        /// The announcement's generation.
        generation: u64,
    },
}

/// Per-endpoint view of the current membership generation, folding
/// announcements idempotently and discarding stragglers.
#[derive(Debug)]
pub struct MembershipTable {
    generation: u64,
    processes: usize,
    admitted: Vec<bool>,
    duplicates: u64,
    stale: u64,
}

impl MembershipTable {
    /// A table for `processes` members under `generation`, with no
    /// announcements admitted yet.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is zero.
    pub fn new(generation: u64, processes: usize) -> Self {
        assert!(processes > 0, "at least one process");
        MembershipTable {
            generation,
            processes,
            admitted: vec![false; processes],
            duplicates: 0,
            stale: 0,
        }
    }

    /// The generation this table tracks.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Folds one announcement.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SizeConflict`] when a current-generation
    /// announcement claims a different cluster size, or
    /// [`MembershipError::ProcessOutOfRange`] when its index does not fit
    /// the table.
    pub fn observe(&mut self, msg: MembershipMsg) -> Result<MembershipEvent, MembershipError> {
        if msg.generation < self.generation {
            self.stale += 1;
            return Ok(MembershipEvent::Stale {
                generation: msg.generation,
            });
        }
        if msg.generation > self.generation {
            return Ok(MembershipEvent::Future {
                generation: msg.generation,
            });
        }
        if msg.processes != self.processes {
            return Err(MembershipError::SizeConflict {
                expected: self.processes,
                found: msg.processes,
            });
        }
        if msg.process >= self.admitted.len() {
            return Err(MembershipError::ProcessOutOfRange {
                process: msg.process,
                processes: self.processes,
            });
        }
        if self.admitted[msg.process] {
            self.duplicates += 1;
            return Ok(MembershipEvent::Duplicate);
        }
        self.admitted[msg.process] = true;
        Ok(MembershipEvent::Admitted)
    }

    /// Whether every member of the current generation has announced.
    pub fn complete(&self) -> bool {
        self.admitted.iter().all(|&a| a)
    }

    /// Processes admitted so far.
    pub fn admitted_count(&self) -> usize {
        self.admitted.iter().filter(|&&a| a).count()
    }

    /// Idempotent re-deliveries absorbed (chaos duplicates tolerated).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Old-generation stragglers discarded.
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip() {
        let msg = MembershipMsg {
            generation: 3,
            process: 1,
            processes: 4,
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), MEMBERSHIP_MSG_LEN);
        assert_eq!(MembershipMsg::decode(&bytes), Ok(msg));
    }

    #[test]
    fn truncated_and_inconsistent_messages_are_typed_errors() {
        assert_eq!(
            MembershipMsg::decode(&[0u8; 7]),
            Err(MembershipError::BadLength { found: 7 })
        );
        let bad = MembershipMsg {
            generation: 0,
            process: 2,
            processes: 2,
        };
        assert_eq!(
            MembershipMsg::decode(&bad.encode()),
            Err(MembershipError::ProcessOutOfRange {
                process: 2,
                processes: 2
            })
        );
    }

    #[test]
    fn table_dedups_duplicates_and_discards_stragglers() {
        let mut table = MembershipTable::new(2, 2);
        let here = MembershipMsg {
            generation: 2,
            process: 0,
            processes: 2,
        };
        assert_eq!(table.observe(here), Ok(MembershipEvent::Admitted));
        // The chaos plane redelivers: idempotent, counted, harmless.
        assert_eq!(table.observe(here), Ok(MembershipEvent::Duplicate));
        assert_eq!(table.duplicates(), 1);
        assert!(!table.complete());
        // A pre-rescale straggler announces the old 3-process world: it
        // must not resurrect a removed peer.
        let straggler = MembershipMsg {
            generation: 1,
            process: 2,
            processes: 3,
        };
        assert_eq!(
            table.observe(straggler),
            Ok(MembershipEvent::Stale { generation: 1 })
        );
        assert_eq!(table.stale(), 1);
        assert_eq!(
            table.observe(MembershipMsg {
                generation: 2,
                process: 1,
                processes: 2,
            }),
            Ok(MembershipEvent::Admitted)
        );
        assert!(table.complete());
        assert_eq!(table.admitted_count(), 2);
    }

    #[test]
    fn conflicting_and_future_generations_surface() {
        let mut table = MembershipTable::new(1, 2);
        assert_eq!(
            table.observe(MembershipMsg {
                generation: 1,
                process: 0,
                processes: 3,
            }),
            Err(MembershipError::SizeConflict {
                expected: 2,
                found: 3
            })
        );
        assert_eq!(
            table.observe(MembershipMsg {
                generation: 5,
                process: 0,
                processes: 8,
            }),
            Ok(MembershipEvent::Future { generation: 5 })
        );
    }
}
