//! An in-process message fabric standing in for Naiad's TCP/Ethernet network.
//!
//! The paper's cluster connects processes with pairwise TCP links (§3).
//! This crate provides the same abstraction inside one OS process so the
//! full distributed runtime — serialization, routing, FIFO progress
//! broadcasts — runs unmodified on a laptop:
//!
//! * every ordered pair of endpoints has a FIFO link,
//! * every payload is a byte buffer (the runtime serializes records with
//!   `naiad-wire` before they reach the fabric),
//! * links meter bytes and message counts separately for data and
//!   progress-protocol traffic (Figures 6a and 6c),
//! * links can inject delivery latency, the hook used to emulate the
//!   micro-stragglers of §3.5,
//! * a deterministic seeded [`FaultPlan`] injects message drops, duplicate
//!   deliveries, link partitions, and process crashes — the machinery
//!   behind the fault-tolerance evaluation of §5 (Figure 7c). Failed
//!   sends surface as typed [`SendError`]s rather than vanishing, and
//!   every injected fault is counted in [`FabricMetrics`],
//! * a latency-exempt **control channel**
//!   ([`send_control`](Endpoint::send_control)) carries heartbeats and
//!   failure-detection pings (§3.4/§3.5) without perturbing data-path
//!   fault schedules, and a fabric-wide [`ClusterClock`] gives every
//!   endpoint the same monotonic time base for suspicion timeouts.
//!
//! # Examples
//!
//! ```
//! use naiad_netsim::{Fabric, TrafficClass};
//!
//! let mut endpoints = Fabric::builder(2).build();
//! let mut b = endpoints.pop().unwrap();
//! let mut a = endpoints.pop().unwrap();
//! a.send(1, 7, TrafficClass::Data, vec![1, 2, 3].into()).unwrap();
//! let env = b.recv_blocking().unwrap();
//! assert_eq!((env.src, env.channel, &env.payload[..]), (0, 7, &[1u8, 2, 3][..]));
//! ```

#![forbid(unsafe_code)]

mod clock;
mod endpoint;
mod fault;
mod latency;
mod membership;
mod metrics;

pub use clock::ClusterClock;
pub use endpoint::{Endpoint, Envelope, Fabric, FabricBuilder, NetReceiver, NetSender, RecvError};
pub use fault::{CrashPoint, FaultController, FaultPlan, LinkPartition, SendError};
pub use latency::LatencyModel;
pub use membership::{
    MembershipError, MembershipEvent, MembershipMsg, MembershipTable, MEMBERSHIP_MSG_LEN,
};
pub use metrics::{
    ClassCounters, FabricMetrics, FaultCounters, LinkCounters, TrafficClass, TrafficTotals,
};
