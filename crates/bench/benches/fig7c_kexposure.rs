//! Figure 7c: k-exposure streaming with three fault-tolerance policies —
//! response-time distribution and throughput, measured on the real
//! runtime.
//!
//! Policies per the paper (§6.3): no fault tolerance; full checkpoints
//! every 100 epochs; continual logging of every input batch. Checkpoints
//! snapshot the accumulated graph/events state; logging persists each
//! epoch's tweets before they enter the dataflow.

use naiad::runtime::durability::{DurabilitySink, FileSink};
use naiad::{execute, Config};
use naiad_algorithms::datasets::{tweet_stream, Tweet};
use naiad_algorithms::kexposure::k_exposure;
use naiad_bench::{header, percentile, scaled};
use naiad_operators::prelude::*;
use naiad_wire::encode_to_vec;
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Durability {
    None,
    Checkpoint(u64),
    Logging,
}

fn run(
    mode: Durability,
    tweets: Arc<Vec<Tweet>>,
    epochs: u64,
    per_epoch: usize,
) -> (Vec<f64>, f64) {
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<Tweet>();
            (input, k_exposure(&stream).probe())
        });
        let mut sink = FileSink::temp("kexposure");
        // The checkpoint state mirrors what a stateful vertex would write:
        // the accumulated edges and events (full checkpoint, §3.4).
        let mut ckpt_edges: Vec<(u64, u64)> = Vec::new();
        let mut ckpt_events: Vec<(u64, u64)> = Vec::new();
        let mut latencies = Vec::new();
        let start_all = Instant::now();
        for epoch in 0..epochs {
            let start = Instant::now();
            let lo = (epoch as usize * per_epoch).min(tweets.len());
            let hi = ((epoch as usize + 1) * per_epoch).min(tweets.len());
            let batch = &tweets[lo..hi];
            if mode == Durability::Logging {
                // Continual logging: persist the batch before ingesting.
                let bytes = encode_to_vec(&batch.to_vec());
                sink.persist(&bytes);
            }
            for (i, t) in batch.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(t.clone());
                }
                for &m in &t.mentions {
                    ckpt_edges.push((t.user, m));
                }
                for &h in &t.hashtags {
                    ckpt_events.push((t.user, h));
                }
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if let Durability::Checkpoint(every) = mode {
                if (epoch + 1) % every == 0 {
                    let bytes = encode_to_vec(&(ckpt_edges.clone(), ckpt_events.clone()));
                    sink.persist(&bytes);
                }
            }
            if worker.index() == 0 {
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        input.close();
        worker.step_until_done();
        (latencies, start_all.elapsed().as_secs_f64())
    })
    .unwrap();
    let total = results.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    let mut lat: Vec<f64> = results.into_iter().flat_map(|(l, _)| l).collect();
    lat.sort_by(f64::total_cmp);
    (lat, total)
}

fn main() {
    header(
        "Figure 7c",
        "k-exposure: response times and throughput under fault-tolerance policies",
    );
    let per_epoch = scaled(200);
    let epochs = scaled(150) as u64;
    let tweets = Arc::new(tweet_stream(per_epoch * epochs as usize, 5_000, 200, 13));
    println!(
        "stream: {} tweets, {per_epoch}/epoch, {epochs} epochs (paper: 1,000/epoch/machine on 32 machines)\n",
        tweets.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "policy", "median ms", "p95 ms", "p99 ms", "max ms", "tweets/s"
    );
    for (name, mode) in [
        ("none", Durability::None),
        ("checkpoint each 100", Durability::Checkpoint(100)),
        ("continual logging", Durability::Logging),
    ] {
        let (lat, total) = run(mode, tweets.clone(), epochs, per_epoch);
        let throughput = tweets.len() as f64 / total;
        println!(
            "{name:<22} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>14.0}",
            percentile(&lat, 50.0) * 1e3,
            percentile(&lat, 95.0) * 1e3,
            percentile(&lat, 99.0) * 1e3,
            lat.last().copied().unwrap_or(0.0) * 1e3,
            throughput
        );
    }
    println!(
        "\nShape check (paper: 482,988 / 322,439 / 273,741 t/s; medians\n\
         40/40/85 ms): logging taxes every epoch; checkpoints cost nothing\n\
         except periodic tail spikes; 'none' is fastest."
    );
}
