//! Figure 7c: k-exposure streaming with three fault-tolerance policies —
//! response-time distribution and throughput, measured on the real
//! runtime.
//!
//! Policies per the paper (§6.3): no fault tolerance; full checkpoints
//! every 100 epochs; continual logging of every input batch. Checkpoints
//! snapshot the accumulated graph/events state; logging persists each
//! epoch's tweets before they enter the dataflow.

use naiad::runtime::durability::{DurabilitySink, FileSink};
use naiad::{execute, execute_resilient, Config, RecoveryOptions};
use naiad_algorithms::datasets::{tweet_stream, Tweet};
use naiad_algorithms::kexposure::k_exposure;
use naiad_bench::{header, percentile, scaled};
use naiad_clustersim::{ClusterSim, ClusterSpec, FailureModel};
use naiad_wire::encode_to_vec;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Durability {
    None,
    Checkpoint(u64),
    Logging,
}

fn run(
    mode: Durability,
    tweets: Arc<Vec<Tweet>>,
    epochs: u64,
    per_epoch: usize,
) -> (Vec<f64>, f64) {
    let results = execute(Config::single_process(2), move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<Tweet>();
            (input, k_exposure(&stream).probe())
        });
        let mut sink = FileSink::temp("kexposure");
        // The checkpoint state mirrors what a stateful vertex would write:
        // the accumulated edges and events (full checkpoint, §3.4).
        let mut ckpt_edges: Vec<(u64, u64)> = Vec::new();
        let mut ckpt_events: Vec<(u64, u64)> = Vec::new();
        let mut latencies = Vec::new();
        let start_all = Instant::now();
        for epoch in 0..epochs {
            let start = Instant::now();
            let lo = (epoch as usize * per_epoch).min(tweets.len());
            let hi = ((epoch as usize + 1) * per_epoch).min(tweets.len());
            let batch = &tweets[lo..hi];
            if mode == Durability::Logging {
                // Continual logging: persist the batch before ingesting.
                let bytes = encode_to_vec(&batch.to_vec());
                sink.persist(&bytes);
            }
            for (i, t) in batch.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(t.clone());
                }
                for &m in &t.mentions {
                    ckpt_edges.push((t.user, m));
                }
                for &h in &t.hashtags {
                    ckpt_events.push((t.user, h));
                }
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
            if let Durability::Checkpoint(every) = mode {
                if (epoch + 1) % every == 0 {
                    let bytes = encode_to_vec(&(ckpt_edges.clone(), ckpt_events.clone()));
                    sink.persist(&bytes);
                }
            }
            if worker.index() == 0 {
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        input.close();
        worker.step_until_done();
        (latencies, start_all.elapsed().as_secs_f64())
    })
    .unwrap();
    let total = results.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    let mut lat: Vec<f64> = results.into_iter().flat_map(|(l, _)| l).collect();
    lat.sort_by(f64::total_cmp);
    (lat, total)
}

type Exposures = Vec<(u64, Vec<((u64, u64), u64)>)>;
type EpochRows = HashMap<u64, Vec<((u64, u64), u64)>>;

/// Merges per-worker captures into sorted per-epoch rows, shifting local
/// epoch numbers by `offset` (resumed runs re-number epochs from zero).
fn by_epoch(caps: Vec<Exposures>, offset: u64) -> EpochRows {
    let mut map: EpochRows = HashMap::new();
    for (epoch, data) in caps.into_iter().flatten() {
        map.entry(epoch + offset).or_default().extend(data);
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

/// What the checkpoints buy (§3.4): crash a worker mid-stream, let
/// `execute_resilient` roll the cluster back to the last consistent
/// checkpoint and replay logged input, and confirm the recovered stream
/// is output-identical to a fault-free run — then price the recovery.
fn recovery_demo(tweets: Arc<Vec<Tweet>>, epochs: u64, per_epoch: usize) {
    let checkpoint_every = (epochs / 10).max(1);
    let crash_epoch = epochs / 2;

    // Fault-free reference with the same epoch pacing.
    let reference_tweets = tweets.clone();
    let start = Instant::now();
    let reference = execute(Config::single_process(2), move |worker| {
        let (mut input, probe, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<Tweet>();
            let counts = k_exposure(&stream);
            let captured = counts.capture();
            (input, counts.probe(), captured)
        });
        for epoch in 0..epochs {
            let lo = (epoch as usize * per_epoch).min(reference_tweets.len());
            let hi = ((epoch as usize + 1) * per_epoch).min(reference_tweets.len());
            for (i, t) in reference_tweets[lo..hi].iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(t.clone());
                }
            }
            input.advance_to(epoch + 1);
            worker.step_while(|| !probe.done_through(epoch));
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let clean = start.elapsed().as_secs_f64();
    let reference = by_epoch(reference, 0);

    let start = Instant::now();
    let report = execute_resilient(
        Config::single_process(2),
        RecoveryOptions::default()
            .max_attempts(3)
            .checkpoint_every(checkpoint_every),
        move |worker, recovery| {
            let (mut input, probe, captured) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<Tweet>();
                let counts = k_exposure(&stream);
                let captured = counts.capture();
                (input, counts.probe(), captured)
            });
            if let Some(blob) = recovery.snapshot(worker.index()) {
                worker.restore(&blob);
            }
            // The accumulated join state timestamps its entries with
            // absolute epochs, so the resumed run keeps absolute epoch
            // numbers by skipping the input straight to the resume point
            // (rather than re-numbering from zero as epoch-free state
            // would permit).
            let resume = recovery.resume_epoch();
            if resume > 0 {
                input.advance_to(resume);
            }
            for epoch in resume..epochs {
                if recovery.attempt() == 0 && epoch == crash_epoch && worker.index() == 1 {
                    worker.inject_crash();
                }
                let batch = match recovery.logged_input::<Tweet>(epoch, worker.index(), 0) {
                    Some(batch) => batch,
                    None => {
                        let lo = (epoch as usize * per_epoch).min(tweets.len());
                        let hi = ((epoch as usize + 1) * per_epoch).min(tweets.len());
                        let batch: Vec<Tweet> = tweets[lo..hi]
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % worker.peers() == worker.index())
                            .map(|(_, t)| t.clone())
                            .collect();
                        recovery.log_input(epoch, worker.index(), 0, &batch);
                        batch
                    }
                };
                for t in batch {
                    input.send(t);
                }
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
                if recovery.should_checkpoint(epoch) {
                    recovery.deposit_checkpoint(epoch, worker.index(), worker.checkpoint());
                }
            }
            input.close();
            worker.step_until_done();
            let result = (recovery.resume_epoch(), captured.borrow().clone());
            result
        },
    )
    .expect("the injected crash must be absorbed");
    let faulty = start.elapsed().as_secs_f64();

    let resume = report.results[0].0;
    // Epoch numbers are already absolute (see the `advance_to(resume)`
    // above), so no offset is applied.
    let recovered = by_epoch(report.results.into_iter().map(|(_, c)| c).collect(), 0);
    let empty = Vec::new();
    for epoch in resume..epochs {
        assert_eq!(
            recovered.get(&epoch).unwrap_or(&empty),
            reference.get(&epoch).unwrap_or(&empty),
            "recovery diverged at epoch {epoch}"
        );
    }
    println!(
        "\nRecovery demo: crash at epoch {crash_epoch}/{epochs}, checkpoints every \
         {checkpoint_every} epochs\n\
         attempts {}, rolled back to epoch {resume}, replayed {} epochs;\n\
         output identical to fault-free run; wall-clock {:.2}s vs {clean:.2}s clean",
        report.attempts,
        crash_epoch.saturating_sub(resume),
        faulty,
    );

    // Project the checkpoint-frequency trade-off onto the paper's
    // 32-machine cluster: tighter intervals replay less after a crash but
    // pay the checkpoint tax on every interval (the Fig. 7c curves'
    // raison d'être).
    println!(
        "\nSimulated 32-machine long-run projection (200k epochs of 40 ms, 0.4 s checkpoints):"
    );
    println!(
        "{:<24} {:>10} {:>16} {:>14}",
        "checkpoint interval", "crashes", "replayed epochs", "total hours"
    );
    let failures = FailureModel {
        crash_probability_per_epoch: 1.0e-5,
        detection_timeout: 1.0,
        restore_seconds_per_computer: 0.2,
    };
    for every in [1usize, 10, 100, 1000] {
        let mut sim = ClusterSim::new(ClusterSpec::paper_cluster(32), 42);
        let stats = sim.recovery_run(200_000, 0.040, every, 0.4, &failures);
        println!(
            "{:<24} {:>10} {:>16} {:>14.2}",
            format!("every {every}"),
            stats.crashes,
            stats.replayed_epochs,
            stats.duration / 3600.0
        );
    }
}

fn main() {
    header(
        "Figure 7c",
        "k-exposure: response times and throughput under fault-tolerance policies",
    );
    let per_epoch = scaled(200);
    let epochs = scaled(150) as u64;
    let tweets = Arc::new(tweet_stream(per_epoch * epochs as usize, 5_000, 200, 13));
    println!(
        "stream: {} tweets, {per_epoch}/epoch, {epochs} epochs (paper: 1,000/epoch/machine on 32 machines)\n",
        tweets.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "policy", "median ms", "p95 ms", "p99 ms", "max ms", "tweets/s"
    );
    for (name, mode) in [
        ("none", Durability::None),
        ("checkpoint each 100", Durability::Checkpoint(100)),
        ("continual logging", Durability::Logging),
    ] {
        let (lat, total) = run(mode, tweets.clone(), epochs, per_epoch);
        let throughput = tweets.len() as f64 / total;
        println!(
            "{name:<22} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>14.0}",
            percentile(&lat, 50.0) * 1e3,
            percentile(&lat, 95.0) * 1e3,
            percentile(&lat, 99.0) * 1e3,
            lat.last().copied().unwrap_or(0.0) * 1e3,
            throughput
        );
    }
    println!(
        "\nShape check (paper: 482,988 / 322,439 / 273,741 t/s; medians\n\
         40/40/85 ms): logging taxes every epoch; checkpoints cost nothing\n\
         except periodic tail spikes; 'none' is fastest."
    );
    recovery_demo(tweets, epochs, per_epoch);
}
