//! Figure 7b: logistic regression speedup — Naiad's data-parallel
//! AllReduce vs the VW-style tree, measured for real and projected to the
//! paper's cluster.

use naiad::{execute, Config};
use naiad_algorithms::datasets::logreg_data;
use naiad_algorithms::logreg::{gradient, train};
use naiad_baselines::tree::tree_all_reduce_sum;
use naiad_bench::{header, scaled, timed};
use naiad_clustersim::{allreduce_iteration_time, AllReduceKind, ClusterSpec};
use std::sync::Arc;

/// One training iteration with the butterfly/tree AllReduce instead of
/// the data-parallel one.
fn train_tree(config: Config, data: Vec<(Vec<f64>, f64)>, dims: usize, iters: u64) -> f64 {
    let data = Arc::new(data);
    timed(move || {
        execute(config, move |worker| {
            let shard: Vec<(Vec<f64>, f64)> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| i % worker.peers() == worker.index())
                .map(|(_, d)| d.clone())
                .collect();
            let sums = std::rc::Rc::new(std::cell::RefCell::new(Vec::<Vec<f64>>::new()));
            let sink = sums.clone();
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, grads) = scope.new_input::<Vec<f64>>();
                let reduced = tree_all_reduce_sum(&grads);
                reduced.subscribe(move |_e, mut v| {
                    if let Some(x) = v.pop() {
                        sink.borrow_mut().push(x);
                    }
                });
                let probe = grads.probe();
                (input, probe)
            });
            let mut weights = vec![0.0; dims];
            for epoch in 0..iters {
                input.send(gradient(&shard, &weights));
                input.advance_to(epoch + 1);
                worker.step_while(|| !probe.done_through(epoch));
                while sums.borrow().len() <= epoch as usize {
                    worker.step();
                }
                let grad = sums.borrow()[epoch as usize].clone();
                for (w, g) in weights.iter_mut().zip(&grad) {
                    *w -= 0.5 * g / 1000.0;
                }
            }
            input.close();
            worker.step_until_done();
        })
        .unwrap();
    })
    .1
}

fn main() {
    header(
        "Figure 7b",
        "logistic regression: data-parallel vs tree AllReduce",
    );
    let records = scaled(5_000);
    let dims = scaled(200);
    let iters = 5u64;
    let data = logreg_data(records, dims, 31);
    println!("data: {records} records x {dims} dims (paper: 312M records, 268 MB vector)\n");

    println!("-- measured (4 workers, {iters} iterations) --");
    let (_, t_dp) = timed(|| train(Config::single_process(4), data.clone(), dims, iters, 0.5));
    let t_tree = train_tree(Config::single_process(4), data, dims, iters);
    println!("data-parallel AllReduce: {t_dp:.3} s   tree AllReduce: {t_tree:.3} s");

    println!("\n-- simulated paper cluster: speedup vs one computer --");
    println!("{:>10} {:>14} {:>14}", "computers", "Naiad", "VW (tree)");
    let vector = 268.0e6;
    let single_compute = 120.0; // seconds of local training on one machine
    let t1 = allreduce_iteration_time(
        &ClusterSpec::paper_cluster(1),
        AllReduceKind::DataParallel,
        vector,
        single_compute,
        8,
    );
    for computers in [2, 4, 8, 16, 32, 48, 64] {
        let compute = single_compute / computers as f64;
        let dp = allreduce_iteration_time(
            &ClusterSpec::paper_cluster(computers),
            AllReduceKind::DataParallel,
            vector,
            compute,
            8,
        );
        let tree = allreduce_iteration_time(
            &ClusterSpec::paper_cluster(computers),
            AllReduceKind::Tree {
                processes_per_computer: 3,
            },
            vector,
            compute,
            8,
        );
        println!("{computers:>10} {:>13.1}x {:>13.1}x", t1 / dp, t1 / tree);
    }
    println!(
        "\nShape check: both curves flatten once the constant-time reduce\n\
         phases dominate (the paper stops scaling past 32), with the\n\
         data-parallel AllReduce asymptotically ~35% ahead of the tree."
    );
}
