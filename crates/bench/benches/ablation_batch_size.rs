//! Ablation: exchange batch size (§3.5's application-level aggregation).
//!
//! Naiad aggregates records into batches before the exchange; the paper
//! credits this for sustaining throughput despite aggressive TCP timer
//! settings. This ablation varies the batch size on a fixed exchange-heavy
//! workload and reports wall time, network bytes, and data messages: tiny
//! batches pay per-message overheads and per-batch progress updates, while
//! past a point larger batches stop helping.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute_with_metrics, Config};
use naiad_bench::{header, scaled, timed};
use naiad_netsim::TrafficClass;

fn run(batch: usize, records: usize) -> (f64, u64, u64, u64) {
    let config = Config::processes_and_workers(2, 2).batch_size(batch);
    let (times, metrics) = execute_with_metrics(config, move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let probe = stream
                .unary(Pact::exchange(|x: &u64| *x), "Shuffle", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            output.session(time).give_vec(data);
                        });
                    }
                })
                .probe();
            (input, probe)
        });
        let t = timed(|| {
            for i in 0..records as u64 {
                input.send(i * 17 + worker.index() as u64);
            }
            input.close();
            worker.step_until_done();
        })
        .1;
        drop(probe);
        t
    })
    .unwrap();
    let elapsed = times.into_iter().fold(0.0f64, f64::max);
    let data = metrics.total(TrafficClass::Data, false);
    let progress = metrics.network_bytes(TrafficClass::Progress);
    (elapsed, data.bytes, data.messages, progress)
}

fn main() {
    header(
        "Ablation",
        "exchange batch size vs time, bytes, messages, progress traffic",
    );
    let records = scaled(50_000);
    println!("workload: {records} records/worker, 2 processes x 2 workers\n");
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>16}",
        "batch", "seconds", "data bytes", "data msgs", "progress bytes"
    );
    for batch in [1usize, 8, 64, 512, 4096] {
        let (t, bytes, msgs, progress) = run(batch, records);
        println!("{batch:>10} {t:>10.3} {bytes:>14} {msgs:>12} {progress:>16}");
    }
    println!(
        "\nShape check: batches amortize per-message costs and collapse\n\
         per-batch progress updates; returns diminish once batches exceed\n\
         the typical per-step record volume (§3.5)."
    );
}
