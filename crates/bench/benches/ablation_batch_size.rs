//! Ablation: exchange batch size (§3.5's application-level aggregation).
//!
//! Naiad aggregates records into batches before the exchange; the paper
//! credits this for sustaining throughput despite aggressive TCP timer
//! settings. This ablation varies the batch size on a fixed exchange-heavy
//! workload and reports wall time, network bytes, and data messages: tiny
//! batches pay per-message overheads and per-batch progress updates, while
//! past a point larger batches stop helping.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{
    execute_with_introspection, execute_with_metrics, Config, IntrospectOptions, TuningDecision,
};
use naiad_bench::{header, scaled, timed};
use naiad_netsim::TrafficClass;

fn run(batch: usize, records: usize) -> (f64, u64, u64, u64) {
    let config = Config::processes_and_workers(2, 2).batch_size(batch);
    let (times, metrics) = execute_with_metrics(config, move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let probe = stream
                .unary(Pact::exchange(|x: &u64| *x), "Shuffle", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each(|time, data| {
                            output.session(time).give_vec(data);
                        });
                    }
                })
                .probe();
            (input, probe)
        });
        let t = timed(|| {
            for i in 0..records as u64 {
                input.send(i * 17 + worker.index() as u64);
            }
            input.close();
            worker.step_until_done();
        })
        .1;
        drop(probe);
        t
    })
    .unwrap();
    let elapsed = times.into_iter().fold(0.0f64, f64::max);
    let data = metrics.total(TrafficClass::Data, false);
    let progress = metrics.network_bytes(TrafficClass::Progress);
    (elapsed, data.bytes, data.messages, progress)
}

/// The same shuffle, streamed over `epochs` epochs with the self-hosted
/// autotuner closing the loop on the exchange batch size. Returns the
/// wall time, the tuner's moves, and the batch size it settled on.
fn run_autotuned(
    start_batch: usize,
    records: usize,
    epochs: u64,
) -> (f64, Vec<TuningDecision>, u64) {
    let config = Config::processes_and_workers(2, 2)
        .batch_size(start_batch)
        .telemetry_capacity(1 << 21);
    let (times, report) = execute_with_introspection(
        config,
        IntrospectOptions::default().autotune(true).tap_capacity(1 << 21),
        move |worker| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<u64>();
                let probe = stream
                    .unary(Pact::exchange(|x: &u64| *x), "Shuffle", |_info| {
                        |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                            input.for_each(|time, data| {
                                output.session(time).give_vec(data);
                            });
                        }
                    })
                    .probe();
                (input, probe)
            });
            timed(|| {
                for epoch in 0..epochs {
                    for i in 0..records as u64 {
                        input.send(epoch * 1_000_000 + i * 17 + worker.index() as u64);
                    }
                    input.advance_to(epoch + 1);
                    worker.step_while(|| !probe.done_through(epoch));
                }
                input.close();
                worker.step_until_done();
            })
            .1
        },
    )
    .unwrap();
    let elapsed = times.into_iter().fold(0.0f64, f64::max);
    let settled = report
        .decisions
        .iter()
        .rev()
        .find(|d| d.knob.name() == "batch_size")
        .map_or(start_batch as u64, |d| d.to);
    (elapsed, report.decisions, settled)
}

fn main() {
    header(
        "Ablation",
        "exchange batch size vs time, bytes, messages, progress traffic",
    );
    let records = scaled(50_000);
    println!("workload: {records} records/worker, 2 processes x 2 workers\n");
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>16}",
        "batch", "seconds", "data bytes", "data msgs", "progress bytes"
    );
    for batch in [1usize, 8, 64, 512, 4096] {
        let (t, bytes, msgs, progress) = run(batch, records);
        println!("{batch:>10} {t:>10.3} {bytes:>14} {msgs:>12} {progress:>16}");
    }
    println!(
        "\nShape check: batches amortize per-message costs and collapse\n\
         per-batch progress updates; returns diminish once batches exceed\n\
         the typical per-step record volume (§3.5)."
    );

    header(
        "Ablation (autotuned)",
        "the self-hosted critical-path loop re-tunes the batch size online",
    );
    let epochs = 16u64;
    let per_epoch = scaled(5_000);
    println!("workload: {per_epoch} records/worker/epoch x {epochs} epochs\n");
    println!("{:>10} {:>10} {:>12} {:>8}", "start", "seconds", "settled", "moves");
    for start in [1usize, 4096] {
        let (t, decisions, settled) = run_autotuned(start, per_epoch, epochs);
        let moves = decisions
            .iter()
            .filter(|d| d.knob.name() == "batch_size")
            .count();
        println!("{start:>10} {t:>10.3} {settled:>12} {moves:>8}");
        for d in &decisions {
            println!("           epoch {:>3}: {} {} -> {}", d.epoch, d.knob.name(), d.from, d.to);
        }
    }
    println!(
        "\nShape check: from either extreme the tuner walks the batch size\n\
         toward the hand-swept optimum above (windowed span cost, 5%\n\
         hysteresis, x2/:2 steps) and settles without oscillating."
    );
}
