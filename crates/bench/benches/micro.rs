//! Criterion micro-benchmarks for the coordination machinery the paper's
//! §2.3/§3.3 performance claims rest on.

use criterion::{criterion_group, criterion_main, Criterion};
use naiad::graph::{ContextId, GraphBuilder, StageKind};
use naiad::progress::{Accumulator, Pointstamp, PointstampTable};
use naiad::{Antichain, Timestamp};
use naiad_wire::{decode_from_slice, encode_to_vec};
use std::sync::Arc;

fn loop_graph() -> Arc<naiad::graph::LogicalGraph> {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let ingress = g.add_ingress("I", ctx);
    let feedback = g.add_feedback("F", ctx);
    let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let egress = g.add_egress("E", ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, ingress, 0);
    g.connect(ingress, 0, body, 0);
    g.connect(feedback, 0, body, 1);
    g.connect(body, 0, feedback, 0);
    g.connect(body, 0, egress, 0);
    g.connect(egress, 0, out, 0);
    Arc::new(g.build().unwrap())
}

fn bench_tracker(c: &mut Criterion) {
    let graph = loop_graph();
    c.bench_function("tracker_update_cycle", |b| {
        let mut table = PointstampTable::initialized(graph.clone(), 4);
        let body = naiad::graph::StageId(3);
        b.iter(|| {
            for i in 0..16u64 {
                let p = Pointstamp::at_vertex(Timestamp::with_counters(0, &[i]), body);
                table.update(p, 1);
                table.update(p, -1);
            }
        });
    });
    c.bench_function("summary_matrix_compute", |b| {
        b.iter(|| {
            let _ = loop_graph();
        });
    });
}

fn bench_protocol(c: &mut Criterion) {
    let graph = loop_graph();
    c.bench_function("accumulator_covered_churn", |b| {
        let mut acc = Accumulator::new(graph.clone(), 4);
        let body = naiad::graph::StageId(3);
        b.iter(|| {
            let p = Pointstamp::at_vertex(Timestamp::with_counters(0, &[1]), body);
            let flushed = acc.deposit([(p, 1), (p, -1)]);
            assert!(flushed.is_none());
        });
    });
}

fn bench_wire(c: &mut Criterion) {
    let records: Vec<(u64, String)> = (0..1024).map(|i| (i, format!("record-{i}"))).collect();
    c.bench_function("wire_encode_1k_records", |b| {
        b.iter(|| encode_to_vec(&records));
    });
    let bytes = encode_to_vec(&records);
    c.bench_function("wire_decode_1k_records", |b| {
        b.iter(|| decode_from_slice::<Vec<(u64, String)>>(&bytes).unwrap());
    });
}

fn bench_antichain(c: &mut Criterion) {
    c.bench_function("antichain_insert_timestamps", |b| {
        b.iter(|| {
            let mut a = Antichain::new();
            for e in (0..64u64).rev() {
                a.insert(Timestamp::new(e));
            }
            assert_eq!(a.len(), 1);
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tracker, bench_protocol, bench_wire, bench_antichain
}
criterion_main!(benches);
