//! Micro-benchmarks for the coordination machinery the paper's §2.3/§3.3
//! performance claims rest on.
//!
//! Dependency-free harness: each case runs a warm-up pass, then a timed
//! pass of `iters` iterations, and prints mean ns/iter. Scale iteration
//! counts with `NAIAD_BENCH_SCALE`.

use std::sync::Arc;

use naiad::graph::{ContextId, GraphBuilder, StageKind};
use naiad::progress::{Accumulator, Pointstamp, PointstampTable};
use naiad::{Antichain, Timestamp};
use naiad_bench::{header, scaled, timed};
use naiad_wire::{
    decode_from_slice, decode_ref_from_slice, encode_to_vec, KeyedBatch, KeyedBatchView, SeqView,
    Wire,
};

fn loop_graph() -> Arc<naiad::graph::LogicalGraph> {
    let mut g = GraphBuilder::new();
    let input = g.add_stage("in", StageKind::Input, ContextId::ROOT, 0, 1);
    let ctx = g.add_context(ContextId::ROOT);
    let ingress = g.add_ingress("I", ctx);
    let feedback = g.add_feedback("F", ctx);
    let body = g.add_stage("body", StageKind::Regular, ctx, 2, 1);
    let egress = g.add_egress("E", ctx);
    let out = g.add_stage("out", StageKind::Regular, ContextId::ROOT, 1, 0);
    g.connect(input, 0, ingress, 0);
    g.connect(ingress, 0, body, 0);
    g.connect(feedback, 0, body, 1);
    g.connect(body, 0, feedback, 0);
    g.connect(body, 0, egress, 0);
    g.connect(egress, 0, out, 0);
    Arc::new(g.build().unwrap())
}

/// Runs `f` for `iters` iterations (after `iters / 10 + 1` warm-up
/// iterations) and prints mean ns/iter.
fn bench_case(name: &str, iters: usize, mut f: impl FnMut()) {
    for _ in 0..(iters / 10 + 1) {
        f();
    }
    let ((), secs) = timed(|| {
        for _ in 0..iters {
            f();
        }
    });
    let ns_per_iter = secs * 1e9 / iters as f64;
    println!("{name:<32} {ns_per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn bench_tracker() {
    let graph = loop_graph();
    let mut table = PointstampTable::initialized(graph, 4);
    let body = naiad::graph::StageId(3);
    bench_case("tracker_update_cycle", scaled(20_000), || {
        for i in 0..16u64 {
            let p = Pointstamp::at_vertex(Timestamp::with_counters(0, &[i]), body);
            table.update(p, 1);
            table.update(p, -1);
        }
    });
    bench_case("summary_matrix_compute", scaled(2_000), || {
        let _ = loop_graph();
    });
}

fn bench_protocol() {
    let graph = loop_graph();
    let mut acc = Accumulator::new(graph, 4);
    let body = naiad::graph::StageId(3);
    bench_case("accumulator_covered_churn", scaled(100_000), || {
        let p = Pointstamp::at_vertex(Timestamp::with_counters(0, &[1]), body);
        let flushed = acc.deposit([(p, 1), (p, -1)]);
        assert!(flushed.is_none());
    });
}

fn bench_wire() {
    let records: Vec<(u64, String)> = (0..1024).map(|i| (i, format!("record-{i}"))).collect();
    bench_case("wire_encode_1k_records", scaled(2_000), || {
        let bytes = encode_to_vec(&records);
        assert!(!bytes.is_empty());
    });
    let bytes = encode_to_vec(&records);
    bench_case("wire_decode_1k_records", scaled(2_000), || {
        let back = decode_from_slice::<Vec<(u64, String)>>(&bytes).unwrap();
        assert_eq!(back.len(), 1024);
    });
    // Borrowed decode: same frame, zero copies. The DESIGN.md §16
    // acceptance bar is borrowed decode ≤ 2× encode on this workload.
    bench_case("wire_decode_ref_1k_records", scaled(2_000), || {
        // `tail` wraps the frame-final sequence without a validation
        // walk; the single pass below decodes each element once.
        let view = SeqView::<(u64, &str)>::tail(&bytes).unwrap();
        let mut n = 0usize;
        for item in view.iter() {
            let (_, s) = item.unwrap();
            n += usize::from(!s.is_empty());
        }
        assert_eq!(n, 1024);
    });
    // Columnar keyed batch: one UTF-8 validation for the whole text
    // column instead of one per record. This is the layout the §16
    // decode ≤ 2× encode acceptance bar is scored on.
    let mut batch = KeyedBatch::<u64>::new();
    for (k, s) in &records {
        batch.push(*k, s);
    }
    bench_case("columnar_encode_1k_records", scaled(2_000), || {
        let bytes = encode_to_vec(&batch);
        assert!(!bytes.is_empty());
    });
    let col_bytes = encode_to_vec(&batch);
    bench_case("columnar_decode_ref_1k", scaled(2_000), || {
        let view = decode_ref_from_slice::<KeyedBatchView<u64>>(&col_bytes).unwrap();
        let mut n = 0usize;
        view.try_for_each(|_, s| n += usize::from(!s.is_empty()))
            .unwrap();
        assert_eq!(n, 1024);
    });
    // A recycled-container decode, the runtime's remote hot path: owned
    // records, but the Vec's storage is reused across frames.
    let mut spare: Vec<(u64, String)> = Vec::new();
    bench_case("wire_decode_recycled_1k", scaled(2_000), || {
        let mut input = &bytes[..];
        let len = usize::decode(&mut input).unwrap();
        spare.clear();
        spare.reserve(len);
        for _ in 0..len {
            spare.push(<(u64, String)>::decode(&mut input).unwrap());
        }
        assert_eq!(spare.len(), 1024);
    });
}

fn bench_antichain() {
    bench_case("antichain_insert_timestamps", scaled(20_000), || {
        let mut a = Antichain::new();
        for e in (0..64u64).rev() {
            a.insert(Timestamp::new(e));
        }
        assert_eq!(a.len(), 1);
    });
}

fn main() {
    header("micro", "coordination-machinery micro-benchmarks");
    bench_tracker();
    bench_protocol();
    bench_wire();
    bench_antichain();
}
