//! Figure 6d: strong scaling of WordCount and WCC.
//!
//! The per-record costs of both applications are measured on the real
//! runtime; the simulated paper cluster then scales the fixed-size
//! problem from 1 to 64 computers.

use naiad::{execute, Config};
use naiad_algorithms::datasets::{random_graph, zipf_words};
use naiad_algorithms::wcc::wcc_once;
use naiad_algorithms::wordcount::wordcount;
use naiad_bench::{header, scaled, timed};
use naiad_clustersim::{iterative_job_time, ClusterSim, ClusterSpec, IterativeJob, RescaleModel};
use std::sync::Arc;

fn main() {
    header("Figure 6d", "strong scaling: WordCount and WCC speedups");

    // --- calibrate per-unit costs on the real runtime ---
    let words = scaled(40_000);
    let corpus: Arc<Vec<String>> = Arc::new(
        zipf_words(words, 10_000, 5)
            .chunks(10)
            .map(|c| c.join(" "))
            .collect(),
    );
    let lines = corpus.len();
    let (_, wc_seconds) = timed(|| {
        let corpus = corpus.clone();
        execute(Config::single_process(1), move |worker| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<String>();
                (input, wordcount(&stream).probe())
            });
            for line in corpus.iter() {
                input.send(line.clone());
            }
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    });
    let edges = scaled(10_000);
    let graph = random_graph(edges as u64 / 2, edges, 7);
    let (_, wcc_seconds) = timed(|| {
        let _ = wcc_once(Config::single_process(1), graph.clone());
    });
    println!(
        "calibration: wordcount {lines} lines in {wc_seconds:.3}s; \
         wcc {edges} edges in {wcc_seconds:.3}s (1 worker)"
    );

    // --- paper-scale jobs on the simulated cluster ---
    // WordCount: 128 GB corpus (uncompressed), combiner-reduced exchange.
    let wc_cpu_total = wc_seconds / lines as f64 * 1.28e9 / 100.0; // per ~100 B/line
    let wc_job = IterativeJob::single_phase(wc_cpu_total * 8.0, 2.5e9);
    // WCC: 200M edges over decaying iterations. Label churn exchanges a
    // multiple of the edge count in 16-byte updates before the sparse,
    // latency-bound tail (§5.4).
    let wcc_cpu_total = wcc_seconds / edges as f64 * 200.0e6 * 8.0;
    let mut wcc_job = IterativeJob::decaying(wcc_cpu_total, 80.0e9, 40, 0.75);
    wcc_job.coordination_per_iteration = 2;

    println!(
        "\n{:>10} {:>16} {:>16} {:>14} {:>14}",
        "computers", "WordCount (s)", "WCC (s)", "WC speedup", "WCC speedup"
    );
    let spec1 = ClusterSpec::paper_cluster(1);
    let wc1 = iterative_job_time(&spec1, &wc_job, 3);
    let wcc1 = iterative_job_time(&spec1, &wcc_job, 3);
    for computers in [1, 2, 4, 8, 16, 24, 32, 48, 64] {
        let spec = ClusterSpec::paper_cluster(computers);
        let wc = iterative_job_time(&spec, &wc_job, 3);
        let wcc = iterative_job_time(&spec, &wcc_job, 3);
        println!(
            "{computers:>10} {wc:>16.1} {wcc:>16.1} {:>13.1}x {:>13.1}x",
            wc1 / wc,
            wcc1 / wcc
        );
    }
    println!(
        "\nShape check: WordCount scales near-linearly (paper: 46x at 64);\n\
         WCC saturates earlier under communication and coordination\n\
         (paper: 38x at 64, slowing past ~24 computers)."
    );

    // --- variant: rescale mid-run ---
    // The strong-scaling job grows its worker set at an epoch fence
    // instead of starting at the target size: pay one migration stall
    // (quiesce + snapshot + NIC-bounded shard transfer + restore +
    // replay), then run the remaining half of the job at the new scale.
    println!(
        "\nVariant: rescale mid-run (grow at the halfway fence, 256 MB keyed\nstate per computer)"
    );
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12}",
        "from -> to", "stall (s)", "static (s)", "elastic (s)", "overhead"
    );
    let rescale = RescaleModel::paper_default(256.0e6);
    for (from, to) in [(8, 16), (16, 32), (32, 64)] {
        let half_small = iterative_job_time(&ClusterSpec::paper_cluster(from), &wc_job, 3) / 2.0;
        let half_big = iterative_job_time(&ClusterSpec::paper_cluster(to), &wc_job, 3) / 2.0;
        let static_big = iterative_job_time(&ClusterSpec::paper_cluster(to), &wc_job, 3);
        let mut sim = ClusterSim::new(ClusterSpec::paper_cluster(from), 3);
        let stall = sim.rescale_stall(&rescale, from, to).duration;
        let elastic = half_small + stall + half_big;
        println!(
            "{:>10} {stall:>12.2} {static_big:>14.1} {elastic:>14.1} {:>11.1}%",
            format!("{from} -> {to}"),
            100.0 * (elastic - static_big) / static_big
        );
    }
    println!(
        "\nShape check: the stall is a near-constant ~5 s (NIC-bound shard\n\
         transfer — modular re-routing moves nearly all keyed state), so for\n\
         this seconds-long job growing mid-run costs multiples of starting\n\
         big; elasticity only amortizes when the remaining work dwarfs the\n\
         stall (see the EXPERIMENTS.md migration-stall table)."
    );
}
