//! Figure 8: interactive queries over a streaming iterative graph
//! analysis (§6.4, the Figure 1 application).
//!
//! Tweets stream in continuously; an incremental connected-components
//! computation maintains the mention graph's components and the top
//! hashtag per component. Queries ask for the top hashtag in a user's
//! component. "Fresh" answers wait for the query's epoch to complete
//! (queuing behind the update work — the paper's shark-fin); "stale"
//! answers serve the most recently completed epoch immediately.

use naiad::{execute, Config};
use naiad_algorithms::datasets::tweet_stream;
use naiad_algorithms::wcc::connected_components;
use naiad_bench::{header, percentile, scaled};
use naiad_operators::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

fn main() {
    header(
        "Figure 8",
        "query response times: fresh vs one-epoch-stale (milliseconds)",
    );
    let per_epoch = scaled(400);
    let epochs = scaled(100) as u64;
    let users = 3_000;
    let tweets = std::sync::Arc::new(tweet_stream(per_epoch * epochs as usize, users, 100, 29));
    println!(
        "stream: {} tweets over {epochs} epochs (paper: 32,000 tweets/s, 10 queries/s)\n",
        tweets.len()
    );

    let results = execute(Config::single_process(2), move |worker| {
        // Serving state mirrored from completed epochs.
        let cids: Rc<RefCell<HashMap<u64, u64>>> = Rc::new(RefCell::new(HashMap::new()));
        let tops: Rc<RefCell<HashMap<u64, (u64, u64)>>> = Rc::new(RefCell::new(HashMap::new()));
        let cid_sink = cids.clone();
        let top_sink = tops.clone();

        let (mut tweets_in, mut tags_in, probe) = worker.dataflow(|scope| {
            let (tweets_in, tweet_edges) = scope.new_input::<(u64, u64)>();
            let (tags_in, tag_events) = scope.new_input::<(u64, u64)>();
            // Incremental connected components over the mention graph.
            let cid_updates = connected_components(&tweet_edges);
            cid_updates.subscribe(move |_epoch, data| {
                cid_sink.borrow_mut().extend(data);
            });
            // Hashtag counts per component: join each (user, tag) event
            // with the user's component, count per (cid, tag) per epoch.
            let tagged = tag_events.join_accumulate(&cid_updates, |_user, tag, cid| (*cid, *tag));
            let counted = tagged.map(|(cid, tag)| ((cid, tag), ())).count();
            counted.subscribe(move |_epoch, data| {
                let mut tops = top_sink.borrow_mut();
                for (((cid, tag), n), _) in data.into_iter().map(|x| (x, ())) {
                    let e = tops.entry(cid).or_insert((tag, 0));
                    if n >= e.1 {
                        *e = (tag, n);
                    }
                }
            });
            let probe = cid_updates.probe();
            (tweets_in, tags_in, probe)
        });

        let mut fresh = Vec::new();
        let mut stale = Vec::new();
        for epoch in 0..epochs {
            let lo = (epoch as usize * per_epoch).min(tweets.len());
            let hi = ((epoch as usize + 1) * per_epoch).min(tweets.len());
            for (i, t) in tweets[lo..hi].iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    for &m in &t.mentions {
                        tweets_in.send((t.user, m));
                    }
                    for &h in &t.hashtags {
                        tags_in.send((t.user, h));
                    }
                }
            }
            tweets_in.advance_to(epoch + 1);
            tags_in.advance_to(epoch + 1);
            if worker.index() == 0 {
                let user = (epoch * 37) % users;
                // Stale query: answer immediately from the last
                // completed epoch's state.
                let start = Instant::now();
                let answer = cids
                    .borrow()
                    .get(&user)
                    .and_then(|cid| tops.borrow().get(cid).copied());
                std::hint::black_box(answer);
                stale.push(start.elapsed().as_secs_f64());
                // Fresh query: wait until this epoch's updates are fully
                // reflected, then answer.
                let start = Instant::now();
                worker.step_while(|| !probe.done_through(epoch));
                let answer = cids
                    .borrow()
                    .get(&user)
                    .and_then(|cid| tops.borrow().get(cid).copied());
                std::hint::black_box(answer);
                fresh.push(start.elapsed().as_secs_f64());
            } else {
                worker.step_while(|| !probe.done_through(epoch));
            }
        }
        tweets_in.close();
        tags_in.close();
        worker.step_until_done();
        (fresh, stale)
    })
    .unwrap();

    let (mut fresh, mut stale) = results.into_iter().next().unwrap();
    fresh.sort_by(f64::total_cmp);
    stale.sort_by(f64::total_cmp);
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "mode", "median", "p90", "p99", "max"
    );
    for (name, lat) in [("fresh", &fresh), ("stale", &stale)] {
        if lat.is_empty() {
            continue;
        }
        println!(
            "{name:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  (ms)",
            percentile(lat, 50.0) * 1e3,
            percentile(lat, 90.0) * 1e3,
            percentile(lat, 99.0) * 1e3,
            lat.last().unwrap() * 1e3,
        );
    }
    println!(
        "\nShape check: fresh queries queue behind the incremental update\n\
         work (the paper's 'shark fin', 4-100 ms and up to ~1 s); stale\n\
         queries answer in well under a millisecond (paper: <10 ms\n\
         including network)."
    );
}
