//! Figure 6a: all-to-all exchange throughput vs cluster size.
//!
//! Two parts: (1) the *real* runtime performs a multi-process all-to-all
//! exchange of 8-byte records and we report exactly measured network
//! bytes and the per-record CPU cost; (2) that measured cost calibrates
//! the cluster simulator, which reproduces the paper's three curves
//! (Ideal / socket / Naiad) for 1–64 computers.

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute_with_metrics, Config, FlowConfig};
use naiad_bench::{header, scaled, timed};
use naiad_clustersim::exchange_throughput_gbps;
use naiad_netsim::TrafficClass;

fn measured_exchange(
    processes: usize,
    records_per_worker: usize,
    flow: Option<FlowConfig>,
) -> (f64, u64, f64) {
    let mut config = Config::processes_and_workers(processes, 2);
    if let Some(flow) = flow {
        config = config.flow(flow);
    }
    let (results, metrics) = execute_with_metrics(config, move |worker| {
        let (mut input, probe) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let probe = stream
                .unary(Pact::exchange(|x: &u64| *x), "Scatter", |_info| {
                    |input: &mut InputPort<u64>, output: &mut OutputPort<u64>| {
                        input.for_each_batch(|time, data| {
                            output.session(time).give_container(data);
                        });
                    }
                })
                .probe();
            (input, probe)
        });
        let base = worker.index() as u64;
        let start = std::time::Instant::now();
        // Feed through the container path (DESIGN.md §16): the buffer's
        // storage is swapped into the channel layer and comes back, so
        // the steady state allocates nothing.
        let mut buf: Vec<u64> = Vec::with_capacity(1024);
        for i in 0..records_per_worker as u64 {
            buf.push(base.wrapping_mul(1_000_003).wrapping_add(i));
            if buf.len() == 1024 {
                input.send_container(&mut buf);
            }
        }
        input.send_container(&mut buf);
        input.close();
        worker.step_until_done();
        drop(probe);
        start.elapsed().as_secs_f64()
    })
    .unwrap();
    let t = results.into_iter().fold(0.0f64, f64::max);
    let bytes = metrics.network_bytes(TrafficClass::Data);
    let total_records = records_per_worker * processes * 2;
    let ns_per_record = t * 1e9 / total_records as f64;
    (t, bytes, ns_per_record)
}

fn main() {
    header(
        "Figure 6a",
        "all-to-all exchange throughput (Ideal / .NET socket / Naiad)",
    );

    // Part 1: real multi-process exchange, measured bytes and CPU cost.
    println!("\n-- measured on the real runtime (in-process fabric) --");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12}",
        "processes", "records", "seconds", "net bytes", "ns/record"
    );
    let records = scaled(100_000);
    let mut calibrated_ns = 1_000.0;
    let mut baseline_two_proc_ns = 0.0;
    for processes in [1, 2, 4] {
        let ((t, bytes, ns), _) = timed(|| measured_exchange(processes, records, None));
        println!(
            "{processes:>10} {:>12} {t:>14.3} {bytes:>14} {ns:>12.0}",
            records * processes * 2
        );
        if processes == 2 {
            baseline_two_proc_ns = ns;
        }
        calibrated_ns = ns;
    }

    // Flow-control overhead: the same 2-process exchange (both queue
    // flavours credited) under a generous budget that never binds. The
    // acceptance bar is < 10% ns/record regression in steady state;
    // best-of-3 per arm keeps scheduler noise out of the comparison.
    println!("\n-- flow-control overhead (credit budget 1 MiB, never binds) --");
    let best = |flow: Option<FlowConfig>| {
        (0..3)
            .map(|_| measured_exchange(2, records, flow.clone()).2)
            .fold(f64::INFINITY, f64::min)
    };
    let baseline_ns = best(None).min(baseline_two_proc_ns);
    let credited_ns = best(Some(FlowConfig::default().budget(1 << 20)));
    let regression = (credited_ns - baseline_ns) / baseline_ns * 100.0;
    println!(
        "uncredited {baseline_ns:.0} ns/record, credited {credited_ns:.0} ns/record \
         ({regression:+.1}% — bar is < 10%)"
    );

    // Part 2: the paper's cluster, simulated with the calibrated cost.
    println!("\n-- simulated paper cluster (two racks of 32, 1 Gbps NICs) --");
    println!(
        "this Rust runtime handles 8-byte records in ~{calibrated_ns:.0} ns; the paper's\n\
         C# serializer costs ~1.2 µs/record, so both lines are shown:\n"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "computers", "ideal Gbps", "socket Gbps", "naiad (rust)", "naiad (paper)"
    );
    for computers in [1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64] {
        let spec = naiad_clustersim::ClusterSpec::paper_cluster(computers);
        let (ideal, socket, rust) = exchange_throughput_gbps(&spec, 8.0, calibrated_ns);
        let (_, _, paper) = exchange_throughput_gbps(&spec, 8.0, 1_200.0);
        println!("{computers:>10} {ideal:>12.1} {socket:>12.1} {rust:>14.1} {paper:>14.1}");
    }
    println!(
        "\nShape check: all lines scale linearly with cluster size (§5.1); with\n\
         the paper's per-record CPU cost the Naiad line sits well below the\n\
         socket line, exactly as in Figure 6a."
    );
}
