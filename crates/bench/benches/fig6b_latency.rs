//! Figure 6b: global barrier latency distribution vs cluster size.
//!
//! Part 1 measures the real runtime: a cyclic dataflow whose single stage
//! exchanges no data and simply requests a completeness notification per
//! iteration — the paper's coordination microbenchmark — across in-process
//! worker counts. Part 2 reproduces the paper's median/quartile/95th
//! curves for 1–64 computers on the simulated cluster, where
//! micro-stragglers dominate the tail.

use naiad::dataflow::{InputPort, Notify, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute_with_telemetry, Config, TelemetrySnapshot, Timestamp};
use naiad_bench::{header, percentile, scaled};
use naiad_clustersim::barrier_distribution;
use naiad_clustersim::{ClusterSim, ClusterSpec};

/// Runs `iters` notification-only loop iterations; returns per-iteration
/// latencies in seconds observed at worker 0, plus the run's telemetry
/// registry (each barrier is one notification per worker).
fn measured_barrier(workers: usize, iters: u64) -> (Vec<f64>, TelemetrySnapshot) {
    let config = Config::single_process(workers);
    let (results, snapshot) = execute_with_telemetry(config, move |worker| {
        let (mut input, captured) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<u64>();
            let mut scope2 = stream.scope();
            let lc = scope2.loop_context(naiad::graph::ContextId::ROOT);
            let entered = lc.enter(&stream);
            let (handle, cycle) = lc.feedback::<u64>(Some(iters));
            let timings = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let sink = timings.clone();
            let stepped = entered.binary_notify(
                &cycle,
                Pact::Pipeline,
                Pact::Pipeline,
                "Barrier",
                move |info| {
                    let me = info.worker_index;
                    let mut last = std::time::Instant::now();
                    (
                        move |seed: &mut InputPort<u64>,
                              loopback: &mut InputPort<u64>,
                              _out: &mut OutputPort<u64>,
                              notify: &Notify| {
                            seed.for_each(|time, _| notify.notify_at(time));
                            loopback.for_each(|time, _| notify.notify_at(time));
                        },
                        move |time: Timestamp, out: &mut OutputPort<u64>, _notify: &Notify| {
                            if me == 0 {
                                let now = std::time::Instant::now();
                                sink.borrow_mut().push((now - last).as_secs_f64());
                                last = now;
                            }
                            // One token circulates: each notification is one
                            // fully-coordinated iteration.
                            out.session(time).give(0);
                        },
                    )
                },
            );
            handle.connect(&stepped);
            let _ = lc.leave(&stepped);
            (input, timings)
        });
        if worker.index() == 0 {
            input.send(0);
        }
        input.close();
        worker.step_until_done();
        let result = captured.borrow().clone();
        result
    })
    .unwrap();
    let mut out = results.into_iter().flatten().collect::<Vec<f64>>();
    // Drop the first (startup) sample.
    if !out.is_empty() {
        out.remove(0);
    }
    out.sort_by(f64::total_cmp);
    (out, snapshot)
}

fn main() {
    header(
        "Figure 6b",
        "global barrier latency (median/quartiles/95th)",
    );

    println!("\n-- measured on the real runtime (single machine, N workers) --");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} (microseconds)   {:>8} {:>10} {:>11}",
        "workers", "p25", "median", "p75", "p95", "notifs", "steps", "prog_bytes"
    );
    let iters = scaled(2_000) as u64;
    for workers in [1, 2, 4] {
        let (lat, snapshot) = measured_barrier(workers, iters);
        if lat.is_empty() {
            continue;
        }
        // Registry cross-check: every barrier is one notification per
        // worker, and the protocol bytes behind them are metered exactly.
        println!(
            "{workers:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}                  {:>8} {:>10} {:>11}",
            percentile(&lat, 25.0) * 1e6,
            percentile(&lat, 50.0) * 1e6,
            percentile(&lat, 75.0) * 1e6,
            percentile(&lat, 95.0) * 1e6,
            snapshot.total_notifications(),
            snapshot.total_steps(),
            snapshot.progress_bytes(true),
        );
    }

    println!("\n-- simulated paper cluster (8 workers/computer) --");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} (microseconds)",
        "computers", "p25", "median", "p75", "p95"
    );
    for computers in [1, 2, 4, 8, 16, 32, 64] {
        let spec = ClusterSpec::paper_cluster(computers);
        let lat = barrier_distribution(&spec, 20_000, 6 + computers as u64);
        println!(
            "{computers:>10} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            percentile(&lat, 25.0) * 1e6,
            percentile(&lat, 50.0) * 1e6,
            percentile(&lat, 75.0) * 1e6,
            percentile(&lat, 95.0) * 1e6,
        );
    }
    // Phase-level telemetry for the largest simulated cluster: how much
    // of the barrier time the micro-stragglers account for.
    let mut sim = ClusterSim::new(ClusterSpec::paper_cluster(64), 6 + 64);
    for _ in 0..20_000 {
        sim.coordination_round();
    }
    println!("\n-- simulator telemetry at 64 computers --");
    print!("{}", sim.telemetry().summary_table());

    println!(
        "\nShape check: sub-millisecond medians growing slowly with scale\n\
         (the paper reports 753 µs at 64 computers) while the 95th percentile\n\
         blows up with micro-stragglers (§3.5, §5.2)."
    );
}
