//! Table 1: PageRank / SCC / WCC / ASP against the batch-engine
//! comparators, on a synthetic web graph — all measured for real, at a
//! scale recorded in the output.
//!
//! The paper's numbers come from the 8B-edge ClueWeb09 "Category A" graph
//! on 16 computers; the *shape* to reproduce is Naiad beating every
//! per-iteration state-movement engine by one to three orders of
//! magnitude, with SHS slowest on iteration-heavy algorithms.

use naiad::Config;
use naiad_algorithms::asp::approximate_shortest_paths;
use naiad_algorithms::datasets::powerlaw_graph;
use naiad_algorithms::pagerank::pagerank_vertex;
use naiad_algorithms::scc::strongly_connected_components;
use naiad_algorithms::wcc::wcc_once;
use naiad_baselines::batch::{BatchEngine, EngineKind};
use naiad_bench::{header, scaled, timed};
use std::sync::Arc;

fn run_naiad_pagerank(edges: Arc<Vec<(u64, u64)>>, iters: u64) -> f64 {
    timed(|| {
        naiad::execute(Config::single_process(2), move |worker| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, pagerank_vertex(&stream, iters).probe())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    })
    .1
}

fn run_naiad_scc(edges: Arc<Vec<(u64, u64)>>) -> f64 {
    timed(|| {
        naiad::execute(Config::single_process(2), move |worker| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, strongly_connected_components(&stream, 64).probe())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    })
    .1
}

fn run_naiad_asp(edges: Arc<Vec<(u64, u64)>>, sources: Vec<u64>) -> f64 {
    timed(|| {
        naiad::execute(Config::single_process(2), move |worker| {
            let sources = sources.clone();
            let (mut input, probe) = worker.dataflow(move |scope| {
                let (input, stream) = scope.new_input::<(u64, u64)>();
                (input, approximate_shortest_paths(&stream, sources).probe())
            });
            for (i, e) in edges.iter().enumerate() {
                if i % worker.peers() == worker.index() {
                    input.send(*e);
                }
            }
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    })
    .1
}

fn main() {
    header(
        "Table 1",
        "graph algorithms: Naiad vs PDW-like vs DryadLINQ-like vs SHS-like (seconds)",
    );
    let nodes = scaled(20_000) as u64;
    let edge_count = scaled(100_000);
    let edges = Arc::new(powerlaw_graph(nodes, edge_count, 17));
    let pr_iters = 10u64;
    println!(
        "graph: {nodes} nodes, {edge_count} edges (paper: 1B pages, 8B edges); \
         PageRank {pr_iters} iterations\n"
    );
    // Store throughputs stand in for each system's movement medium: the
    // batch processors write through a cluster filesystem, the store pays
    // per-access overheads instead (its `access_cost` spins).
    let dryad = BatchEngine::with_store(EngineKind::DryadLinq, 60.0e6, 0.3);
    let pdw = BatchEngine::with_store(EngineKind::Pdw, 40.0e6, 0.5);
    let mut shs = BatchEngine::in_memory(EngineKind::Shs {
        access_cost: 80_000,
    });
    shs.launch_overhead = 0.02; // online store: no job launches, only RPCs

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "algorithm", "PDW", "DryadLINQ", "SHS", "Naiad"
    );

    // PageRank.
    let (_, t_pdw) = timed(|| pdw.pagerank(&edges, pr_iters as usize));
    let (_, t_dryad) = timed(|| dryad.pagerank(&edges, pr_iters as usize));
    let (_, t_shs) = timed(|| shs.pagerank(&edges, pr_iters as usize));
    let t_naiad = run_naiad_pagerank(edges.clone(), pr_iters);
    println!(
        "{:<10} {t_pdw:>12.3} {t_dryad:>12.3} {t_shs:>12.3} {t_naiad:>12.3}",
        "PageRank"
    );

    // SCC (the batch engines run the label algorithm to fixpoint).
    let scc_iters = 50;
    let (_, s_pdw) = timed(|| pdw.wcc(&edges, scc_iters));
    let (_, s_dryad) = timed(|| dryad.wcc(&edges, scc_iters));
    let (_, s_shs) = timed(|| shs.wcc(&edges, scc_iters));
    let s_naiad = run_naiad_scc(edges.clone());
    println!(
        "{:<10} {s_pdw:>12.3} {s_dryad:>12.3} {s_shs:>12.3} {s_naiad:>12.3}",
        "SCC"
    );

    // WCC.
    let (_, w_pdw) = timed(|| pdw.wcc(&edges, scc_iters));
    let (_, w_dryad) = timed(|| dryad.wcc(&edges, scc_iters));
    let (_, w_shs) = timed(|| shs.wcc(&edges, scc_iters));
    let (_, w_naiad) = timed(|| wcc_once(Config::single_process(2), edges.as_ref().clone()));
    println!(
        "{:<10} {w_pdw:>12.3} {w_dryad:>12.3} {w_shs:>12.3} {w_naiad:>12.3}",
        "WCC"
    );

    // ASP from a handful of sampled sources; batch engines pay the same
    // label iteration per source set.
    let sources: Vec<u64> = (0..4).map(|i| i * 7 % nodes).collect();
    let (_, a_pdw) = timed(|| pdw.wcc(&edges, scc_iters));
    let (_, a_dryad) = timed(|| dryad.wcc(&edges, scc_iters));
    let (_, a_shs) = timed(|| shs.wcc(&edges, scc_iters));
    let a_naiad = run_naiad_asp(edges, sources);
    println!(
        "{:<10} {a_pdw:>12.3} {a_dryad:>12.3} {a_shs:>12.3} {a_naiad:>12.3}",
        "ASP"
    );

    println!(
        "\nShape check: the comparators pay per-iteration serialization,\n\
         sort-joins, or per-access costs that Naiad's resident state avoids\n\
         (Table 1's 5x-600x speedups on equivalent hardware)."
    );
}
