//! Overload trade-off: throughput and peak in-flight bytes at 1x/2x/4x
//! offered load, with and without a binding credit budget (DESIGN.md §15).
//!
//! A producer offers 64-record chunks at a multiple of the consumer's
//! drain rate (the consumer dawdles one tick per batch). At 1x the
//! pipeline is balanced; at 2x and 4x the producer runs ahead and the
//! exchange queue must absorb the excess. Both arms run under flow
//! control so the peak gauge is metered — the "unbounded" arm uses a
//! budget that can never bind (pure metering), the "credited" arm a
//! 4 KiB budget with lossless `Block` policy.
//!
//! The story the table tells: end-to-end throughput is pinned to the
//! consumer in every cell (backpressure costs nothing you could have
//! kept), while the peak in-flight bytes grow with the load multiplier
//! unbounded and stay flat at the budget when credited.
//!
//! Run with: `cargo bench -p naiad-bench --bench overload_flow`

use std::cell::RefCell;
use std::rc::Rc;
use std::thread;
use std::time::{Duration, Instant};

use naiad::dataflow::{InputPort, OutputPort};
use naiad::runtime::Pact;
use naiad::{execute_with_telemetry, Config, FlowConfig};
use naiad_bench::{header, scaled};

const CHUNK: usize = 64;
// Slow enough that the consumer is unambiguously the bottleneck: the
// producer can serialize and flush a chunk in well under a tick.
const DAWDLE: Duration = Duration::from_millis(4);
const CREDITED_BUDGET: usize = 4 << 10;
/// Large enough that the credit layer only meters, never parks.
const UNBOUNDED_BUDGET: usize = 1 << 30;

/// One run: `chunks` chunks offered at `load` times the drain rate.
/// Returns (delivered records, wall seconds, peak in-flight bytes,
/// credit waits).
fn run(chunks: usize, load: u32, budget: usize) -> (u64, f64, u64, u64) {
    let flow = FlowConfig::default()
        .budget(budget)
        .credit_wait(Duration::from_secs(5));
    let config = Config::processes_and_workers(1, 2)
        .batch_size(CHUNK)
        .flow(flow);
    // Producer pacing: the consumer drains one chunk per DAWDLE tick,
    // so offering `load` chunks per tick is a `load`x overload.
    let ticks = chunks / load as usize;

    let (results, snapshot) = execute_with_telemetry(config, move |worker| {
        let (mut input, probe, seen) = worker.dataflow(|scope| {
            let (input, stream) = scope.new_input::<(u64, u64)>();
            let seen: Rc<RefCell<u64>> = Rc::default();
            let sink = Rc::clone(&seen);
            let stream = stream.unary(
                Pact::exchange(|_: &(u64, u64)| 1),
                "DawdlingSink",
                move |_info| {
                    move |input: &mut InputPort<(u64, u64)>,
                          _output: &mut OutputPort<(u64, u64)>| {
                        input.for_each(|_time, data| {
                            thread::sleep(DAWDLE);
                            *sink.borrow_mut() += data.len() as u64;
                        });
                    }
                },
            );
            (input, stream.probe(), seen)
        });

        let start = Instant::now();
        if worker.index() == 0 {
            for tick in 0..ticks {
                for c in 0..load as usize {
                    let chunk = (tick * load as usize + c) as u64;
                    for i in 0..CHUNK as u64 {
                        input.send((chunk, i));
                    }
                }
                // No step between ticks: flushes happen inside send,
                // and a credit park there is the backpressure under
                // test (worker 1's releases wake the producer).
                thread::sleep(DAWDLE);
            }
        }
        input.close();
        worker.step_while(|| !probe.done_through(0));
        worker.step_until_done();
        let delivered = *seen.borrow();
        (delivered, start.elapsed().as_secs_f64())
    })
    .expect("overloaded run completes");

    let delivered: u64 = results.iter().map(|(d, _)| d).sum();
    let wall = results.iter().fold(0.0f64, |a, (_, t)| a.max(*t));
    let flow = snapshot.flow;
    assert_eq!(flow.shed_records, 0, "Block policy is lossless");
    assert_eq!(flow.in_flight_bytes, 0, "credits drain by the join");
    (delivered, wall, flow.peak_in_flight_bytes, flow.credit_waits)
}

fn main() {
    header(
        "Overload",
        "throughput vs peak in-flight bytes at 1x/2x/4x load (DESIGN.md §15)",
    );
    let chunks = scaled(160);
    println!(
        "\n{} chunks of {CHUNK} records, consumer drains one chunk per {DAWDLE:?};\n\
         'unbounded' meters under a budget that never binds, 'credited' blocks\n\
         at {CREDITED_BUDGET} bytes:\n",
        chunks
    );
    println!(
        "{:>6} {:>11} {:>11} {:>13} {:>13} {:>13} {:>12}",
        "load", "arm", "delivered", "seconds", "krec/s", "peak bytes", "credit waits"
    );
    for load in [1, 2, 4] {
        for (arm, budget) in [("unbounded", UNBOUNDED_BUDGET), ("credited", CREDITED_BUDGET)] {
            let (delivered, wall, peak, waits) = run(chunks, load, budget);
            assert_eq!(delivered, (chunks * CHUNK) as u64, "lossless in every cell");
            if budget == CREDITED_BUDGET {
                assert!(
                    peak <= CREDITED_BUDGET as u64,
                    "peak {peak} exceeded the credit budget"
                );
            }
            println!(
                "{load:>5}x {arm:>11} {delivered:>11} {wall:>13.3} {:>13.1} {peak:>13} {waits:>12}",
                delivered as f64 / wall / 1e3
            );
        }
    }
    println!(
        "\nShape check: throughput is consumer-bound in every cell; the peak\n\
         grows with the load multiplier when unbounded and is capped at the\n\
         budget when credited — backpressure trades memory for wait time."
    );
}
