//! Figure 6e: weak scaling slowdown of WCC and WordCount — per-computer
//! input held constant while computers grow.

use naiad_bench::header;
use naiad_clustersim::{iterative_job_time, ClusterSim, ClusterSpec, IterativeJob, RescaleModel};

fn main() {
    header("Figure 6e", "weak scaling slowdown (1.0 = perfect)");
    // Per-computer constants from the paper: WCC moves 360 MB per
    // computer at every scale and runs ~20 s on one computer; WordCount
    // exchanges far less thanks to combiners.
    println!(
        "{:>10} {:>14} {:>16}",
        "computers", "WCC slowdown", "WordCount slowdown"
    );
    let time_wcc = |n: usize| {
        let job = IterativeJob::decaying(160.0 * n as f64, 0.36e9 * n as f64, 24, 0.6);
        iterative_job_time(&ClusterSpec::paper_cluster(n), &job, 9)
    };
    let time_wc = |n: usize| {
        let job = IterativeJob::single_phase(180.0 * n as f64, 0.16e9 * n as f64);
        iterative_job_time(&ClusterSpec::paper_cluster(n), &job, 9)
    };
    let wcc1 = time_wcc(1);
    let wc1 = time_wc(1);
    for n in [1, 2, 4, 8, 16, 32, 48, 64] {
        println!(
            "{n:>10} {:>13.2}x {:>15.2}x",
            time_wcc(n) / wcc1,
            time_wc(n) / wc1
        );
    }
    println!(
        "\nShape check: WCC degrades to ~1.4x at 64 computers because a fixed\n\
         360 MB/computer increasingly crosses the network (1/2 at n=2, 63/64\n\
         at n=64 — §5.4); WordCount's combiners keep it under ~1.25x."
    );

    // --- variant: rescale mid-run ---
    // Weak scaling meets elasticity: the WCC job doubles its input *and*
    // its worker set at a fence. The stall is dominated by re-routing the
    // per-computer keyed state (360 MB, the same bytes the exchange
    // moves), shrinking relative to the job as both scale together.
    println!("\nVariant: rescale mid-run (double the cluster at the halfway fence)");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "from -> to", "stall (s)", "job half (s)", "stall share"
    );
    let rescale = RescaleModel::paper_default(360.0e6);
    for from in [2usize, 8, 32] {
        let to = from * 2;
        let half = time_wcc(to) / 2.0;
        let mut sim = ClusterSim::new(ClusterSpec::paper_cluster(from), 9);
        let stall = sim.rescale_stall(&rescale, from, to).duration;
        println!(
            "{:>10} {stall:>12.2} {half:>14.1} {:>11.1}%",
            format!("{from} -> {to}"),
            100.0 * stall / (half + stall)
        );
    }
    println!(
        "\nShape check: per-computer state is constant, so the NIC-bound stall\n\
         is near-flat with scale — like the weak-scaled job itself — leaving\n\
         a roughly constant stall share at every doubling."
    );
}
