//! Figure 6e: weak scaling slowdown of WCC and WordCount — per-computer
//! input held constant while computers grow.

use naiad_bench::header;
use naiad_clustersim::{iterative_job_time, ClusterSpec, IterativeJob};

fn main() {
    header("Figure 6e", "weak scaling slowdown (1.0 = perfect)");
    // Per-computer constants from the paper: WCC moves 360 MB per
    // computer at every scale and runs ~20 s on one computer; WordCount
    // exchanges far less thanks to combiners.
    println!(
        "{:>10} {:>14} {:>16}",
        "computers", "WCC slowdown", "WordCount slowdown"
    );
    let time_wcc = |n: usize| {
        let job = IterativeJob::decaying(160.0 * n as f64, 0.36e9 * n as f64, 24, 0.6);
        iterative_job_time(&ClusterSpec::paper_cluster(n), &job, 9)
    };
    let time_wc = |n: usize| {
        let job = IterativeJob::single_phase(180.0 * n as f64, 0.16e9 * n as f64);
        iterative_job_time(&ClusterSpec::paper_cluster(n), &job, 9)
    };
    let wcc1 = time_wcc(1);
    let wc1 = time_wc(1);
    for n in [1, 2, 4, 8, 16, 32, 48, 64] {
        println!(
            "{n:>10} {:>13.2}x {:>15.2}x",
            time_wcc(n) / wcc1,
            time_wc(n) / wc1
        );
    }
    println!(
        "\nShape check: WCC degrades to ~1.4x at 64 computers because a fixed\n\
         360 MB/computer increasingly crosses the network (1/2 at n=2, 63/64\n\
         at n=64 — §5.4); WordCount's combiners keep it under ~1.25x."
    );
}
