//! Figure 7a: PageRank per-iteration time on a follower graph — Naiad
//! Pregel vs Naiad Vertex vs Naiad Edge vs a PowerGraph-like GAS engine.
//!
//! Real per-iteration times are measured at laptop scale; the simulated
//! cluster then projects the per-iteration exchange volumes to 64
//! computers with the variants' different traffic patterns.

use naiad::{execute, Config};
use naiad_algorithms::datasets::powerlaw_graph;
use naiad_algorithms::pagerank::{pagerank_edge, pagerank_pregel, pagerank_vertex};
use naiad_baselines::gas::GasEngine;
use naiad_bench::{header, scaled, timed};
use naiad_clustersim::{iterative_job_time, ClusterSpec, IterativeJob};
use std::collections::HashMap;
use std::sync::Arc;

const ITERS: u64 = 10;

fn per_iteration(total: f64) -> f64 {
    total / ITERS as f64
}

fn main() {
    header(
        "Figure 7a",
        "PageRank on a follower graph: per-iteration seconds",
    );
    let nodes = scaled(4_000) as u64;
    let edge_count = scaled(40_000);
    let edges = Arc::new(powerlaw_graph(nodes, edge_count, 23));
    println!("graph: {nodes} nodes, {edge_count} edges (paper: 42M nodes, 1.5B edges)\n");

    // --- measured, 2 workers ---
    let feed = |worker: &mut naiad::Worker,
                input: &mut naiad::dataflow::InputHandle<(u64, u64)>,
                edges: &[(u64, u64)]| {
        for (i, e) in edges.iter().enumerate() {
            if i % worker.peers() == worker.index() {
                input.send(*e);
            }
        }
    };
    let e1 = edges.clone();
    let (_, t_vertex) = timed(|| {
        execute(Config::single_process(2), move |worker| {
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, s) = scope.new_input::<(u64, u64)>();
                (input, pagerank_vertex(&s, ITERS).probe())
            });
            feed(worker, &mut input, &e1);
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    });
    let e2 = edges.clone();
    let (_, t_edge) = timed(|| {
        execute(Config::single_process(2), move |worker| {
            let peers = worker.peers();
            let (mut input, probe) = worker.dataflow(|scope| {
                let (input, s) = scope.new_input::<(u64, u64)>();
                (input, pagerank_edge(&s, ITERS, peers).probe())
            });
            feed(worker, &mut input, &e2);
            input.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    });
    let e3 = edges.clone();
    let (_, t_pregel) = timed(|| {
        execute(Config::single_process(2), move |worker| {
            let (mut seeds, probe) = worker.dataflow(|scope| {
                let (input, s) = scope.new_input::<(u64, (f64, Vec<u64>))>();
                (input, pagerank_pregel(&s, ITERS).probe())
            });
            if worker.index() == 0 {
                let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
                let mut all: std::collections::HashSet<u64> = Default::default();
                for &(a, b) in e3.iter() {
                    adjacency.entry(a).or_default().push(b);
                    all.insert(a);
                    all.insert(b);
                }
                for n in all {
                    seeds.send((n, (1.0, adjacency.remove(&n).unwrap_or_default())));
                }
            }
            seeds.close();
            worker.step_until_done();
            drop(probe);
        })
        .unwrap();
    });
    let (_, t_gas) = timed(|| {
        let mut gas = GasEngine::new(&edges, 8);
        gas.pagerank(ITERS as usize);
    });

    println!("-- measured (2 workers, whole run / {ITERS} iterations) --");
    println!(
        "{:<16} {:>14} {:>16}",
        "variant", "total (s)", "per-iteration (s)"
    );
    for (name, t) in [
        ("Naiad Pregel", t_pregel),
        ("Naiad Vertex", t_vertex),
        ("PowerGraph", t_gas),
        ("Naiad Edge", t_edge),
    ] {
        println!("{name:<16} {t:>14.3} {:>16.4}", per_iteration(t));
    }

    // --- simulated paper-scale cluster: the variants differ in exchanged
    // bytes per iteration (vertex: one update per edge cut; edge: row
    // shares + column partials; pregel: vertex plus superstep framing).
    println!("\n-- simulated cluster, per-iteration seconds (1.5B-edge graph) --");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "computers", "Naiad Pregel", "Naiad Vertex", "PowerGraph", "Naiad Edge"
    );
    let edges_paper = 1.5e9;
    let cpu_per_iter = 8.0 * 16.0; // seconds across cluster per iteration
    for computers in [8, 16, 24, 32, 48, 64] {
        let sqrt = (computers as f64).sqrt();
        let mk = |bytes_per_iter: f64, overhead: f64| {
            let job = IterativeJob::single_phase(cpu_per_iter * overhead, bytes_per_iter);
            iterative_job_time(&ClusterSpec::paper_cluster(computers), &job, 4)
        };
        let vertex = mk(edges_paper * 12.0, 1.0);
        let pregel = mk(edges_paper * 12.0, 1.6);
        let gas = mk(edges_paper * 12.0 / 2.0, 1.3);
        let edge = mk(edges_paper * 12.0 / sqrt, 1.1);
        println!("{computers:>10} {pregel:>14.1} {vertex:>14.1} {gas:>14.1} {edge:>14.1}");
    }
    println!(
        "\nShape check: same algorithm, different layers (§6.1): Pregel pays\n\
         abstraction overhead above Vertex; the 2-D Naiad Edge partitioning\n\
         moves ~1/sqrt(n) of the data and wins at every scale, as in the paper."
    );
}
