//! Shared helpers for the figure and table harnesses.
//!
//! Every paper figure/table has a bench target (`cargo bench -p
//! naiad-bench --bench figXX_…`) printing rows in the paper's shape; see
//! EXPERIMENTS.md for the recorded paper-vs-measured comparison. The
//! harnesses honour `NAIAD_BENCH_SCALE` (a positive float, default 1.0)
//! to grow or shrink workload sizes.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The workload scale factor from `NAIAD_BENCH_SCALE`.
pub fn scale() -> f64 {
    std::env::var("NAIAD_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Scales an integer workload parameter.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(1.0) as usize
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Percentile of a sorted slice (p in [0, 100]).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Prints a figure header in a consistent style.
pub fn header(figure: &str, caption: &str) {
    println!();
    println!("=== {figure} — {caption} ===");
}
