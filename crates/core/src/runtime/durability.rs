//! Fault tolerance: checkpoint and restore (§3.4).
//!
//! Stateful vertices implement [`Checkpoint`]; the runtime drives them
//! through [`DurabilitySink`]s that either meter bytes in memory or write
//! to stable storage. The full checkpoint/logging machinery is layered in
//! the operator library and exercised by the Figure 7c benchmark.
//!
//! Checkpoint blobs produced by
//! [`Worker::checkpoint`](crate::runtime::Worker::checkpoint) are sealed
//! with a versioned header and checksum ([`seal_blob`]/[`open_blob`]), so
//! bit rot or truncation in stable storage surfaces as a typed
//! [`RestoreError`] at restore time instead of a deep decoding panic.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::io::Write;
use std::rc::Rc;

/// Leading magic of a sealed checkpoint blob.
const BLOB_MAGIC: [u8; 4] = *b"NCKP";
/// Current sealed-blob format version. Version 2 embeds the worker count
/// that took the snapshot, so restoring under a different membership is a
/// typed [`RestoreError::PartitionCountMismatch`] instead of a silent
/// wrong-routing hazard.
const BLOB_VERSION: u16 = 2;
/// Sealed-blob header length: magic + version + payload length + checksum.
const BLOB_HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// FNV-1a, the checksum guarding sealed checkpoint blobs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a checkpoint snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The blob does not start with the checkpoint magic — it is not a
    /// sealed checkpoint at all.
    BadMagic,
    /// The blob was sealed by an incompatible format version.
    UnsupportedVersion(u16),
    /// The blob ends before its declared payload does.
    Truncated(&'static str),
    /// The payload does not match its recorded checksum: bit rot or a
    /// torn write in stable storage.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The snapshot's structure does not match the constructed dataflows.
    ShapeMismatch {
        /// Which structural quantity disagreed.
        what: &'static str,
        /// The value the worker expected.
        expected: usize,
        /// The value found in the snapshot.
        found: usize,
    },
    /// The snapshot was partitioned for a different worker count than the
    /// restoring cluster runs. Restoring it wholesale would leave keys on
    /// workers the exchange contract no longer routes them to — the
    /// elastic-rescale path (`runtime::rescale`) consumes this error by
    /// re-partitioning keyed state instead.
    PartitionCountMismatch {
        /// Worker count recorded when the snapshot was taken.
        checkpointed: usize,
        /// Worker count of the restoring cluster.
        restoring: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a sealed checkpoint blob (bad magic)"),
            RestoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            RestoreError::Truncated(what) => write!(f, "checkpoint truncated at {what}"),
            RestoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: expected {expected:#018x}, found {found:#018x}"
            ),
            RestoreError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} mismatch: expected {expected}, found {found}"),
            RestoreError::PartitionCountMismatch {
                checkpointed,
                restoring,
            } => write!(
                f,
                "checkpoint partitioned for {checkpointed} worker(s) cannot restore \
                 into {restoring} worker(s) without re-partitioning keyed state"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Seals `payload` as a checkpoint blob: magic, format version, payload
/// length, and an FNV-1a checksum, followed by the payload itself.
pub fn seal_blob(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOB_HEADER_LEN + payload.len());
    out.extend_from_slice(&BLOB_MAGIC);
    out.extend_from_slice(&BLOB_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a sealed checkpoint blob and returns its payload.
// lint-allow(NS0004): every index below sits behind an explicit length
// check that returns a typed `RestoreError` first; the `try_into`s are
// fixed-width slices of already-validated ranges.
pub fn open_blob(blob: &[u8]) -> Result<&[u8], RestoreError> {
    if blob.len() < 4 || blob[..4] != BLOB_MAGIC {
        return Err(RestoreError::BadMagic);
    }
    if blob.len() < BLOB_HEADER_LEN {
        return Err(RestoreError::Truncated("blob header"));
    }
    let version = u16::from_le_bytes([blob[4], blob[5]]);
    if version != BLOB_VERSION {
        return Err(RestoreError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(blob[6..14].try_into().expect("fixed-width slice")) as usize;
    let expected = u64::from_le_bytes(blob[14..22].try_into().expect("fixed-width slice"));
    let payload = &blob[BLOB_HEADER_LEN..];
    if payload.len() != len {
        return Err(RestoreError::Truncated("blob payload"));
    }
    let found = fnv1a(payload);
    if found != expected {
        return Err(RestoreError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

/// State that can be saved to and restored from a byte buffer (§3.4's
/// `Checkpoint`/`Restore` vertex interface).
///
/// Stateful vertices register implementations through
/// [`OperatorInfo::register_state`](crate::dataflow::OperatorInfo::register_state);
/// [`Worker::checkpoint`](crate::runtime::Worker::checkpoint) then
/// produces a consistent snapshot of every registered state, and
/// [`Worker::restore`](crate::runtime::Worker::restore) reloads one into a
/// freshly constructed, structurally identical dataflow.
pub trait Checkpoint {
    /// Appends a full serialization of the state to `buf`.
    fn checkpoint(&self, buf: &mut Vec<u8>);
    /// Reconstructs the state from `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Panics
    ///
    /// Implementations may panic on corrupt input: a damaged checkpoint
    /// cannot be recovered from.
    fn restore(&mut self, input: &mut &[u8]);
}

/// Any `Wire`-encodable value checkpoints wholesale — the "full,
/// potentially more compact, checkpoint" flavour of §3.4. Operators
/// holding state in `Rc<RefCell<...>>` cells therefore register it
/// directly.
impl<T: naiad_wire::Wire> Checkpoint for T {
    fn checkpoint(&self, buf: &mut Vec<u8>) {
        self.encode(buf);
    }
    fn restore(&mut self, input: &mut &[u8]) {
        *self = T::decode(input).unwrap_or_else(|e| {
            panic!(
                "checkpoint state failed to decode as {} — the blob passed its \
                 checksum, so this is a shape mismatch (dataflow built \
                 differently than when the checkpoint was taken): {e:?}",
                std::any::type_name::<T>()
            )
        });
    }
}

/// Checkpointable state that is additionally *partitioned by key* under
/// the same routing function its operator exchanges on — the contract
/// elastic rescaling (`runtime::rescale`) needs to migrate state across a
/// worker-count change (§3.4 extended with Falkirk-Wheel-style selective
/// replay).
///
/// `export_part`/`absorb_part` split and re-merge the state along the
/// exchange partitioning: entry `k` belongs to partition
/// `route(k) % parts`, exactly mirroring the runtime's
/// `Pact::Exchange` routing (`hash % peers`). Because partitions are
/// disjoint by construction, absorbing every old worker's part `p`
/// rebuilds precisely the state new worker `p` owns under the new
/// membership.
///
/// Operators register implementations through
/// [`OperatorInfo::register_keyed_state`](crate::dataflow::OperatorInfo::register_keyed_state);
/// state registered through plain
/// [`register_state`](crate::dataflow::OperatorInfo::register_state)
/// checkpoints and restores but cannot migrate, and makes a rescale abort
/// with a typed error.
pub trait KeyedCheckpoint: Checkpoint {
    /// Appends a serialization of the entries belonging to partition
    /// `part` of `parts` to `buf`.
    fn export_part(&self, part: usize, parts: usize, buf: &mut Vec<u8>);
    /// Merges an exported partition (disjoint keys) into this state.
    ///
    /// # Panics
    ///
    /// Implementations may panic on corrupt input, like
    /// [`Checkpoint::restore`].
    fn absorb_part(&mut self, input: &mut &[u8]);
    /// Removes every entry, preparing the state to absorb a fresh set of
    /// partitions.
    fn clear(&mut self);
}

/// The [`KeyedCheckpoint`] adapter for the idiomatic keyed-operator state
/// shape: a shared `HashMap` cell plus the routing function its operator
/// exchanges records by.
///
/// Created by
/// [`OperatorInfo::register_keyed_state`](crate::dataflow::OperatorInfo::register_keyed_state);
/// the operator keeps using its `Rc<RefCell<HashMap<..>>>` directly while
/// the adapter gives the checkpoint machinery a partition-aware view of
/// the same map.
pub struct KeyedState<K, V> {
    map: Rc<RefCell<HashMap<K, V>>>,
    route: Box<dyn Fn(&K) -> u64>,
}

impl<K, V> KeyedState<K, V> {
    /// Wraps `map` with the exchange routing function `route`.
    ///
    /// `route` must be the same function (up to extensional equality) the
    /// operator passes to `Pact::exchange`, or migrated entries land on
    /// workers the exchange contract never routes their keys to.
    pub fn new(map: Rc<RefCell<HashMap<K, V>>>, route: impl Fn(&K) -> u64 + 'static) -> Self {
        KeyedState {
            map,
            route: Box::new(route),
        }
    }
}

impl<K, V> Checkpoint for KeyedState<K, V>
where
    K: naiad_wire::Wire + Eq + Hash,
    V: naiad_wire::Wire,
{
    fn checkpoint(&self, buf: &mut Vec<u8>) {
        self.map.borrow().checkpoint(buf);
    }
    fn restore(&mut self, input: &mut &[u8]) {
        self.map.borrow_mut().restore(input);
    }
}

impl<K, V> KeyedCheckpoint for KeyedState<K, V>
where
    K: naiad_wire::Wire + Eq + Hash,
    V: naiad_wire::Wire,
{
    fn export_part(&self, part: usize, parts: usize, buf: &mut Vec<u8>) {
        let map = self.map.borrow();
        // Pre-encode and sort so the shard bytes are deterministic even
        // though `HashMap` iteration order is not.
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = map
            .iter()
            .filter(|(k, _)| ((self.route)(k) % parts as u64) as usize == part)
            .map(|(k, v)| {
                let mut kb = Vec::new();
                k.encode(&mut kb);
                let mut vb = Vec::new();
                v.encode(&mut vb);
                (kb, vb)
            })
            .collect();
        entries.sort();
        naiad_wire::Wire::encode(&entries.len(), buf);
        for (kb, vb) in entries {
            buf.extend_from_slice(&kb);
            buf.extend_from_slice(&vb);
        }
    }

    fn absorb_part(&mut self, input: &mut &[u8]) {
        let count = <usize as naiad_wire::Wire>::decode(input)
            .unwrap_or_else(|e| panic!("keyed shard header failed to decode: {e:?}"));
        let mut map = self.map.borrow_mut();
        map.reserve(count);
        for _ in 0..count {
            let k = K::decode(input).unwrap_or_else(|e| {
                panic!(
                    "keyed shard entry failed to decode as {}: {e:?}",
                    std::any::type_name::<K>()
                )
            });
            let v = V::decode(input).unwrap_or_else(|e| {
                panic!(
                    "keyed shard entry failed to decode as {}: {e:?}",
                    std::any::type_name::<V>()
                )
            });
            map.insert(k, v);
        }
    }

    fn clear(&mut self) {
        self.map.borrow_mut().clear();
    }
}

/// A destination for checkpoint and log bytes.
pub trait DurabilitySink: Send {
    /// Persists one blob, returning once the configured durability level
    /// is reached.
    fn persist(&mut self, bytes: &[u8]);
    /// Total bytes persisted.
    fn bytes_written(&self) -> u64;
}

/// An in-memory sink that only meters volume — the "no durability"
/// baseline of Figure 7c.
#[derive(Debug, Default)]
pub struct MeteredSink {
    bytes: u64,
    blobs: u64,
}

impl MeteredSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs persisted.
    pub fn blobs(&self) -> u64 {
        self.blobs
    }
}

impl DurabilitySink for MeteredSink {
    fn persist(&mut self, bytes: &[u8]) {
        self.bytes += bytes.len() as u64;
        self.blobs += 1;
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// A sink writing blobs to a temporary file with an fsync per blob: the
/// durable checkpoint/log path of §3.4.
#[derive(Debug)]
pub struct FileSink {
    file: std::fs::File,
    bytes: u64,
}

impl FileSink {
    /// Creates a sink backed by a new temporary file in `std::env::temp_dir`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn temp(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "naiad-{label}-{}-{}.log",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("worker")
                .replace('/', "_"),
        ));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("create durability file {}: {e}", path.display()));
        FileSink { file, bytes: 0 }
    }
}

impl DurabilitySink for FileSink {
    fn persist(&mut self, bytes: &[u8]) {
        self.file
            .write_all(bytes)
            .unwrap_or_else(|e| panic!("write checkpoint blob ({} bytes): {e}", bytes.len()));
        self.file
            .sync_data()
            .unwrap_or_else(|e| panic!("fsync checkpoint blob: {e}"));
        self.bytes += bytes.len() as u64;
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_sink_counts() {
        let mut sink = MeteredSink::new();
        sink.persist(&[0; 10]);
        sink.persist(&[0; 5]);
        assert_eq!(sink.bytes_written(), 15);
        assert_eq!(sink.blobs(), 2);
    }

    #[test]
    fn file_sink_persists() {
        let mut sink = FileSink::temp("test");
        sink.persist(b"hello");
        assert_eq!(sink.bytes_written(), 5);
    }

    #[test]
    fn sealed_blobs_roundtrip() {
        let payload = b"state bytes".to_vec();
        let blob = seal_blob(&payload);
        assert_eq!(open_blob(&blob).unwrap(), &payload[..]);
        assert_eq!(open_blob(&seal_blob(&[])).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn open_blob_rejects_corruption() {
        // Not a checkpoint at all.
        assert_eq!(open_blob(b"oops"), Err(RestoreError::BadMagic));
        // Header cut short.
        let blob = seal_blob(b"data");
        assert_eq!(
            open_blob(&blob[..10]),
            Err(RestoreError::Truncated("blob header"))
        );
        // Payload cut short.
        assert_eq!(
            open_blob(&blob[..blob.len() - 1]),
            Err(RestoreError::Truncated("blob payload"))
        );
        // Unsupported version.
        let mut wrong_version = blob.clone();
        wrong_version[4] = 0xFF;
        assert_eq!(
            open_blob(&wrong_version),
            Err(RestoreError::UnsupportedVersion(u16::from_le_bytes([
                0xFF,
                wrong_version[5]
            ])))
        );
        // Flipped payload bit.
        let mut flipped = blob;
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            open_blob(&flipped),
            Err(RestoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn checkpoint_roundtrip_via_the_wire_blanket() {
        let a: std::collections::HashMap<u64, String> =
            [(1, "one".to_string()), (2, "two".to_string())].into();
        let mut buf = Vec::new();
        a.checkpoint(&mut buf);
        let mut b: std::collections::HashMap<u64, String> = Default::default();
        b.restore(&mut &buf[..]);
        assert_eq!(a, b);
    }
}
