//! Fault tolerance: checkpoint and restore (§3.4).
//!
//! Stateful vertices implement [`Checkpoint`]; the runtime drives them
//! through [`DurabilitySink`]s that either meter bytes in memory or write
//! to stable storage. The full checkpoint/logging machinery is layered in
//! the operator library and exercised by the Figure 7c benchmark.

use std::io::Write;

/// State that can be saved to and restored from a byte buffer (§3.4's
/// `Checkpoint`/`Restore` vertex interface).
///
/// Stateful vertices register implementations through
/// [`OperatorInfo::register_state`](crate::dataflow::OperatorInfo::register_state);
/// [`Worker::checkpoint`](crate::runtime::Worker::checkpoint) then
/// produces a consistent snapshot of every registered state, and
/// [`Worker::restore`](crate::runtime::Worker::restore) reloads one into a
/// freshly constructed, structurally identical dataflow.
pub trait Checkpoint {
    /// Appends a full serialization of the state to `buf`.
    fn checkpoint(&self, buf: &mut Vec<u8>);
    /// Reconstructs the state from `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Panics
    ///
    /// Implementations may panic on corrupt input: a damaged checkpoint
    /// cannot be recovered from.
    fn restore(&mut self, input: &mut &[u8]);
}

/// Any `Wire`-encodable value checkpoints wholesale — the "full,
/// potentially more compact, checkpoint" flavour of §3.4. Operators
/// holding state in `Rc<RefCell<...>>` cells therefore register it
/// directly.
impl<T: naiad_wire::Wire> Checkpoint for T {
    fn checkpoint(&self, buf: &mut Vec<u8>) {
        self.encode(buf);
    }
    fn restore(&mut self, input: &mut &[u8]) {
        *self = T::decode(input).expect("corrupt checkpoint blob");
    }
}

/// A destination for checkpoint and log bytes.
pub trait DurabilitySink: Send {
    /// Persists one blob, returning once the configured durability level
    /// is reached.
    fn persist(&mut self, bytes: &[u8]);
    /// Total bytes persisted.
    fn bytes_written(&self) -> u64;
}

/// An in-memory sink that only meters volume — the "no durability"
/// baseline of Figure 7c.
#[derive(Debug, Default)]
pub struct MeteredSink {
    bytes: u64,
    blobs: u64,
}

impl MeteredSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs persisted.
    pub fn blobs(&self) -> u64 {
        self.blobs
    }
}

impl DurabilitySink for MeteredSink {
    fn persist(&mut self, bytes: &[u8]) {
        self.bytes += bytes.len() as u64;
        self.blobs += 1;
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// A sink writing blobs to a temporary file with an fsync per blob: the
/// durable checkpoint/log path of §3.4.
#[derive(Debug)]
pub struct FileSink {
    file: std::fs::File,
    bytes: u64,
}

impl FileSink {
    /// Creates a sink backed by a new temporary file in `std::env::temp_dir`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn temp(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "naiad-{label}-{}-{}.log",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("worker")
                .replace('/', "_"),
        ));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("create durability file");
        FileSink { file, bytes: 0 }
    }
}

impl DurabilitySink for FileSink {
    fn persist(&mut self, bytes: &[u8]) {
        self.file.write_all(bytes).expect("write checkpoint blob");
        self.file.sync_data().expect("fsync checkpoint blob");
        self.bytes += bytes.len() as u64;
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_sink_counts() {
        let mut sink = MeteredSink::new();
        sink.persist(&[0; 10]);
        sink.persist(&[0; 5]);
        assert_eq!(sink.bytes_written(), 15);
        assert_eq!(sink.blobs(), 2);
    }

    #[test]
    fn file_sink_persists() {
        let mut sink = FileSink::temp("test");
        sink.persist(b"hello");
        assert_eq!(sink.bytes_written(), 5);
    }

    #[test]
    fn checkpoint_roundtrip_via_the_wire_blanket() {
        let a: std::collections::HashMap<u64, String> =
            [(1, "one".to_string()), (2, "two".to_string())].into();
        let mut buf = Vec::new();
        a.checkpoint(&mut buf);
        let mut b: std::collections::HashMap<u64, String> = Default::default();
        b.restore(&mut &buf[..]);
        assert_eq!(a, b);
    }
}
