//! Coordinated rollback recovery (§3.4).
//!
//! Naiad's fault-tolerance model is a global rollback: when any process
//! fails, every process reverts to the last durable checkpoint and
//! replays the inputs logged since. This module implements that
//! coordinator over the simulated cluster:
//!
//! * workers deposit sealed checkpoint blobs at epoch boundaries into a
//!   [`Recovery`] store that survives cluster teardown (the stand-in for
//!   stable storage);
//! * input batches are logged as they are fed, so a resumed attempt can
//!   replay exactly the records the lost attempt consumed;
//! * [`execute_resilient`] runs [`execute`](super::execute::execute) in a
//!   loop — when an attempt dies with an injected fault
//!   ([`ExecuteError::ProcessCrashed`], [`ExecuteError::LinkFailed`], or
//!   a declared [`ExecuteError::Stalled`]), it tears the cluster back to
//!   the latest *consistent* checkpoint (one deposited by **every**
//!   worker for the same epoch), absorbs the scheduled crashes and
//!   partitions from the fault plan (a restarted process does not
//!   re-crash, though lossy links stay lossy), and re-runs the worker
//!   closure from the resume epoch.
//!
//! Because operators restore their full state from the checkpoint and
//! epochs are re-fed deterministically from the input log, a recovered
//! run produces output bit-identical to a fault-free run — the property
//! the `checkpoint_restore` integration tests assert at every crash
//! point.

use std::collections::HashMap;
use std::sync::Arc;

use naiad_netsim::FabricMetrics;
use naiad_wire::Wire;

use super::config::Config;
use super::execute::{execute_inner, ExecuteError};
use super::sync::Mutex;
use super::worker::Worker;
use crate::telemetry::TelemetrySnapshot;

/// Tuning for [`execute_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// Total attempts, including the initial run. Once exhausted the
    /// coordinator reports [`ExecuteError::RecoveryFailed`].
    pub max_attempts: usize,
    /// Checkpoint cadence in epochs: with cadence `n`, epochs `n-1`,
    /// `2n-1`, … are checkpoint boundaries
    /// (see [`Recovery::should_checkpoint`]).
    pub checkpoint_every: u64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            max_attempts: 4,
            checkpoint_every: 1,
        }
    }
}

impl RecoveryOptions {
    /// Sets the attempt budget.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts > 0, "at least one attempt");
        self.max_attempts = attempts;
        self
    }

    /// Sets the checkpoint cadence in epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn checkpoint_every(mut self, epochs: u64) -> Self {
        assert!(epochs > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = epochs;
        self
    }
}

/// The durable stores shared across attempts: checkpoints keyed by
/// `(epoch, worker)` and logged input batches keyed by
/// `(epoch, worker, input)`. Re-deposits replace, so a re-run attempt
/// overwrites rather than duplicates — exactly-once by key.
#[derive(Debug, Default)]
struct Stores {
    checkpoints: Mutex<HashMap<u64, HashMap<usize, Vec<u8>>>>,
    inputs: Mutex<HashMap<(u64, usize, usize), Vec<u8>>>,
}

impl Stores {
    /// The newest epoch for which **every** worker deposited a
    /// checkpoint — the only rollback target that is globally consistent.
    fn consistent_epoch(&self, total_workers: usize) -> Option<u64> {
        self.checkpoints
            .lock()
            .iter()
            .filter(|(_, blobs)| blobs.len() == total_workers)
            .map(|(epoch, _)| *epoch)
            .max()
    }
}

/// Per-attempt handle handed to the worker closure of
/// [`execute_resilient`]: exposes the resume point and the durable
/// checkpoint/input-log stores. Cloneable and shareable across worker
/// threads.
#[derive(Debug, Clone)]
pub struct Recovery {
    attempt: usize,
    resume_epoch: u64,
    checkpoint_every: u64,
    stores: Arc<Stores>,
}

impl Recovery {
    /// Which attempt this is (0 = the initial run).
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// The first epoch this attempt must feed. `0` on a fresh run; after
    /// a rollback, one past the restored checkpoint's epoch.
    pub fn resume_epoch(&self) -> u64 {
        self.resume_epoch
    }

    /// Whether `epoch` is a checkpoint boundary under the configured
    /// cadence.
    pub fn should_checkpoint(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.checkpoint_every)
    }

    /// Deposits `worker`'s sealed checkpoint blob for `epoch`. Call at a
    /// quiescent point — after a probe confirms the epoch complete — so
    /// the blob is consistent.
    pub fn deposit_checkpoint(&self, epoch: u64, worker: usize, blob: Vec<u8>) {
        self.stores
            .checkpoints
            .lock()
            .entry(epoch)
            .or_default()
            .insert(worker, blob);
    }

    /// The checkpoint blob this attempt should restore into `worker`, if
    /// the attempt resumes from a rollback. `None` on a fresh run.
    pub fn snapshot(&self, worker: usize) -> Option<Vec<u8>> {
        let epoch = self.resume_epoch.checked_sub(1)?;
        self.stores
            .checkpoints
            .lock()
            .get(&epoch)
            .and_then(|blobs| blobs.get(&worker))
            .cloned()
    }

    /// Logs the batch `worker` feeds into input `input` at `epoch`,
    /// replacing any batch previously logged under the same key.
    pub fn log_input<D: Wire>(&self, epoch: u64, worker: usize, input: usize, records: &Vec<D>) {
        let bytes = naiad_wire::encode_to_vec(records);
        self.stores
            .inputs
            .lock()
            .insert((epoch, worker, input), bytes);
    }

    /// The batch logged under `(epoch, worker, input)`, if any. Resumed
    /// attempts replay from here instead of re-reading the source.
    ///
    /// # Panics
    ///
    /// Panics if the logged bytes do not decode as `Vec<D>` — the log is
    /// in-memory, so corruption here is a type confusion bug, not bit
    /// rot.
    // lint-allow(NS0004): the type-confusion panic is documented above —
    // the log is in-memory, so a decode miss is a bug, not bit rot.
    pub fn logged_input<D: Wire>(&self, epoch: u64, worker: usize, input: usize) -> Option<Vec<D>> {
        self.stores
            .inputs
            .lock()
            .get(&(epoch, worker, input))
            .map(|bytes| {
                naiad_wire::decode_from_slice(bytes).expect("input log decoded at a different type")
            })
    }
}

/// The outcome of a successful (possibly recovered) resilient execution.
#[derive(Debug)]
pub struct ResilientReport<T> {
    /// Per-worker results from the final, successful attempt.
    pub results: Vec<T>,
    /// Attempts consumed, including the initial run.
    pub attempts: usize,
    /// The fault that ended each failed attempt, in order.
    pub recovered_from: Vec<ExecuteError>,
    /// Fabric meters of the final attempt (fault counters included).
    pub metrics: Arc<FabricMetrics>,
    /// The final attempt's telemetry snapshot, when
    /// [`Config::telemetry`](super::config::Config::telemetry) is
    /// enabled.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Runs `worker_fn` with coordinated rollback recovery: on an injected
/// process crash or unrecoverable link failure, tears the cluster down,
/// rolls back to the latest consistent checkpoint, and re-runs.
///
/// The closure receives a [`Recovery`] handle alongside the worker and is
/// responsible for the driver side of the protocol:
///
/// 1. construct the dataflow, then restore
///    [`Recovery::snapshot`]`(worker.index())` if present;
/// 2. feed epochs from [`Recovery::resume_epoch`] onward, replaying
///    [`Recovery::logged_input`] batches where they exist and logging
///    fresh ones where they do not;
/// 3. deposit a checkpoint via [`Recovery::deposit_checkpoint`] whenever
///    [`Recovery::should_checkpoint`] says so and the epoch is complete.
///
/// Scheduled crashes and partitions are absorbed after the first failure
/// ([`FaultPlan::without_schedules`](naiad_netsim::FaultPlan::without_schedules)):
/// the restarted cluster keeps its probabilistic lossy links, but the
/// lost process does not re-crash and the severed link does not re-sever
/// — a fresh fabric resets the per-link attempt counters, so a scheduled
/// window left in place would re-fire on every attempt and recovery could
/// never terminate. This mirrors a failed machine (or flapping switch)
/// replaced by a healthy one.
///
/// Stall declarations ([`ExecuteError::Stalled`]) are recoverable too:
/// a stall is the liveness detector's residual signal (e.g. a partition
/// with heartbeats disabled), and rollback gives the computation a fresh
/// fabric to make progress on.
pub fn execute_resilient<F, T>(
    config: Config,
    options: RecoveryOptions,
    worker_fn: F,
) -> Result<ResilientReport<T>, ExecuteError>
where
    F: Fn(&mut Worker, &Recovery) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert!(options.max_attempts > 0, "at least one attempt");
    assert!(
        options.checkpoint_every > 0,
        "checkpoint cadence must be positive"
    );
    let stores = Arc::new(Stores::default());
    let worker_fn = Arc::new(worker_fn);
    let mut recovered_from = Vec::new();
    let mut config = config;
    for attempt in 0..options.max_attempts {
        let resume_epoch = stores
            .consistent_epoch(config.total_workers())
            .map_or(0, |e| e + 1);
        let recovery = Recovery {
            attempt,
            resume_epoch,
            checkpoint_every: options.checkpoint_every,
            stores: stores.clone(),
        };
        let f = worker_fn.clone();
        let outcome = execute_inner(&config, move |worker| f(worker, &recovery));
        match outcome {
            Ok((results, metrics, telemetry)) => {
                return Ok(ResilientReport {
                    results,
                    attempts: attempt + 1,
                    recovered_from,
                    metrics,
                    telemetry,
                })
            }
            Err(err) => {
                let recoverable = matches!(
                    err,
                    ExecuteError::ProcessCrashed { .. }
                        | ExecuteError::LinkFailed { .. }
                        | ExecuteError::Stalled { .. }
                );
                if !recoverable {
                    // A plain panic is a bug, not an injected fault:
                    // surface it untouched.
                    return Err(err);
                }
                recovered_from.push(err.clone());
                if attempt + 1 == options.max_attempts {
                    return Err(ExecuteError::RecoveryFailed {
                        attempts: options.max_attempts,
                        last: Box::new(err),
                    });
                }
                // Absorb scheduled crashes and partitions: the
                // replacement process/link is healthy, and the fresh
                // fabric's reset attempt counters would otherwise re-fire
                // the same schedule forever. Probabilistic losses stay in
                // force.
                config.faults = config.faults.map(|plan| plan.without_schedules());
            }
        }
    }
    unreachable!("the loop returns on every path")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_epoch_requires_every_worker() {
        let stores = Stores::default();
        assert_eq!(stores.consistent_epoch(2), None);
        stores.checkpoints.lock().entry(0).or_default().insert(0, vec![1]);
        assert_eq!(stores.consistent_epoch(2), None, "worker 1 missing");
        stores.checkpoints.lock().entry(0).or_default().insert(1, vec![2]);
        assert_eq!(stores.consistent_epoch(2), Some(0));
        // A newer but partial epoch does not advance the rollback target.
        stores.checkpoints.lock().entry(3).or_default().insert(0, vec![3]);
        assert_eq!(stores.consistent_epoch(2), Some(0));
        stores.checkpoints.lock().entry(3).or_default().insert(1, vec![4]);
        assert_eq!(stores.consistent_epoch(2), Some(3));
    }

    #[test]
    fn recovery_handle_roundtrips_logs_and_snapshots() {
        let stores = Arc::new(Stores::default());
        let fresh = Recovery {
            attempt: 0,
            resume_epoch: 0,
            checkpoint_every: 2,
            stores: stores.clone(),
        };
        assert_eq!(fresh.snapshot(0), None, "fresh runs restore nothing");
        assert!(!fresh.should_checkpoint(0));
        assert!(fresh.should_checkpoint(1));
        assert!(fresh.should_checkpoint(3));
        fresh.deposit_checkpoint(1, 0, vec![9, 9]);
        fresh.log_input(2, 0, 0, &vec![5u64, 6]);

        let resumed = Recovery {
            attempt: 1,
            resume_epoch: 2,
            checkpoint_every: 2,
            stores,
        };
        assert_eq!(resumed.snapshot(0), Some(vec![9, 9]));
        assert_eq!(resumed.snapshot(1), None);
        assert_eq!(resumed.logged_input::<u64>(2, 0, 0), Some(vec![5, 6]));
        assert_eq!(resumed.logged_input::<u64>(3, 0, 0), None);
    }

    #[test]
    fn options_validate() {
        let o = RecoveryOptions::default().max_attempts(2).checkpoint_every(3);
        assert_eq!((o.max_attempts, o.checkpoint_every), (2, 3));
    }
}
