//! Intra-process ring queues for the data plane.
//!
//! `std::sync::mpsc` allocates a fresh node for every send; on the
//! exchange hot path that is one heap allocation per batch per hop,
//! which the allocation-regression harness (`tests/alloc_budget.rs`)
//! forbids. These queues are a `VecDeque` behind a mutex plus a condvar:
//! the deque's ring storage is *retained* across pops, so a warmed-up
//! queue moves batches with zero allocations (DESIGN.md §16).
//!
//! The API mirrors the slice of `mpsc` the runtime used — `send`,
//! `try_recv`, `recv`, `recv_timeout` — with `Option` results instead of
//! disconnect errors: queue lifetime is governed by the worker shutdown
//! protocol (liveness watchdog + epoch fences), not by sender drops, so
//! a disconnect signal would have no consumer.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use super::sync::{Condvar, Mutex};

struct Ring<T> {
    deque: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// The sending handle of a ring queue; clone freely.
pub(crate) struct RingSender<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Clone for RingSender<T> {
    fn clone(&self) -> Self {
        RingSender {
            ring: self.ring.clone(),
        }
    }
}

impl<T> RingSender<T> {
    /// Enqueues `value`. Never blocks and never fails; backpressure is the
    /// credit layer's job (`runtime::flow`), not the queue's.
    pub(crate) fn send(&self, value: T) {
        self.ring.deque.lock().push_back(value);
        self.ring.ready.notify_one();
    }
}

/// The receiving handle of a ring queue.
pub(crate) struct RingReceiver<T> {
    ring: Arc<Ring<T>>,
}

impl<T> RingReceiver<T> {
    /// Dequeues the next value if one is ready.
    pub(crate) fn try_recv(&self) -> Option<T> {
        self.ring.deque.lock().pop_front()
    }

    /// Blocks until a value arrives.
    #[cfg(test)]
    pub(crate) fn recv(&self) -> T {
        let mut guard = self.ring.deque.lock();
        loop {
            if let Some(v) = guard.pop_front() {
                return v;
            }
            guard = self.ring.ready.wait(guard);
        }
    }

    /// Blocks up to `timeout` for a value.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.ring.deque.lock();
        loop {
            if let Some(v) = guard.pop_front() {
                return Some(v);
            }
            let now = std::time::Instant::now();
            let remaining = deadline.checked_duration_since(now)?;
            let (g, timed_out) = self.ring.ready.wait_timeout(guard, remaining);
            guard = g;
            if timed_out && guard.is_empty() {
                return None;
            }
        }
    }
}

/// Creates a connected sender/receiver pair.
pub(crate) fn ring<T>() -> (RingSender<T>, RingReceiver<T>) {
    let ring = Arc::new(Ring {
        deque: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    (
        RingSender { ring: ring.clone() },
        RingReceiver { ring },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_try_recv() {
        let (tx, rx) = ring::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), 2);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (_tx, rx) = ring::<u32>();
        let start = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), None);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = ring::<u32>();
        let t = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(5));
        tx.send(9);
        assert_eq!(t.join().unwrap(), Some(9));
    }

    #[test]
    fn steady_state_sends_reuse_ring_storage() {
        let (tx, rx) = ring::<u64>();
        // Warm up to some capacity, then cycle: the deque never grows.
        for i in 0..64 {
            tx.send(i);
        }
        for _ in 0..64 {
            rx.try_recv().unwrap();
        }
        let cap_probe = |r: &RingReceiver<u64>| r.ring.deque.lock().capacity();
        let warmed = cap_probe(&rx);
        for round in 0..1000u64 {
            tx.send(round);
            rx.try_recv().unwrap();
        }
        assert_eq!(cap_probe(&rx), warmed, "steady state must not reallocate");
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::runtime::interleave::explore;

    /// FIFO order and wakeup across every schedule: a sender pushing two
    /// values and a receiver taking two must always hand over `[1, 2]`,
    /// whether the receiver races ahead (and parks) or trails the
    /// sender. Exercises the full model condvar protocol — park, notify,
    /// mutex re-acquire — under the explorer.
    #[test]
    fn loom_ring_fifo_and_wakeup() {
        explore(|| {
            let (tx, rx) = ring::<u32>();
            vec![
                Box::new(move || {
                    tx.send(1);
                    tx.send(2);
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    let first = rx.recv_timeout(Duration::from_secs(5));
                    let second = rx.recv_timeout(Duration::from_secs(5));
                    assert_eq!(
                        (first, second),
                        (Some(1), Some(2)),
                        "ring must be FIFO and lossless in every schedule"
                    );
                }) as Box<dyn FnOnce() + Send>,
            ]
        });
    }
}
