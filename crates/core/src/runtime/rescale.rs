//! Elastic rescaling: live worker add/remove with epoch-boundary state
//! migration.
//!
//! Naiad's recovery machinery (§3.4, [`recovery`](super::recovery))
//! treats the worker set as fixed; this module generalizes it to
//! *membership change*. The Falkirk Wheel's observation — rollback
//! recovery is selective replay in logical time — means the same
//! checkpoint/replay primitives that survive a crash can also carry a
//! computation across a worker-count change, provided operator state is
//! re-partitioned along its exchange contract (TimelyDataflow's
//! megaphone-style partition re-routing is the exemplar shape).
//!
//! [`execute_elastic`] drives the protocol. A run is a sequence of
//! *phases*, one per membership; each phase is a full cluster bring-up of
//! the requested worker set over the shared fabric. At each planned
//! [`RescaleStep`] the coordinator executes five steps at a closed-epoch
//! *fence*:
//!
//! 1. **Quiesce** — the old membership drains every epoch below the fence;
//!    the progress cores' frontier barrier
//!    ([`PointstampTable::closed_through`](crate::progress::PointstampTable::closed_through))
//!    certifies no pointstamp at or below `fence − 1` is active.
//! 2. **Snapshot** — every old worker shards its keyed state into one
//!    sealed blob per *new* worker
//!    ([`Worker::checkpoint_partitioned`](super::worker::Worker::checkpoint_partitioned)),
//!    reusing the magic/version/checksum blob format, and deposits the
//!    shards with the coordinator. A plain whole-state blob is deposited
//!    too, so an aborted rescale can fall back to the old membership.
//! 3. **Re-route** — the coordinator reassembles shards by new owner:
//!    new worker `p` receives shard `p` from every old worker, exactly
//!    re-routing exchange partition ownership (`hash % workers`) to the
//!    new set — grow and shrink are the same operation.
//! 4. **Replay** — the new membership restores the shard bundles
//!    ([`Worker::restore_shards`](super::worker::Worker::restore_shards))
//!    and resumes feeding at the fence, replaying logged input
//!    Falkirk-Wheel-style where the log has it.
//! 5. **Re-register** — the new phase's cluster bring-up re-registers the
//!    heartbeat/liveness plane for the new membership, with
//!    [`Config::membership_generation`] bumped so stale or duplicated
//!    control-plane messages from the old generation are discarded.
//!
//! Failures during the migration window roll back cleanly: a phase that
//! dies retries under its recovery budget (scheduled chaos faults are
//! absorbed exactly as in [`execute_resilient`](super::recovery)); a
//! post-migration phase that exhausts the budget *rolls back to the
//! pre-rescale membership* (the old store is still consistent at the
//! fence) unless rollback is disabled, in which case the run dies with a
//! typed [`ExecuteError::RescaleFailed`] carrying the migration-phase
//! dump — never a hang.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use naiad_netsim::FabricMetrics;
use naiad_wire::Wire;

use super::config::Config;
use super::execute::{execute_inner, ExecuteError};
use super::recovery::RecoveryOptions;
use super::sync::Mutex;
use super::worker::Worker;
use crate::telemetry::{TelemetryEvent, TelemetrySnapshot};

/// A typed reason an elastic rescale could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescaleError {
    /// An operator registered opaque (non-keyed) state; it has no
    /// partitioning the coordinator could re-route, so the rescale
    /// aborts before touching membership.
    UnmigratableState {
        /// Index of the dataflow holding the state.
        dataflow: usize,
        /// Stage id of the registering operator.
        stage: usize,
    },
    /// Not every pre-rescale worker deposited its migration shards by the
    /// time its phase completed (a worker lost between its final epoch
    /// and its fence checkpoint).
    IncompleteMigration {
        /// Workers that deposited shards.
        deposited: usize,
        /// Workers that were expected to.
        expected: usize,
    },
}

impl std::fmt::Display for RescaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RescaleError::UnmigratableState { dataflow, stage } => write!(
                f,
                "dataflow {dataflow} stage {stage} registered opaque state; \
                 only keyed state (register_keyed_state) can migrate across a rescale"
            ),
            RescaleError::IncompleteMigration {
                deposited,
                expected,
            } => write!(
                f,
                "only {deposited} of {expected} workers deposited migration shards"
            ),
        }
    }
}

impl std::error::Error for RescaleError {}

/// One planned membership change: at the closed-epoch fence `at_epoch`,
/// move the cluster to `processes × workers_per_process` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescaleStep {
    /// The fence: the first epoch the new membership computes. Every
    /// epoch below it is drained by the old membership before state
    /// moves.
    pub at_epoch: u64,
    /// Process count after the step.
    pub processes: usize,
    /// Workers per process after the step.
    pub workers_per_process: usize,
}

impl RescaleStep {
    /// A step to `processes × workers_per_process` workers fenced at
    /// `at_epoch`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or the fence is epoch 0 (there
    /// would be no closed epoch to migrate at).
    pub fn new(at_epoch: u64, processes: usize, workers_per_process: usize) -> Self {
        assert!(processes > 0, "at least one process");
        assert!(workers_per_process > 0, "at least one worker per process");
        assert!(at_epoch > 0, "a rescale fence needs a closed epoch before it");
        RescaleStep {
            at_epoch,
            processes,
            workers_per_process,
        }
    }

    /// Total workers after the step.
    pub fn workers(&self) -> usize {
        self.processes * self.workers_per_process
    }
}

/// A full elastic run: the initial membership (and shared knobs) plus the
/// planned membership changes and the total epoch count.
#[derive(Debug, Clone)]
pub struct ElasticPlan {
    config: Config,
    steps: Vec<RescaleStep>,
    total_epochs: u64,
}

impl ElasticPlan {
    /// A plan running `total_epochs` epochs on `config`'s membership with
    /// no rescales; add them with [`ElasticPlan::rescale`].
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs` is zero.
    pub fn new(config: Config, total_epochs: u64) -> Self {
        assert!(total_epochs > 0, "at least one epoch");
        ElasticPlan {
            config,
            steps: Vec::new(),
            total_epochs,
        }
    }

    /// Appends a membership change.
    ///
    /// # Panics
    ///
    /// Panics if the fence is not strictly after the previous step's
    /// fence, or not strictly below the total epoch count (a fence at the
    /// end would have nothing left to compute).
    pub fn rescale(mut self, step: RescaleStep) -> Self {
        if let Some(prev) = self.steps.last() {
            assert!(
                step.at_epoch > prev.at_epoch,
                "rescale fences must be strictly increasing"
            );
        }
        assert!(
            step.at_epoch < self.total_epochs,
            "rescale fence {} is not before the final epoch {}",
            step.at_epoch,
            self.total_epochs
        );
        self.steps.push(step);
        self
    }

    /// The initial configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The planned membership changes, in fence order.
    pub fn steps(&self) -> &[RescaleStep] {
        &self.steps
    }

    /// Total epochs the run computes.
    pub fn total_epochs(&self) -> u64 {
        self.total_epochs
    }
}

/// Tuning for [`execute_elastic`].
#[derive(Debug, Clone, Copy)]
pub struct ElasticOptions {
    /// Per-phase fault-recovery budget and checkpoint cadence, exactly as
    /// in [`execute_resilient`](super::recovery::execute_resilient).
    pub recovery: RecoveryOptions,
    /// Deadline for the migration window (the first phase after a fence:
    /// shard restore plus fence-epoch replay). Installed as the phase's
    /// stall timeout, so an overrunning migration surfaces as a
    /// structured stall → [`ExecuteError::RescaleFailed`] with the
    /// migration-phase dump, never a hang. `None` keeps the base
    /// config's watchdog.
    pub migration_deadline: Option<Duration>,
    /// Whether a failed rescale (unmigratable state, incomplete shards,
    /// or a post-migration phase that exhausts its recovery budget) rolls
    /// back to the pre-rescale membership and continues. When `false`,
    /// the run dies with [`ExecuteError::RescaleFailed`] instead.
    pub rollback_on_abort: bool,
    /// Whether every phase builds graphs with the `NA0006` rescale-safe
    /// certification ([`Config::certify_rescale`]), denying graphs whose
    /// state cannot be re-partitioned at build time instead of aborting
    /// mid-rescale. On by default; disable to exercise the runtime
    /// [`RescaleError::UnmigratableState`] defense in depth.
    pub certify: bool,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions {
            recovery: RecoveryOptions::default(),
            migration_deadline: None,
            rollback_on_abort: true,
            certify: true,
        }
    }
}

impl ElasticOptions {
    /// Sets the per-phase recovery options.
    pub fn recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the migration-window deadline.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is zero.
    pub fn migration_deadline(mut self, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "migration deadline must be positive");
        self.migration_deadline = Some(deadline);
        self
    }

    /// Enables or disables rollback to the pre-rescale membership when a
    /// rescale cannot complete.
    pub fn rollback_on_abort(mut self, enabled: bool) -> Self {
        self.rollback_on_abort = enabled;
        self
    }

    /// Enables or disables the build-time `NA0006` rescale-safe
    /// certification for every phase.
    pub fn certify(mut self, enabled: bool) -> Self {
        self.certify = enabled;
        self
    }
}

/// What a worker restores at phase start: a plain whole-state blob (same
/// membership, ordinary rollback) or a bundle of migration shards, one
/// per pre-rescale worker (first phase after a fence).
#[derive(Debug, Clone)]
enum Deposit {
    Plain(Vec<u8>),
    Migrated(Vec<Vec<u8>>),
}

/// Per-phase durable stores, the membership-aware analogue of the
/// recovery module's: checkpoints keyed by `(epoch, worker)` with
/// replace-on-redeposit semantics. Each membership gets a fresh store,
/// seeded at the fence's predecessor with the migrated shard bundles; the
/// old store is kept until the new membership completes a phase, so an
/// aborted rescale can roll back to it.
#[derive(Debug, Default)]
struct PhaseStores {
    checkpoints: Mutex<HashMap<u64, HashMap<usize, Deposit>>>,
}

impl PhaseStores {
    /// The newest epoch for which **every** worker of this membership
    /// deposited — the only globally consistent rollback target.
    fn consistent_epoch(&self, total_workers: usize) -> Option<u64> {
        self.checkpoints
            .lock()
            .iter()
            .filter(|(_, blobs)| blobs.len() == total_workers)
            .map(|(epoch, _)| *epoch)
            .max()
    }

    fn deposit(&self, epoch: u64, worker: usize, deposit: Deposit) {
        self.checkpoints
            .lock()
            .entry(epoch)
            .or_default()
            .insert(worker, deposit);
    }

    fn get(&self, epoch: u64, worker: usize) -> Option<Deposit> {
        self.checkpoints
            .lock()
            .get(&epoch)
            .and_then(|blobs| blobs.get(&worker))
            .cloned()
    }
}

/// The rendezvous for one membership change: pre-rescale workers deposit
/// their shard vectors (indexed by new worker) here; the coordinator
/// reassembles them by new owner once the old phase completes. Deposits
/// replace by source worker, so a retried attempt re-depositing the same
/// deterministic shards is idempotent.
#[derive(Debug, Default)]
struct MigrationSlot {
    shards: Mutex<HashMap<usize, Vec<Vec<u8>>>>,
    error: Mutex<Option<RescaleError>>,
}

impl MigrationSlot {
    fn deposit(&self, source: usize, shards: Vec<Vec<u8>>) {
        self.shards.lock().insert(source, shards);
    }

    fn set_error(&self, error: RescaleError) {
        self.error.lock().get_or_insert(error);
    }

    /// Reassembles per-new-worker bundles: bundle `p` is shard `p` from
    /// every source worker in worker-index order.
    fn assemble(
        &self,
        from_workers: usize,
        to_workers: usize,
    ) -> Result<Vec<Vec<Vec<u8>>>, RescaleError> {
        if let Some(error) = self.error.lock().clone() {
            return Err(error);
        }
        let shards = self.shards.lock();
        if shards.len() != from_workers {
            return Err(RescaleError::IncompleteMigration {
                deposited: shards.len(),
                expected: from_workers,
            });
        }
        let mut sources: Vec<usize> = shards.keys().copied().collect();
        sources.sort_unstable();
        let mut bundles = vec![Vec::with_capacity(from_workers); to_workers];
        for source in sources {
            // lint-allow(NS0004): `sources` is literally `shards.keys()`,
            // collected two statements up.
            let per_new = &shards[&source];
            debug_assert_eq!(per_new.len(), to_workers);
            for (bundle, shard) in bundles.iter_mut().zip(per_new) {
                bundle.push(shard.clone());
            }
        }
        Ok(bundles)
    }
}

/// Details of the membership change a phase is the *first* phase after,
/// used for telemetry attribution and failure reporting.
#[derive(Debug, Clone, Copy)]
struct MigrationInfo {
    fence: u64,
    from_workers: usize,
    to_workers: usize,
    /// Wall-clock milliseconds the computation was fenced before this
    /// phase's cluster came up (coordinator-measured stall attribution).
    stall_ms: u64,
}

/// The durable input log, shared across every phase and attempt: encoded
/// record batches keyed by `(epoch, worker, port)`, written by
/// [`ElasticSession::log_input`] and replayed by
/// [`ElasticSession::logged_input`]. A rollback purges entries at or past
/// the fence, since the restored membership re-feeds them itself.
type InputLog = Arc<Mutex<HashMap<(u64, usize, usize), Vec<u8>>>>;

/// Per-phase handle handed to the worker closure of [`execute_elastic`]:
/// the elastic analogue of [`Recovery`](super::recovery::Recovery). The
/// driver contract is the same — construct the dataflow, call
/// [`ElasticSession::restore_into`], feed epochs `resume_epoch()` to
/// `stop_epoch()` replaying [`ElasticSession::logged_input`] where it
/// exists, and call [`ElasticSession::checkpoint`] where
/// [`ElasticSession::should_checkpoint`] says so.
#[derive(Clone)]
pub struct ElasticSession {
    attempt: usize,
    generation: u64,
    resume_epoch: u64,
    stop_epoch: u64,
    checkpoint_every: u64,
    stores: Arc<PhaseStores>,
    inputs: InputLog,
    /// `Some` when this phase ends at a rescale fence: the target worker
    /// count and the shard rendezvous.
    outgoing: Option<(usize, Arc<MigrationSlot>)>,
    /// `Some` when this phase is the first after a fence.
    incoming: Option<MigrationInfo>,
}

impl ElasticSession {
    /// Which attempt of the current phase this is (0 = first).
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// The membership generation (0 before any rescale).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The first epoch this attempt must feed.
    pub fn resume_epoch(&self) -> u64 {
        self.resume_epoch
    }

    /// One past the last epoch this phase feeds (the next fence, or the
    /// plan's total).
    pub fn stop_epoch(&self) -> u64 {
        self.stop_epoch
    }

    /// Whether `epoch` is a checkpoint boundary: the configured cadence,
    /// plus — always — the phase's final epoch, which funds both the next
    /// membership's migration shards and the rollback blob.
    pub fn should_checkpoint(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.checkpoint_every) || epoch + 1 == self.stop_epoch
    }

    /// Deposits `worker`'s state for `epoch`: always the plain sealed
    /// blob (in-phase rollback and rescale-abort fallback); additionally,
    /// at the fence's predecessor, the per-new-worker migration shards.
    ///
    /// Call after a probe confirms the epoch complete. At the fence's
    /// predecessor this additionally *quiesces* (protocol step 1): a
    /// probe only certifies drainage upstream of its point, so the
    /// worker steps until the progress cores' frontier barrier holds —
    /// no pointstamp at or below the epoch active at any location —
    /// before sharding state.
    pub fn checkpoint(&self, worker: &mut Worker, epoch: u64) {
        if let Some((to_workers, slot)) = &self.outgoing {
            if epoch + 1 == self.stop_epoch {
                worker.step_until_closed_through(epoch);
                match worker.checkpoint_partitioned(*to_workers) {
                    Ok(shards) => slot.deposit(worker.index(), shards),
                    Err(error) => slot.set_error(error),
                }
            }
        }
        self.stores
            .deposit(epoch, worker.index(), Deposit::Plain(worker.checkpoint()));
    }

    /// Restores whatever the store holds for this worker at the resume
    /// point: nothing on a fresh start, the plain blob after an in-phase
    /// rollback, or the migration shard bundle on the first phase after a
    /// fence (recording the RescaleStarted/PartitionMigrated/
    /// RescaleCompleted telemetry as it goes).
    ///
    /// # Panics
    ///
    /// Panics if the deposited bytes fail validation — the stores are
    /// in-memory, so corruption here is a coordinator bug. Migration
    /// tests exercising corrupt-blob rejection use the typed
    /// [`Worker::restore_shards`] path directly.
    pub fn restore_into(&self, worker: &mut Worker) {
        let Some(epoch) = self.resume_epoch.checked_sub(1) else {
            return;
        };
        match self.stores.get(epoch, worker.index()) {
            None => {}
            Some(Deposit::Plain(blob)) => worker.restore(&blob),
            Some(Deposit::Migrated(shards)) => {
                // lint-allow(NS0004): migrated deposits are written only
                // by `assemble`, which runs at a fence; post-fence seeders
                // always carry the incoming-rescale info.
                let info = self
                    .incoming
                    .expect("migrated deposits only seed post-fence phases");
                worker.record(TelemetryEvent::RescaleStarted {
                    epoch: info.fence,
                    from_workers: info.from_workers as u32,
                    to_workers: info.to_workers as u32,
                });
                if let Err(error) = worker.restore_shards(&shards) {
                    panic!("migration shard restore failed: {error}");
                }
                worker.record(TelemetryEvent::RescaleCompleted {
                    epoch: info.fence,
                    workers: info.to_workers as u32,
                    stalled_ms: info.stall_ms,
                });
            }
        }
    }

    /// Logs the batch `worker` feeds into `input` at `epoch`, replacing
    /// any batch under the same key (exactly-once by key across
    /// attempts).
    pub fn log_input<D: Wire>(&self, epoch: u64, worker: usize, input: usize, records: &Vec<D>) {
        let bytes = naiad_wire::encode_to_vec(records);
        self.inputs.lock().insert((epoch, worker, input), bytes);
    }

    /// The batch logged under `(epoch, worker, input)`, if any — the
    /// Falkirk-Wheel replay source for retried attempts.
    ///
    /// # Panics
    ///
    /// Panics if the logged bytes do not decode as `Vec<D>` (type
    /// confusion, not bit rot: the log is in-memory).
    // lint-allow(NS0004): the type-confusion panic is documented above —
    // the log is in-memory, so a decode miss is a bug, not bit rot.
    pub fn logged_input<D: Wire>(&self, epoch: u64, worker: usize, input: usize) -> Option<Vec<D>> {
        self.inputs.lock().get(&(epoch, worker, input)).map(|bytes| {
            naiad_wire::decode_from_slice(bytes).expect("input log decoded at a different type")
        })
    }
}

/// How one planned membership change ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RescaleOutcome {
    /// State migrated and the new membership completed at least one
    /// phase.
    Completed {
        /// The fence epoch.
        fence: u64,
        /// Worker count before.
        from_workers: usize,
        /// Worker count after.
        to_workers: usize,
        /// Coordinator-measured milliseconds the run was fenced.
        stall_ms: u64,
    },
    /// The rescale aborted before membership changed (typed reason), and
    /// the old membership continued from the fence.
    Aborted {
        /// The fence epoch.
        fence: u64,
        /// Why the rescale could not proceed.
        error: RescaleError,
    },
    /// Membership changed but the new phase exhausted its recovery
    /// budget; the run rolled back to the pre-rescale membership and
    /// continued from the fence.
    RolledBack {
        /// The fence epoch.
        fence: u64,
        /// Worker count the rescale was moving to.
        to_workers: usize,
        /// The error that ended the new membership's final attempt.
        cause: ExecuteError,
    },
}

/// One membership phase of an elastic run.
#[derive(Debug)]
pub struct PhaseReport<T> {
    /// Membership generation (0 before any rescale).
    pub generation: u64,
    /// Total workers in this phase.
    pub workers: usize,
    /// First epoch the phase owned.
    pub start_epoch: u64,
    /// One past the last epoch the phase owned.
    pub stop_epoch: u64,
    /// Attempts consumed, including the first.
    pub attempts: usize,
    /// The fault that ended each failed attempt, in order.
    pub recovered_from: Vec<ExecuteError>,
    /// Per-worker results of the successful attempt.
    pub results: Vec<T>,
}

/// The outcome of a successful elastic execution.
#[derive(Debug)]
pub struct ElasticReport<T> {
    /// Every membership phase, in order (rolled-back phases included).
    pub phases: Vec<PhaseReport<T>>,
    /// How each planned rescale ended, in fence order.
    pub outcomes: Vec<RescaleOutcome>,
    /// Fabric meters of the final phase.
    pub metrics: Arc<FabricMetrics>,
    /// The final phase's telemetry snapshot, when
    /// [`Config::telemetry`](super::config::Config::telemetry) is on.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl<T> ElasticReport<T> {
    /// Flattens every phase's per-worker results, in phase order.
    pub fn into_results(self) -> Vec<T> {
        self.phases
            .into_iter()
            .flat_map(|phase| phase.results)
            .collect()
    }
}

/// Runs `worker_fn` across every membership phase of `plan`, migrating
/// keyed operator state at each fence — see the module docs for the
/// protocol. The closure drives exactly like
/// [`execute_resilient`](super::recovery::execute_resilient)'s, against
/// an [`ElasticSession`] instead of a `Recovery`.
///
/// Returns [`ElasticReport`] on success — including rescales that aborted
/// or rolled back cleanly (inspect
/// [`outcomes`](ElasticReport::outcomes)). Fails with
/// [`ExecuteError::RescaleFailed`] when a rescale cannot complete and
/// rollback is disabled, or [`ExecuteError::RecoveryFailed`] when a
/// phase exhausts its budget outside any migration window.
pub fn execute_elastic<F, T>(
    plan: ElasticPlan,
    options: ElasticOptions,
    worker_fn: F,
) -> Result<ElasticReport<T>, ExecuteError>
where
    F: Fn(&mut Worker, &ElasticSession) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert!(options.recovery.max_attempts > 0, "at least one attempt");
    assert!(
        options.recovery.checkpoint_every > 0,
        "checkpoint cadence must be positive"
    );
    let worker_fn = Arc::new(worker_fn);
    let inputs: InputLog = Arc::default();

    let ElasticPlan {
        mut config,
        steps,
        total_epochs,
    } = plan;
    let mut stores = Arc::new(PhaseStores::default());
    // Kept while a rescale is provisional: the pre-rescale membership and
    // its store, the rollback target until the new membership proves
    // itself by completing a phase.
    let mut prev: Option<(Config, Arc<PhaseStores>)> = None;
    let mut incoming: Option<MigrationInfo> = None;

    let mut phases: Vec<PhaseReport<T>> = Vec::new();
    let mut outcomes: Vec<RescaleOutcome> = Vec::new();
    let mut start_epoch = 0u64;
    let mut step_index = 0usize;
    let mut generation = config.membership_generation;

    loop {
        let next_step = steps.get(step_index).copied();
        let stop_epoch = next_step.map_or(total_epochs, |s| s.at_epoch);
        let outgoing = next_step.map(|s| (s.workers(), Arc::new(MigrationSlot::default())));

        // The migration deadline tightens the stall watchdog over the
        // migration window (the first phase after a fence).
        let mut phase_config = config.clone();
        phase_config.certify_rescale = options.certify;
        if incoming.is_some() {
            if let Some(deadline) = options.migration_deadline {
                phase_config.stall_timeout = Some(deadline);
            }
        }

        let mut recovered_from: Vec<ExecuteError> = Vec::new();
        let phase_outcome = loop {
            let attempt = recovered_from.len();
            let resume_epoch = stores
                .consistent_epoch(phase_config.total_workers())
                .map_or(0, |e| e + 1)
                .max(start_epoch);
            let session = ElasticSession {
                attempt,
                generation,
                resume_epoch,
                stop_epoch,
                checkpoint_every: options.recovery.checkpoint_every,
                stores: stores.clone(),
                inputs: inputs.clone(),
                outgoing: outgoing.clone(),
                incoming,
            };
            let f = worker_fn.clone();
            match execute_inner(&phase_config, move |worker| f(worker, &session)) {
                Ok(output) => break Ok(output),
                Err(err) => {
                    let recoverable = matches!(
                        err,
                        ExecuteError::ProcessCrashed { .. }
                            | ExecuteError::LinkFailed { .. }
                            | ExecuteError::Stalled { .. }
                    );
                    if !recoverable {
                        return Err(err);
                    }
                    recovered_from.push(err);
                    if recovered_from.len() >= options.recovery.max_attempts {
                        break Err(());
                    }
                    // Absorb scheduled crashes/partitions exactly as the
                    // recovery coordinator does: the replacement
                    // process/link is healthy; probabilistic losses stay.
                    phase_config.faults = phase_config.faults.map(|p| p.without_schedules());
                    config.faults = config.faults.map(|p| p.without_schedules());
                }
            }
        };

        match phase_outcome {
            Err(()) => {
                // lint-allow(NS0004): Err(()) is only returned after at
                // least one failed attempt was pushed.
                let last = recovered_from.last().cloned().expect("budget consumed");
                let Some(info) = incoming else {
                    // No rescale in flight: plain recovery exhaustion.
                    return Err(ExecuteError::RecoveryFailed {
                        attempts: options.recovery.max_attempts,
                        last: Box::new(last),
                    });
                };
                // lint-allow(NS0004): `prev` is stocked at every fence
                // and only consumed here, on the first post-fence failure.
                let (old_config, old_stores) =
                    prev.take().expect("a post-fence phase keeps its rollback target");
                if !options.rollback_on_abort {
                    return Err(ExecuteError::RescaleFailed {
                        epoch: info.fence,
                        from_workers: info.from_workers,
                        to_workers: info.to_workers,
                        dump: format!(
                            "phase=resume attempts={}: {last}",
                            options.recovery.max_attempts
                        ),
                    });
                }
                outcomes.push(RescaleOutcome::RolledBack {
                    fence: info.fence,
                    to_workers: info.to_workers,
                    cause: last,
                });
                // Inputs logged by the abandoned membership were sharded
                // for its worker set; purge so the old membership re-reads
                // the source from the fence.
                inputs.lock().retain(|(epoch, _, _), _| *epoch < info.fence);
                config = old_config;
                stores = old_stores;
                incoming = None;
                start_epoch = info.fence;
                generation += 1;
                config.membership_generation = generation;
                continue;
            }
            Ok((results, metrics, telemetry)) => {
                phases.push(PhaseReport {
                    generation,
                    workers: phase_config.total_workers(),
                    start_epoch,
                    stop_epoch,
                    attempts: recovered_from.len() + 1,
                    recovered_from,
                    results,
                });
                if let Some(info) = incoming.take() {
                    // The new membership survived a full phase: the
                    // rescale is committed and the rollback target drops.
                    prev = None;
                    outcomes.push(RescaleOutcome::Completed {
                        fence: info.fence,
                        from_workers: info.from_workers,
                        to_workers: info.to_workers,
                        stall_ms: info.stall_ms,
                    });
                }
                let Some(step) = next_step else {
                    return Ok(ElasticReport {
                        phases,
                        outcomes,
                        metrics,
                        telemetry,
                    });
                };
                step_index += 1;
                let fence_started = Instant::now();
                let from_workers = config.total_workers();
                let to_workers = step.workers();
                // lint-allow(NS0004): phases that end at a fence install
                // their outgoing slot before running (loop invariant).
                let (_, slot) = outgoing.expect("phase ending at a fence has a slot");
                match slot.assemble(from_workers, to_workers) {
                    Err(error) => {
                        if !options.rollback_on_abort {
                            return Err(ExecuteError::RescaleFailed {
                                epoch: step.at_epoch,
                                from_workers,
                                to_workers,
                                dump: format!("phase=snapshot: {error}"),
                            });
                        }
                        // Abort without changing membership: the old
                        // store is consistent at the fence's predecessor,
                        // so the old membership continues at the fence.
                        outcomes.push(RescaleOutcome::Aborted {
                            fence: step.at_epoch,
                            error,
                        });
                        start_epoch = step.at_epoch;
                        continue;
                    }
                    Ok(bundles) => {
                        let new_stores = Arc::new(PhaseStores::default());
                        for (worker, bundle) in bundles.into_iter().enumerate() {
                            new_stores.deposit(
                                step.at_epoch - 1,
                                worker,
                                Deposit::Migrated(bundle),
                            );
                        }
                        prev = Some((config.clone(), stores.clone()));
                        generation += 1;
                        config.processes = step.processes;
                        config.workers_per_process = step.workers_per_process;
                        config.membership_generation = generation;
                        stores = new_stores;
                        start_epoch = step.at_epoch;
                        incoming = Some(MigrationInfo {
                            fence: step.at_epoch,
                            from_workers,
                            to_workers,
                            stall_ms: fence_started.elapsed().as_millis() as u64,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_slot_assembles_by_new_owner() {
        let slot = MigrationSlot::default();
        // Two old workers, three new: each old worker deposits three
        // shards; bundle p must hold shard p from both, source-ordered.
        slot.deposit(1, vec![vec![10], vec![11], vec![12]]);
        slot.deposit(0, vec![vec![0], vec![1], vec![2]]);
        let bundles = slot.assemble(2, 3).unwrap();
        assert_eq!(
            bundles,
            vec![
                vec![vec![0], vec![10]],
                vec![vec![1], vec![11]],
                vec![vec![2], vec![12]],
            ]
        );
    }

    #[test]
    fn migration_slot_reports_missing_sources_and_sticky_errors() {
        let slot = MigrationSlot::default();
        slot.deposit(0, vec![vec![1]]);
        assert_eq!(
            slot.assemble(2, 1),
            Err(RescaleError::IncompleteMigration {
                deposited: 1,
                expected: 2
            })
        );
        slot.set_error(RescaleError::UnmigratableState {
            dataflow: 0,
            stage: 4,
        });
        // The first error wins over later ones and over completeness.
        slot.set_error(RescaleError::UnmigratableState {
            dataflow: 9,
            stage: 9,
        });
        slot.deposit(1, vec![vec![2]]);
        assert_eq!(
            slot.assemble(2, 1),
            Err(RescaleError::UnmigratableState {
                dataflow: 0,
                stage: 4
            })
        );
    }

    #[test]
    fn phase_stores_require_every_worker_for_consistency() {
        let stores = PhaseStores::default();
        assert_eq!(stores.consistent_epoch(2), None);
        stores.deposit(0, 0, Deposit::Plain(vec![1]));
        assert_eq!(stores.consistent_epoch(2), None);
        stores.deposit(0, 1, Deposit::Migrated(vec![vec![2]]));
        assert_eq!(stores.consistent_epoch(2), Some(0));
    }

    #[test]
    fn plan_validates_fences() {
        let plan = ElasticPlan::new(Config::single_process(2), 6)
            .rescale(RescaleStep::new(2, 1, 3))
            .rescale(RescaleStep::new(4, 1, 1));
        assert_eq!(plan.steps().len(), 2);
        assert_eq!(plan.total_epochs(), 6);
        assert_eq!(plan.steps()[0].workers(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn plan_rejects_unordered_fences() {
        let _ = ElasticPlan::new(Config::single_process(2), 6)
            .rescale(RescaleStep::new(3, 1, 3))
            .rescale(RescaleStep::new(3, 1, 1));
    }

    #[test]
    #[should_panic(expected = "not before the final epoch")]
    fn plan_rejects_fence_at_end() {
        let _ = ElasticPlan::new(Config::single_process(2), 3).rescale(RescaleStep::new(3, 1, 3));
    }
}
