//! Cluster bring-up and tear-down.
//!
//! [`execute`] assembles the fabric, spawns one router thread per process
//! and one worker thread per worker (plus the central accumulator when the
//! progress mode uses one), runs the user's worker closure everywhere, and
//! joins everything down cleanly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use naiad_netsim::{Fabric, FabricMetrics};
use parking_lot::Mutex;

use super::channels::ProcessRegistry;
use super::config::Config;
use super::progress_hub::{run_central_accumulator, run_router, ProcessAccumulator};
use super::worker::Worker;

/// Errors surfaced by [`execute`].
#[derive(Debug)]
pub enum ExecuteError {
    /// A worker thread panicked; the payload is the worker index.
    WorkerPanic(usize),
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::WorkerPanic(w) => write!(f, "worker {w} panicked"),
        }
    }
}

impl std::error::Error for ExecuteError {}

/// Runs `worker_fn` on every worker of a simulated Naiad cluster and
/// returns the per-worker results in worker-index order.
///
/// The closure typically builds one or more dataflows, feeds inputs, and
/// steps the worker to completion — see the crate-level example.
///
/// # Examples
///
/// ```
/// use naiad::runtime::Config;
///
/// let sums = naiad::execute(Config::processes_and_workers(2, 2), |worker| {
///     worker.index() as u64
/// })
/// .unwrap();
/// assert_eq!(sums, vec![0, 1, 2, 3]);
/// ```
pub fn execute<F, T>(config: Config, worker_fn: F) -> Result<Vec<T>, ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    execute_with_metrics(config, worker_fn).map(|(results, _)| results)
}

/// Like [`execute`], additionally returning the fabric's traffic meters so
/// benchmarks can report exchanged data and progress bytes (Figures 6a,
/// 6c).
pub fn execute_with_metrics<F, T>(
    config: Config,
    worker_fn: F,
) -> Result<(Vec<T>, Arc<FabricMetrics>), ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let processes = config.processes;
    let endpoints = processes + usize::from(config.progress_mode.global());
    let mut builder = Fabric::builder(endpoints);
    if let Some(latency) = &config.latency {
        builder = builder.latency(latency.clone());
    }
    let mut fabric = builder.build();
    let metrics = fabric[0].metrics().clone();
    let shutdown = Arc::new(AtomicBool::new(false));
    let worker_fn = Arc::new(worker_fn);

    // The central accumulator (if any) owns the extra endpoint.
    let central_handle = if config.progress_mode.global() {
        let (tx, rx) = fabric.pop().expect("central endpoint allocated").split();
        let net = Arc::new(Mutex::new(tx));
        // The central accumulator resolves dataflow graphs through a
        // registry shared with every process (see below); it is created
        // after the registries, so stash the pieces here.
        Some((rx, net))
    } else {
        None
    };

    // One registry shared by ALL processes: channel queues are keyed by
    // process-local coordinates, so give each process its own registry but
    // share the dataflow directory through the first registry... keep it
    // simple and correct: one registry per process, plus one global
    // directory embedded in each via `register_dataflow` idempotence.
    let directory = Arc::new(ProcessRegistry::default());

    let mut router_handles = Vec::new();
    let mut worker_handles = Vec::new();

    for (process, endpoint) in fabric.into_iter().enumerate() {
        let (tx, rx) = endpoint.split();
        let net = Arc::new(Mutex::new(tx));
        let registry = if processes == 1 {
            directory.clone()
        } else {
            Arc::new(ProcessRegistry::default())
        };
        // Dataflow graphs must be visible to the central accumulator, which
        // reads through `directory`; workers register into both.
        let accumulator = if config.progress_mode.local() {
            Some(Arc::new(Mutex::new(ProcessAccumulator::new(
                process,
                processes,
                config.progress_mode,
                registry.clone(),
                net.clone(),
                config.total_workers(),
            ))))
        } else {
            None
        };

        {
            let registry = registry.clone();
            let accumulator = accumulator.clone();
            let shutdown = shutdown.clone();
            let wpp = config.workers_per_process;
            router_handles.push(
                thread::Builder::new()
                    .name(format!("naiad-router-{process}"))
                    .spawn(move || run_router(rx, registry, wpp, accumulator, shutdown))
                    .expect("spawn router thread"),
            );
        }

        for local in 0..config.workers_per_process {
            let index = process * config.workers_per_process + local;
            let peers = config.total_workers();
            let config = config.clone();
            let registry = registry.clone();
            let directory = directory.clone();
            let net = net.clone();
            let accumulator = accumulator.clone();
            let worker_fn = worker_fn.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("naiad-worker-{index}"))
                    .spawn(move || {
                        let mut worker = Worker::new(
                            index,
                            peers,
                            config,
                            registry,
                            net,
                            accumulator,
                            directory,
                        );
                        worker_fn(&mut worker)
                    })
                    .expect("spawn worker thread"),
            );
        }
    }

    let central_thread = central_handle.map(|(rx, net)| {
        let directory = directory.clone();
        let shutdown = shutdown.clone();
        let total_workers = config.total_workers();
        thread::Builder::new()
            .name("naiad-central-accumulator".to_string())
            .spawn(move || {
                run_central_accumulator(rx, net, directory, processes, total_workers, shutdown)
            })
            .expect("spawn central accumulator thread")
    });

    let mut results = Vec::with_capacity(worker_handles.len());
    let mut panic = None;
    for (index, handle) in worker_handles.into_iter().enumerate() {
        match handle.join() {
            Ok(result) => results.push(result),
            Err(_) => {
                panic.get_or_insert(index);
            }
        }
    }
    shutdown.store(true, Ordering::Release);
    for handle in router_handles {
        let _ = handle.join();
    }
    if let Some(handle) = central_thread {
        let _ = handle.join();
    }
    match panic {
        Some(index) => Err(ExecuteError::WorkerPanic(index)),
        None => Ok((results, metrics)),
    }
}
