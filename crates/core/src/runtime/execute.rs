//! Cluster bring-up and tear-down.
//!
//! [`execute`] assembles the fabric, spawns one router thread per process
//! and one worker thread per worker (plus the central accumulator when the
//! progress mode uses one), runs the user's worker closure everywhere, and
//! joins everything down cleanly.
//!
//! When a [`FaultPlan`](naiad_netsim::FaultPlan) is installed
//! ([`Config::faults`](super::config::Config::faults)), injected faults
//! that survive the retry layer unwind every worker thread via the
//! escalation cell and surface here as typed [`ExecuteError`]s — the
//! entry point for the coordinated-recovery loop in
//! [`execute_resilient`](super::recovery::execute_resilient).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::thread;

use naiad_netsim::{Fabric, FabricMetrics};

use super::channels::ProcessRegistry;
use super::config::Config;
use super::flow::FlowRegistry;
use super::liveness::Liveness;
use super::progress_hub::{run_central_accumulator, run_router, HubStats, ProcessAccumulator};
use super::retry::{EscalationCell, FaultKind, FaultPanic, RetryPolicy};
use super::sync::Mutex;
use super::worker::Worker;
use crate::telemetry::{HubCounters, TelemetrySnapshot, WorkerTelemetry};

/// Errors surfaced by [`execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// A worker thread panicked; the payload is the worker index.
    WorkerPanic(usize),
    /// A fabric link kept failing after the configured retry budget.
    LinkFailed {
        /// Sending endpoint.
        src: usize,
        /// Receiving endpoint.
        dst: usize,
    },
    /// A simulated process crashed (scheduled by the fault plan or
    /// injected at runtime).
    ProcessCrashed {
        /// The crashed process.
        process: usize,
    },
    /// The stall watchdog fired: pointstamps were outstanding but no
    /// frontier or occurrence change happened within the configured
    /// [`stall_timeout`](super::config::Config::stall_timeout). Carries
    /// the structured `NAIAD_DEBUG`-style state dump captured at
    /// declaration time, so a wedged cluster reports *what* it was
    /// waiting on instead of hanging.
    Stalled {
        /// The worker whose watchdog fired first.
        worker: usize,
        /// Structured state dump (frontier, outstanding pointstamps,
        /// step counters, recent telemetry).
        dump: String,
    },
    /// Coordinated recovery gave up (see
    /// [`execute_resilient`](super::recovery::execute_resilient)).
    RecoveryFailed {
        /// Recovery attempts consumed, including the initial run.
        attempts: usize,
        /// The error that ended the final attempt.
        last: Box<ExecuteError>,
    },
    /// An elastic rescale could not complete and rollback was disabled
    /// (see [`execute_elastic`](super::rescale::execute_elastic)): either
    /// the migration window exceeded its deadline or budget, or the state
    /// could not be re-partitioned. Carries the migration-phase dump so a
    /// wedged rescale reports *where* in the protocol it died instead of
    /// hanging.
    RescaleFailed {
        /// The fence epoch of the failed rescale.
        epoch: u64,
        /// Worker count before the rescale.
        from_workers: usize,
        /// Worker count the rescale was moving to.
        to_workers: usize,
        /// Structured migration-phase dump: the protocol phase that
        /// failed plus the underlying error (including any stall dump).
        dump: String,
    },
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::WorkerPanic(w) => write!(f, "worker {w} panicked"),
            ExecuteError::LinkFailed { src, dst } => {
                write!(f, "fabric link {src} → {dst} failed after all retries")
            }
            ExecuteError::ProcessCrashed { process } => {
                write!(f, "process {process} crashed")
            }
            ExecuteError::Stalled { worker, dump } => {
                write!(f, "global stall declared by worker {worker}")?;
                if !dump.is_empty() {
                    write!(f, "\n{dump}")?;
                }
                Ok(())
            }
            ExecuteError::RecoveryFailed { attempts, last } => {
                write!(f, "recovery failed after {attempts} attempts: {last}")
            }
            ExecuteError::RescaleFailed {
                epoch,
                from_workers,
                to_workers,
                dump,
            } => {
                write!(
                    f,
                    "rescale {from_workers} → {to_workers} workers at epoch {epoch} failed"
                )?;
                if !dump.is_empty() {
                    write!(f, "\n{dump}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ExecuteError {}

impl ExecuteError {
    /// Classifies a raised fault; `detail` (the escalation cell's
    /// diagnostic) becomes the stall dump when the fault is a stall.
    fn from_fault(kind: FaultKind, detail: Option<String>) -> Self {
        match kind {
            FaultKind::LinkFailed { src, dst } => ExecuteError::LinkFailed { src, dst },
            FaultKind::ProcessCrashed { process } => ExecuteError::ProcessCrashed { process },
            FaultKind::Stalled { worker } => ExecuteError::Stalled {
                worker,
                dump: detail.unwrap_or_default(),
            },
        }
    }

    /// Ranking for reporting: a process crash explains link failures,
    /// stalls, and secondary panics, so it wins; link failures beat
    /// stalls (the broken link explains the stuck frontier), which beat
    /// generic panics.
    fn severity(&self) -> u8 {
        match self {
            ExecuteError::RescaleFailed { .. } => 5,
            ExecuteError::RecoveryFailed { .. } => 4,
            ExecuteError::ProcessCrashed { .. } => 3,
            ExecuteError::LinkFailed { .. } => 2,
            ExecuteError::Stalled { .. } => 1,
            ExecuteError::WorkerPanic(_) => 0,
        }
    }
}

/// Silences the default panic report for [`FaultPanic`] unwinds: injected
/// faults are expected control flow for the recovery machinery, not bugs
/// worth a backtrace. All other panics reach the previous hook untouched.
fn install_fault_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Runs `worker_fn` on every worker of a simulated Naiad cluster and
/// returns the per-worker results in worker-index order.
///
/// The closure typically builds one or more dataflows, feeds inputs, and
/// steps the worker to completion — see the crate-level example.
///
/// # Examples
///
/// ```
/// use naiad::runtime::Config;
///
/// let sums = naiad::execute(Config::processes_and_workers(2, 2), |worker| {
///     worker.index() as u64
/// })
/// .unwrap();
/// assert_eq!(sums, vec![0, 1, 2, 3]);
/// ```
pub fn execute<F, T>(config: Config, worker_fn: F) -> Result<Vec<T>, ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    execute_with_metrics(config, worker_fn).map(|(results, _)| results)
}

/// Like [`execute`], additionally returning the fabric's traffic meters so
/// benchmarks can report exchanged data and progress bytes (Figures 6a,
/// 6c) and fault-injection experiments can read the fault counters.
// By-value `Config` is deliberate API ergonomics: callers build the config
// inline (`execute_with_metrics(Config::single_process(2).telemetry(true), …)`)
// and the function owns the cluster lifecycle it describes.
#[allow(clippy::needless_pass_by_value)]
pub fn execute_with_metrics<F, T>(
    config: Config,
    worker_fn: F,
) -> Result<(Vec<T>, Arc<FabricMetrics>), ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    execute_inner(&config, worker_fn).map(|(results, metrics, _)| (results, metrics))
}

/// Like [`execute`], with telemetry forced on: returns the unified
/// [`TelemetrySnapshot`] — per-worker event logs and counters,
/// per-operator schedule time and record counts, frontier probes, and
/// fabric traffic totals — assembled after the cluster joins.
pub fn execute_with_telemetry<F, T>(
    config: Config,
    worker_fn: F,
) -> Result<(Vec<T>, TelemetrySnapshot), ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let config = config.telemetry(true);
    execute_inner(&config, worker_fn).map(|(results, _, snapshot)| {
        (
            results,
            // lint-allow(NS0004): this wrapper forced telemetry on one
            // line up, and execute_inner always harvests when it is on.
            snapshot.expect("telemetry enabled yields a snapshot"),
        )
    })
}

/// Everything [`execute_inner`] produces: worker results, the fabric
/// meters, and — when [`Config::telemetry`] is set — the assembled
/// snapshot.
pub(crate) type ExecuteOutput<T> = (Vec<T>, Arc<FabricMetrics>, Option<TelemetrySnapshot>);

/// The shared bring-up/tear-down path behind every `execute` variant.
pub(crate) fn execute_inner<F, T>(
    config: &Config,
    worker_fn: F,
) -> Result<ExecuteOutput<T>, ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    install_fault_panic_hook();
    let processes = config.processes;
    let endpoints = processes + usize::from(config.progress_mode.global());
    let mut builder = Fabric::builder(endpoints);
    if let Some(latency) = &config.latency {
        builder = builder.latency(latency.clone());
    }
    if let Some(faults) = &config.faults {
        builder = builder.faults(faults.clone());
    }
    let mut fabric = builder.build();
    // lint-allow(NS0004): the builder allocates one endpoint per process
    // (at least one) plus the optional central endpoint.
    let metrics = fabric[0].metrics().clone();
    // lint-allow(NS0004): same builder guarantee as above.
    let clock = fabric[0].clock().clone();
    let shutdown = Arc::new(AtomicBool::new(false));
    let escalation = Arc::new(EscalationCell::default());
    let hub_stats = Arc::new(HubStats::default());
    // Cluster-global credit registry (DESIGN.md §15), shared by every
    // process's workers and routers like the escalation cell; remote
    // credit returns still traverse the control plane so crash and
    // partition semantics stay honest.
    let flow = config
        .flow
        .as_ref()
        .map(|fc| Arc::new(FlowRegistry::new(fc.clone(), config.tuning.clone())));
    // The per-run slab pool backing every remote encode (DESIGN.md §16).
    // One pool per run keeps gauges exact for tests and isolates runs
    // from each other; the autotuner resizes it through the tuning knobs.
    let slabs = Arc::new(naiad_wire::SlabPool::default());
    if let Some(knobs) = &config.tuning {
        slabs.set_resident_cap(knobs.pool_resident_cap());
    }
    // One liveness detector per process (when heartbeats are on), driven by
    // that process's router thread; kept here so the snapshot can sum the
    // per-process counters after the join.
    let mut liveness_handles: Vec<Arc<Liveness>> = Vec::new();
    let policy = RetryPolicy::from_config(config);
    let worker_fn = Arc::new(worker_fn);
    // When telemetry is on, worker threads push their harvests here after
    // the closure returns; the snapshot is assembled post-join.
    let hub: Option<Arc<Mutex<Vec<WorkerTelemetry>>>> = config
        .telemetry
        .then(|| Arc::new(Mutex::new(Vec::with_capacity(config.total_workers()))));

    // The central accumulator (if any) owns the extra endpoint.
    let central_handle = if config.progress_mode.global() {
        // lint-allow(NS0004): global progress modes build the fabric with
        // the extra central endpoint appended last.
        let (tx, rx) = fabric.pop().expect("central endpoint allocated").split();
        let net = Arc::new(Mutex::new(tx));
        // The central accumulator resolves dataflow graphs through a
        // registry shared with every process (see below); it is created
        // after the registries, so stash the pieces here.
        Some((rx, net))
    } else {
        None
    };

    // One registry shared by ALL processes: channel queues are keyed by
    // process-local coordinates, so give each process its own registry but
    // share the dataflow directory through the first registry... keep it
    // simple and correct: one registry per process, plus one global
    // directory embedded in each via `register_dataflow` idempotence.
    let directory = Arc::new(ProcessRegistry::default());

    let mut router_handles = Vec::new();
    let mut worker_handles = Vec::new();

    for (process, endpoint) in fabric.into_iter().enumerate() {
        let (tx, rx) = endpoint.split();
        let net = Arc::new(Mutex::new(tx));
        let registry = if processes == 1 {
            directory.clone()
        } else {
            Arc::new(ProcessRegistry::default())
        };
        // Dataflow graphs must be visible to the central accumulator, which
        // reads through `directory`; workers register into both.
        let accumulator = if config.progress_mode.local() {
            Some(Arc::new(Mutex::new(ProcessAccumulator::new(
                process,
                processes,
                config.progress_mode,
                registry.clone(),
                net.clone(),
                config.total_workers(),
                policy,
                escalation.clone(),
            ))))
        } else {
            None
        };

        let liveness = config
            .heartbeats
            .then(|| Arc::new(Liveness::new(process, processes, config, clock.clone())));
        if let Some(live) = &liveness {
            liveness_handles.push(live.clone());
        }

        {
            let registry = registry.clone();
            let accumulator = accumulator.clone();
            let shutdown = shutdown.clone();
            let wpp = config.workers_per_process;
            let net = net.clone();
            let liveness = liveness.clone();
            let escalation = escalation.clone();
            let stats = hub_stats.clone();
            let membership = naiad_netsim::MembershipMsg {
                generation: config.membership_generation,
                process,
                processes,
            };
            let flow = flow.clone();
            router_handles.push(
                thread::Builder::new()
                    .name(format!("naiad-router-{process}"))
                    .spawn(move || {
                        run_router(
                            rx,
                            &registry,
                            wpp,
                            accumulator.as_deref(),
                            &shutdown,
                            &net,
                            liveness.as_deref(),
                            &escalation,
                            &stats,
                            membership,
                            flow.as_deref(),
                        )
                    })
                    // lint-allow(NS0004): OS thread-spawn failure is
                    // resource exhaustion; unwinding tears down the run.
                    .expect("spawn router thread"),
            );
        }

        for local in 0..config.workers_per_process {
            let index = process * config.workers_per_process + local;
            let peers = config.total_workers();
            let config = config.clone();
            let registry = registry.clone();
            let directory = directory.clone();
            let net = net.clone();
            let accumulator = accumulator.clone();
            let escalation = escalation.clone();
            let worker_fn = worker_fn.clone();
            let hub = hub.clone();
            let liveness = liveness.clone();
            let flow = flow.clone();
            let slabs = slabs.clone();
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("naiad-worker-{index}"))
                    .spawn(move || {
                        let mut worker = Worker::new(
                            index,
                            peers,
                            config,
                            registry,
                            net,
                            accumulator,
                            directory,
                            escalation,
                            liveness,
                            flow,
                            slabs,
                        );
                        let result = worker_fn(&mut worker);
                        if let Some(hub) = &hub {
                            if let Some(telemetry) = worker.take_telemetry() {
                                hub.lock().push(telemetry);
                            }
                        }
                        result
                    })
                    // lint-allow(NS0004): same spawn-failure policy as
                    // the router thread above.
                    .expect("spawn worker thread"),
            );
        }
    }

    let central_thread = central_handle.map(|(rx, net)| {
        let directory = directory.clone();
        let shutdown = shutdown.clone();
        let escalation = escalation.clone();
        let total_workers = config.total_workers();
        let stats = hub_stats.clone();
        thread::Builder::new()
            .name("naiad-central-accumulator".to_string())
            .spawn(move || {
                run_central_accumulator(
                    rx,
                    &net,
                    &directory,
                    processes,
                    total_workers,
                    &shutdown,
                    policy,
                    &escalation,
                    &stats,
                )
            })
            // lint-allow(NS0004): same spawn-failure policy as the
            // router thread above.
            .expect("spawn central accumulator thread")
    });

    fn observe(error: &mut Option<ExecuteError>, e: ExecuteError) {
        match error {
            Some(have) if have.severity() >= e.severity() => {}
            _ => *error = Some(e),
        }
    }
    let mut results = Vec::with_capacity(worker_handles.len());
    let mut error: Option<ExecuteError> = None;
    for (index, handle) in worker_handles.into_iter().enumerate() {
        match handle.join() {
            Ok(result) => results.push(result),
            Err(payload) => {
                let e = match payload.downcast_ref::<FaultPanic>() {
                    Some(FaultPanic(kind)) => {
                        ExecuteError::from_fault(*kind, escalation.take_detail())
                    }
                    None => ExecuteError::WorkerPanic(index),
                };
                observe(&mut error, e);
            }
        }
    }
    // A raised fault explains secondary panics even in workers that
    // happened to exit before polling the cell.
    if error.is_some() {
        if let Some(kind) = escalation.check() {
            observe(&mut error, ExecuteError::from_fault(kind, escalation.take_detail()));
        }
    }
    shutdown.store(true, Ordering::Release);
    for handle in router_handles {
        let _ = handle.join();
    }
    if let Some(handle) = central_thread {
        let _ = handle.join();
    }
    match error {
        Some(e) => Err(e),
        None => {
            let snapshot = hub.map(|hub| {
                let logs = std::mem::take(&mut *hub.lock());
                let mut snap = TelemetrySnapshot::assemble(logs, &metrics);
                snap.hub = HubCounters {
                    router_idle_ticks: hub_stats.router_idle_ticks.load(Ordering::Relaxed),
                    central_idle_ticks: hub_stats.central_idle_ticks.load(Ordering::Relaxed),
                    heartbeats_sent: liveness_handles.iter().map(|l| l.beats_sent()).sum(),
                    suspicions: liveness_handles.iter().map(|l| l.suspicions()).sum(),
                    peer_failures: liveness_handles.iter().map(|l| l.failures()).sum(),
                };
                snap.slab = slabs.gauges();
                if let Some(flow) = &flow {
                    snap.flow = crate::telemetry::FlowGauges {
                        enabled: true,
                        in_flight_bytes: flow.in_flight_bytes(),
                        peak_in_flight_bytes: flow.peak_in_flight_bytes(),
                        credit_waits: flow.credit_waits(),
                        credit_wait_ns: flow.credit_wait_ns(),
                        credit_returns: flow.returns(),
                        overdrafts: flow.overdrafts(),
                        shed_batches: flow.shed_batches(),
                        shed_records: flow.shed_records(),
                        shed_bytes: flow.shed_bytes(),
                    };
                }
                snap
            });
            Ok((results, metrics, snapshot))
        }
    }
}
