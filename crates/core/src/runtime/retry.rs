//! Bounded retry over the faulting fabric, and fault escalation.
//!
//! The fabric (`naiad-netsim`) models the wire *below* TCP: with a
//! [`FaultPlan`](naiad_netsim::FaultPlan) installed, sends can fail with
//! transient errors (drops, partition windows). This module plays the
//! role of TCP retransmission — a bounded exponential-backoff retry —
//! and, when retries are exhausted or the failure is fatal (a crashed
//! process), escalates the fault so the whole cluster unwinds into a
//! typed [`ExecuteError`](super::execute::ExecuteError) instead of
//! hanging.
//!
//! Escalation has two halves:
//!
//! * the thread that observed the failure panics with a [`FaultPanic`]
//!   payload, unwinding its worker closure;
//! * before panicking it raises the fault on the cluster-global
//!   [`EscalationCell`], which every worker polls in
//!   [`Worker::step`](super::worker::Worker::step) — workers blocked on
//!   progress from the failed process unwind too, so `execute` can join
//!   everything and report the fault.

use std::sync::Arc;
use std::time::Duration;

use naiad_netsim::{NetSender, SendError, TrafficClass};
use naiad_wire::Bytes;

use super::sync::Mutex;

/// The classified cause of a cluster unwind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A link kept failing after the full retry budget.
    LinkFailed {
        /// Sending endpoint.
        src: usize,
        /// Receiving endpoint.
        dst: usize,
    },
    /// A process crashed (scheduled by the plan or injected at runtime).
    ProcessCrashed {
        /// The crashed process.
        process: usize,
    },
    /// The stall watchdog declared a global stall: pointstamps were
    /// outstanding but no frontier or occurrence change happened within
    /// the configured timeout. The structured diagnostic dump travels
    /// alongside in the [`EscalationCell`] detail slot (the kind itself
    /// stays `Copy` so it can ride in telemetry events and panic
    /// payloads).
    Stalled {
        /// The worker whose watchdog fired.
        worker: usize,
    },
}

impl FaultKind {
    /// Classifies a non-retryable send error.
    pub(crate) fn from_send_error(err: SendError) -> FaultKind {
        match err {
            SendError::Dropped { src, dst } | SendError::Partitioned { src, dst } => {
                FaultKind::LinkFailed { src, dst }
            }
            SendError::PeerCrashed { dst } | SendError::Disconnected { dst } => {
                FaultKind::ProcessCrashed { process: dst }
            }
            SendError::SelfCrashed { src } => FaultKind::ProcessCrashed { process: src },
        }
    }
}

/// The panic payload used to unwind worker threads on an injected fault.
/// `execute` downcasts join errors to this type to produce typed
/// [`ExecuteError`](super::execute::ExecuteError)s.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultPanic(pub(crate) FaultKind);

/// Cluster-global slot holding the first escalated fault. Workers poll it
/// each step so every thread unwinds, not just the one that hit the
/// failed send.
#[derive(Debug, Default)]
pub(crate) struct EscalationCell {
    slot: Mutex<Option<FaultKind>>,
    /// Free-form diagnostic attached to the *winning* fault (e.g. the
    /// stall watchdog's structured state dump).
    detail: Mutex<Option<String>>,
}

impl EscalationCell {
    /// Records `kind` if no fault was raised yet; returns the fault that
    /// now occupies the cell.
    pub(crate) fn raise(&self, kind: FaultKind) -> FaultKind {
        let mut slot = self.slot.lock();
        *slot.get_or_insert(kind)
    }

    /// Like [`raise`](Self::raise), but attaches `detail` when this call
    /// is the one that installed the fault (losing racers' details are
    /// discarded along with their faults).
    pub(crate) fn raise_with_detail(&self, kind: FaultKind, detail: String) -> FaultKind {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(kind);
            *self.detail.lock() = Some(detail);
        }
        slot.unwrap_or(kind)
    }

    /// The raised fault, if any.
    pub(crate) fn check(&self) -> Option<FaultKind> {
        *self.slot.lock()
    }

    /// Takes the diagnostic attached to the winning fault, if any.
    pub(crate) fn take_detail(&self) -> Option<String> {
        self.detail.lock().take()
    }
}

/// Raises `kind` on the cell and unwinds the current thread with a
/// [`FaultPanic`] payload.
pub(crate) fn escalate(cell: &EscalationCell, kind: FaultKind) -> ! {
    let first = cell.raise(kind);
    std::panic::panic_any(FaultPanic(first));
}

/// Retry budget for transient send failures.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPolicy {
    /// Retries after the first attempt.
    pub(crate) retries: u32,
    /// Base backoff; doubles per retry, capped at 1024× base.
    pub(crate) backoff: Duration,
}

impl RetryPolicy {
    pub(crate) fn from_config(config: &super::config::Config) -> Self {
        RetryPolicy {
            retries: config.send_retries,
            backoff: config.retry_backoff,
        }
    }

    fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff * 1u32.checked_shl(attempt.min(10)).unwrap_or(u32::MAX)
    }
}

/// Sends `payload` to `dst`, retrying transient failures with exponential
/// backoff. Returns the final error once the budget is exhausted or the
/// failure is fatal. The fabric lock is released between attempts so
/// other threads (and the delivery clock) make progress while we back
/// off.
pub(crate) fn send_with_retry(
    net: &Arc<Mutex<NetSender>>,
    policy: RetryPolicy,
    dst: usize,
    channel: u32,
    class: TrafficClass,
    payload: &Bytes,
) -> Result<(), SendError> {
    let mut attempt = 0u32;
    loop {
        let result = net.lock().send(dst, channel, class, payload.clone());
        match result {
            Ok(()) => return Ok(()),
            Err(err) if err.is_transient() && attempt < policy.retries => {
                std::thread::sleep(policy.backoff_for(attempt));
                attempt += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_netsim::{Fabric, FaultPlan};

    fn policy(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            backoff: Duration::from_micros(1),
        }
    }

    #[test]
    fn retries_ride_out_a_partition_window() {
        // Attempts 0..3 on 0→1 fail; the 4th emerges from the window.
        let plan = FaultPlan::seeded(3).partition(0, 1, 0, 3);
        let mut endpoints = Fabric::builder(2).faults(plan).build();
        let mut b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let (tx, _rx) = a.split();
        let net = Arc::new(Mutex::new(tx));
        send_with_retry(
            &net,
            policy(8),
            1,
            7,
            TrafficClass::Data,
            &vec![1u8].into(),
        )
        .unwrap();
        assert_eq!(b.recv_blocking().unwrap().payload.as_ref(), &[1u8]);
        assert_eq!(net.lock().metrics().faults().partition_rejects, 3);
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient_error() {
        let plan = FaultPlan::seeded(3).partition(0, 1, 0, 100);
        let mut endpoints = Fabric::builder(2).faults(plan).build();
        let _b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let (tx, _rx) = a.split();
        let net = Arc::new(Mutex::new(tx));
        let err = send_with_retry(&net, policy(4), 1, 7, TrafficClass::Data, &vec![1u8].into())
            .unwrap_err();
        assert_eq!(err, SendError::Partitioned { src: 0, dst: 1 });
        assert!(FaultKind::from_send_error(err) == FaultKind::LinkFailed { src: 0, dst: 1 });
    }

    #[test]
    fn crashes_are_not_retried() {
        let mut endpoints = Fabric::builder(2).build();
        let _b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        a.fault_controller().crash(1);
        let (tx, _rx) = a.split();
        let net = Arc::new(Mutex::new(tx));
        let err = send_with_retry(&net, policy(8), 1, 7, TrafficClass::Data, &vec![1u8].into())
            .unwrap_err();
        assert_eq!(err, SendError::PeerCrashed { dst: 1 });
        assert_eq!(
            FaultKind::from_send_error(err),
            FaultKind::ProcessCrashed { process: 1 }
        );
        // Only the initial attempt: no retries burned on a fatal error.
        assert_eq!(net.lock().metrics().faults().crash_rejects, 1);
    }

    #[test]
    fn escalation_cell_keeps_the_first_fault() {
        let cell = EscalationCell::default();
        assert_eq!(cell.check(), None);
        let a = FaultKind::ProcessCrashed { process: 2 };
        let b = FaultKind::LinkFailed { src: 0, dst: 1 };
        assert_eq!(cell.raise(a), a);
        assert_eq!(cell.raise(b), a, "later faults do not displace the first");
        assert_eq!(cell.check(), Some(a));
    }

    #[test]
    fn detail_sticks_only_to_the_winning_fault() {
        let cell = EscalationCell::default();
        let stall = FaultKind::Stalled { worker: 1 };
        let crash = FaultKind::ProcessCrashed { process: 0 };
        assert_eq!(cell.raise_with_detail(stall, "dump A".into()), stall);
        // A losing racer's detail is discarded with its fault.
        assert_eq!(cell.raise_with_detail(crash, "dump B".into()), stall);
        assert_eq!(cell.check(), Some(stall));
        assert_eq!(cell.take_detail().as_deref(), Some("dump A"));
        assert_eq!(cell.take_detail(), None, "detail is taken once");
    }
}
