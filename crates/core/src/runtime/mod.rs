//! The distributed runtime (§3): processes, workers, channels, progress
//! plumbing, and fault tolerance.

pub mod channels;
pub mod config;
pub mod durability;
pub mod execute;
pub mod flow;
#[cfg(loom)]
pub(crate) mod interleave;
mod liveness;
mod progress_hub;
pub(crate) mod queue;
pub mod recovery;
pub mod rescale;
mod retry;
pub(crate) mod sync;
mod worker;

pub use channels::{Message, Pact};
pub use config::{Config, TuningKnobs};
pub use durability::{open_blob, seal_blob, Checkpoint, KeyedCheckpoint, KeyedState, RestoreError};
pub use execute::{execute, execute_with_metrics, execute_with_telemetry, ExecuteError};
pub use flow::{FlowConfig, OverloadState, ShedPolicy};
pub use recovery::{execute_resilient, Recovery, RecoveryOptions, ResilientReport};
pub use rescale::{
    execute_elastic, ElasticOptions, ElasticPlan, ElasticReport, ElasticSession, PhaseReport,
    RescaleError, RescaleOutcome, RescaleStep,
};
pub use retry::FaultKind;
pub(crate) use worker::StepHook;
pub use worker::Worker;
