//! The distributed runtime (§3): processes, workers, channels, progress
//! plumbing, and fault tolerance.

pub mod channels;
pub mod config;
pub mod durability;
pub mod execute;
mod progress_hub;
mod worker;

pub use channels::{Message, Pact};
pub use config::Config;
pub use execute::{execute, ExecuteError};
pub use worker::Worker;
