//! Runtime configuration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naiad_netsim::{FaultPlan, LatencyModel};

use super::flow::FlowConfig;
use crate::progress::ProgressMode;

/// Shared, dynamically adjustable runtime knobs, read by the data plane
/// on every batch boundary and written by the [`crate::introspect`]
/// autotuner between epochs. When [`Config::tuning`] is `None` (the
/// default) the static [`Config::batch_size`] applies and the flush
/// threshold is 1 — today's behavior, bit for bit.
#[derive(Clone, Debug, Default)]
pub struct TuningKnobs {
    inner: Arc<KnobsInner>,
}

#[derive(Debug)]
struct KnobsInner {
    batch_size: AtomicUsize,
    progress_flush: AtomicUsize,
    credit_budget: AtomicUsize,
    pool_resident_cap: AtomicUsize,
}

impl Default for KnobsInner {
    fn default() -> Self {
        KnobsInner {
            batch_size: AtomicUsize::new(1024),
            progress_flush: AtomicUsize::new(1),
            credit_budget: AtomicUsize::new(1 << 20),
            pool_resident_cap: AtomicUsize::new(32 << 20),
        }
    }
}

impl TuningKnobs {
    /// Knobs seeded with an initial exchange batch size and a flush
    /// threshold of 1 (flush every step).
    pub fn with_batch_size(records: usize) -> Self {
        let knobs = TuningKnobs::default();
        knobs.set_batch_size(records);
        knobs
    }

    /// Current exchange batch size (records per emitted batch).
    pub fn batch_size(&self) -> usize {
        self.inner.batch_size.load(Ordering::Relaxed)
    }

    /// Sets the exchange batch size; takes effect at the next batch
    /// boundary on every worker.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn set_batch_size(&self, records: usize) {
        assert!(records > 0, "batch size must be positive");
        self.inner.batch_size.store(records, Ordering::Relaxed);
    }

    /// Current progress-flush threshold (journal entries below which a
    /// flush may be deferred for a bounded number of steps).
    pub fn progress_flush(&self) -> usize {
        self.inner.progress_flush.load(Ordering::Relaxed)
    }

    /// Sets the progress-flush threshold.
    ///
    /// # Panics
    ///
    /// Panics if `updates` is zero.
    pub fn set_progress_flush(&self, updates: usize) {
        assert!(updates > 0, "flush threshold must be positive");
        self.inner.progress_flush.store(updates, Ordering::Relaxed);
    }

    /// Current per-queue credit budget in bytes (read by the flow
    /// registry on every acquisition when flow control is enabled).
    pub fn credit_budget(&self) -> usize {
        self.inner.credit_budget.load(Ordering::Relaxed)
    }

    /// Sets the per-queue credit budget in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn set_credit_budget(&self, bytes: usize) {
        assert!(bytes > 0, "credit budget must be positive");
        self.inner.credit_budget.store(bytes, Ordering::Relaxed);
    }

    /// Current slab-pool resident cap in bytes: the recycled-buffer
    /// memory the data plane may keep parked between batches
    /// (DESIGN.md §16). Synced to the per-run
    /// [`SlabPool`](naiad_wire::SlabPool) on every remote emit.
    pub fn pool_resident_cap(&self) -> usize {
        self.inner.pool_resident_cap.load(Ordering::Relaxed)
    }

    /// Sets the slab-pool resident cap in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn set_pool_resident_cap(&self, bytes: usize) {
        assert!(bytes > 0, "pool resident cap must be positive");
        self.inner.pool_resident_cap.store(bytes, Ordering::Relaxed);
    }
}

/// Configuration for [`execute`](crate::runtime::execute::execute).
///
/// A Naiad cluster is a set of *processes*, each hosting several *workers*
/// (§3, Figure 5). This reproduction hosts all processes inside one OS
/// process: workers in the same process exchange typed records through
/// shared-memory queues; workers in different processes exchange serialized
/// bytes through the `naiad-netsim` fabric, exactly as the paper's
/// processes exchange bytes over TCP.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of simulated processes (network endpoints).
    pub processes: usize,
    /// Worker threads per process.
    pub workers_per_process: usize,
    /// Progress-protocol accumulation topology (§3.3, Figure 6c).
    pub progress_mode: ProgressMode,
    /// Records buffered per destination before an exchange channel emits a
    /// batch (Naiad aggregates messages at the application level, §3.5).
    pub batch_size: usize,
    /// Optional delivery-latency injection on every fabric link (§3.5
    /// micro-straggler emulation).
    pub latency: Option<LatencyModel>,
    /// How long an idle worker sleeps waiting for progress traffic before
    /// rechecking its queues.
    pub idle_wait: Duration,
    /// Optional deterministic fault-injection plan for the fabric (§3.4
    /// evaluation: drops, duplicates, partitions, crashes).
    pub faults: Option<FaultPlan>,
    /// How many times a transient send failure (drop, partition) is
    /// retried before the fault escalates — the stand-in for TCP
    /// retransmission over the simulated wire.
    pub send_retries: u32,
    /// Base backoff between send retries; doubles per attempt.
    pub retry_backoff: Duration,
    /// Whether workers record structured telemetry
    /// ([`crate::telemetry`]). Off by default: no event buffer is
    /// allocated and every record call is a single branch. The
    /// `NAIAD_DEBUG` env var also enables recording (for the structured
    /// state dump) regardless of this flag.
    pub telemetry: bool,
    /// Event-buffer capacity per worker when telemetry is enabled.
    /// Aggregate counters stay exact even after the buffer fills.
    pub telemetry_capacity: usize,
    /// Whether processes exchange heartbeats and run the peer failure
    /// detector (§3.4/§3.5 liveness machinery). Off by default: with no
    /// detector, a crashed or partitioned peer that never faults a send
    /// is only caught by the stall watchdog.
    pub heartbeats: bool,
    /// Cadence of standalone heartbeats when no traffic is flowing
    /// (progress traffic implicitly refreshes liveness, so heartbeats
    /// piggyback on it and only fire standalone when a link goes quiet).
    pub heartbeat_interval: Duration,
    /// Silence after which a peer is marked *suspected* (telemetry only;
    /// nothing unwinds yet).
    pub heartbeat_suspect_after: Duration,
    /// Silence after which a peer is declared *failed*, escalating into
    /// the typed-error → coordinated-rollback path. Detection latency is
    /// bounded by this threshold plus one detector tick.
    pub heartbeat_fail_after: Duration,
    /// Wall-clock bound on frontier inactivity while pointstamps are
    /// outstanding: when exceeded, the worker declares a global stall
    /// (typed [`ExecuteError::Stalled`](crate::runtime::ExecuteError))
    /// instead of idling forever. `None` disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// Cluster-membership generation, bumped by the elastic-rescale
    /// coordinator ([`execute_elastic`](crate::runtime::rescale::execute_elastic))
    /// each time the worker set changes. Routers announce it on the
    /// control plane so duplicated or stale membership messages from a
    /// previous generation are discarded instead of confusing the
    /// failure detector.
    pub membership_generation: u64,
    /// Whether [`Worker::dataflow`](crate::runtime::Worker::dataflow)
    /// analyzes graphs with the `NA0006` rescale-safe certification
    /// enabled (see
    /// [`AnalysisConfig::rescale_contracts`](crate::analysis::AnalysisConfig::rescale_contracts)).
    /// Off by default; the elastic-rescale coordinator turns it on so a
    /// graph whose state cannot be re-partitioned is denied at build time
    /// instead of aborting mid-rescale.
    pub certify_rescale: bool,
    /// Dynamically adjustable knobs shared with the [`crate::introspect`]
    /// autotuner. `None` (the default) pins every knob to its static
    /// config value with zero added cost on the data plane.
    pub tuning: Option<TuningKnobs>,
    /// Credit-based data-plane flow control ([`crate::runtime::flow`],
    /// DESIGN.md §15). `None` (the default) leaves every data queue
    /// unbounded — today's behavior, bit for bit.
    pub flow: Option<FlowConfig>,
}

impl Config {
    /// A single-process configuration with `workers` worker threads.
    pub fn single_process(workers: usize) -> Self {
        Config::processes_and_workers(1, workers)
    }

    /// A multi-process configuration.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn processes_and_workers(processes: usize, workers_per_process: usize) -> Self {
        assert!(processes > 0, "at least one process");
        assert!(workers_per_process > 0, "at least one worker per process");
        Config {
            processes,
            workers_per_process,
            progress_mode: ProgressMode::default(),
            batch_size: 1024,
            latency: None,
            idle_wait: Duration::from_micros(200),
            faults: None,
            send_retries: 24,
            retry_backoff: Duration::from_micros(50),
            telemetry: false,
            telemetry_capacity: 65_536,
            heartbeats: false,
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_suspect_after: Duration::from_millis(50),
            heartbeat_fail_after: Duration::from_millis(200),
            stall_timeout: Some(Duration::from_secs(30)),
            membership_generation: 0,
            certify_rescale: false,
            tuning: None,
            flow: None,
        }
    }

    /// Installs shared tuning knobs, seeded from the static
    /// [`Config::batch_size`]; the [`crate::introspect`] autotuner
    /// adjusts them online.
    pub fn tuning(mut self, knobs: TuningKnobs) -> Self {
        self.tuning = Some(knobs);
        self
    }

    /// Enables credit-based data-plane flow control with the given
    /// budget, wait bound, thresholds, and shedding policy.
    pub fn flow(mut self, flow: FlowConfig) -> Self {
        self.flow = Some(flow);
        self
    }

    /// Sets the cluster-membership generation (normally managed by the
    /// elastic-rescale coordinator, not by hand).
    pub fn membership_generation(mut self, generation: u64) -> Self {
        self.membership_generation = generation;
        self
    }

    /// Enables (or disables) the `NA0006` rescale-safe certification on
    /// every graph built through [`Worker::dataflow`](crate::runtime::Worker::dataflow).
    pub fn certify_rescale(mut self, enabled: bool) -> Self {
        self.certify_rescale = enabled;
        self
    }

    /// Enables (or disables) structured telemetry recording.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Sets the per-worker event-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn telemetry_capacity(mut self, events: usize) -> Self {
        assert!(events > 0, "telemetry capacity must be positive");
        self.telemetry_capacity = events;
        self
    }

    /// Sets the progress-protocol mode.
    pub fn progress_mode(mut self, mode: ProgressMode) -> Self {
        self.progress_mode = mode;
        self
    }

    /// Sets the exchange batch size.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn batch_size(mut self, records: usize) -> Self {
        assert!(records > 0, "batch size must be positive");
        self.batch_size = records;
        self
    }

    /// Injects a latency model on every fabric link.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Installs a fault-injection plan on the fabric.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the transient-send retry budget.
    pub fn send_retries(mut self, retries: u32) -> Self {
        self.send_retries = retries;
        self
    }

    /// Sets the base retry backoff (doubles per attempt).
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Enables (or disables) heartbeat emission and the peer failure
    /// detector.
    pub fn heartbeats(mut self, enabled: bool) -> Self {
        self.heartbeats = enabled;
        self
    }

    /// Sets the heartbeat cadence and derives proportional detection
    /// thresholds: suspect after 5 intervals of silence, fail after 20.
    /// Use [`heartbeat_timeouts`](Self::heartbeat_timeouts) afterwards to
    /// override the thresholds independently.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        self.heartbeat_interval = interval;
        self.heartbeat_suspect_after = interval * 5;
        self.heartbeat_fail_after = interval * 20;
        self
    }

    /// Sets the suspicion and failure thresholds directly.
    ///
    /// # Panics
    ///
    /// Panics if `suspect_after > fail_after` or either is zero.
    pub fn heartbeat_timeouts(mut self, suspect_after: Duration, fail_after: Duration) -> Self {
        assert!(
            !suspect_after.is_zero() && !fail_after.is_zero(),
            "heartbeat timeouts must be positive"
        );
        assert!(
            suspect_after <= fail_after,
            "suspicion threshold must not exceed the failure threshold"
        );
        self.heartbeat_suspect_after = suspect_after;
        self.heartbeat_fail_after = fail_after;
        self
    }

    /// Sets the stall-watchdog timeout. The default is 30 s; see
    /// [`stall_timeout`](Self::stall_timeout) the field for semantics.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "stall timeout must be positive");
        self.stall_timeout = Some(timeout);
        self
    }

    /// Disables the stall watchdog entirely (a genuinely stuck cluster
    /// will hang — only sensible under an external deadline).
    pub fn no_stall_timeout(mut self) -> Self {
        self.stall_timeout = None;
        self
    }

    /// Total number of workers across all processes.
    pub fn total_workers(&self) -> usize {
        self.processes * self.workers_per_process
    }
}

impl Default for Config {
    /// One process, one worker: the single-threaded scheduler of §2.3.
    fn default() -> Self {
        Config::single_process(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = Config::processes_and_workers(4, 2)
            .progress_mode(ProgressMode::LocalGlobal)
            .batch_size(64);
        assert_eq!(c.total_workers(), 8);
        assert_eq!(c.progress_mode, ProgressMode::LocalGlobal);
        assert_eq!(c.batch_size, 64);
    }

    #[test]
    fn telemetry_defaults_off_and_builders_compose() {
        let c = Config::default();
        assert!(!c.telemetry);
        let c = Config::single_process(2).telemetry(true).telemetry_capacity(128);
        assert!(c.telemetry);
        assert_eq!(c.telemetry_capacity, 128);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = Config::processes_and_workers(0, 1);
    }

    #[test]
    fn fault_builders_compose() {
        let c = Config::processes_and_workers(2, 1)
            .faults(FaultPlan::seeded(7).drop_probability(0.1))
            .send_retries(3)
            .retry_backoff(Duration::from_micros(10));
        assert_eq!(c.faults.as_ref().unwrap().seed, 7);
        assert_eq!(c.send_retries, 3);
        assert_eq!(c.retry_backoff, Duration::from_micros(10));
        assert!(Config::default().faults.is_none());
    }

    #[test]
    fn heartbeat_defaults_and_builders() {
        let c = Config::default();
        assert!(!c.heartbeats, "heartbeats default off");
        assert_eq!(c.stall_timeout, Some(Duration::from_secs(30)));

        let c = Config::processes_and_workers(2, 1)
            .heartbeats(true)
            .heartbeat_interval(Duration::from_millis(4));
        assert!(c.heartbeats);
        assert_eq!(c.heartbeat_interval, Duration::from_millis(4));
        assert_eq!(c.heartbeat_suspect_after, Duration::from_millis(20));
        assert_eq!(c.heartbeat_fail_after, Duration::from_millis(80));

        let c = c.heartbeat_timeouts(Duration::from_millis(10), Duration::from_millis(30));
        assert_eq!(c.heartbeat_suspect_after, Duration::from_millis(10));
        assert_eq!(c.heartbeat_fail_after, Duration::from_millis(30));

        let c = c.stall_timeout(Duration::from_secs(2));
        assert_eq!(c.stall_timeout, Some(Duration::from_secs(2)));
        assert_eq!(c.no_stall_timeout().stall_timeout, None);
    }

    #[test]
    fn tuning_knobs_are_shared_and_dynamic() {
        let c = Config::default();
        assert!(c.tuning.is_none(), "knobs default off");
        let knobs = TuningKnobs::with_batch_size(64);
        let c = Config::single_process(2).tuning(knobs.clone());
        assert_eq!(c.tuning.as_ref().unwrap().batch_size(), 64);
        knobs.set_batch_size(128);
        knobs.set_progress_flush(4);
        // The config's clone observes writes through the shared handle.
        assert_eq!(c.tuning.as_ref().unwrap().batch_size(), 128);
        assert_eq!(c.tuning.as_ref().unwrap().progress_flush(), 4);
    }

    #[test]
    fn flow_defaults_off_and_builders_compose() {
        use super::super::flow::ShedPolicy;
        let c = Config::default();
        assert!(c.flow.is_none(), "flow control defaults off");
        let c = Config::single_process(2).flow(
            FlowConfig::default()
                .budget(4096)
                .policy(ShedPolicy::Shed)
                .max_open_epochs(3),
        );
        let flow = c.flow.as_ref().unwrap();
        assert_eq!(flow.budget, 4096);
        assert_eq!(flow.policy, ShedPolicy::Shed);
        assert_eq!(flow.max_open_epochs, Some(3));
    }

    #[test]
    fn credit_budget_knob_is_shared_and_dynamic() {
        let knobs = TuningKnobs::default();
        assert_eq!(knobs.credit_budget(), 1 << 20);
        let clone = knobs.clone();
        knobs.set_credit_budget(4096);
        assert_eq!(clone.credit_budget(), 4096);
    }

    #[test]
    fn pool_cap_knob_is_shared_and_dynamic() {
        let knobs = TuningKnobs::default();
        assert_eq!(knobs.pool_resident_cap(), 32 << 20);
        let clone = knobs.clone();
        knobs.set_pool_resident_cap(1 << 20);
        assert_eq!(clone.pool_resident_cap(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "suspicion threshold")]
    fn inverted_heartbeat_timeouts_rejected() {
        let _ = Config::default()
            .heartbeat_timeouts(Duration::from_millis(50), Duration::from_millis(10));
    }
}
