//! Transport shell for the progress protocol (§3.3): process-level and
//! cluster-level accumulation behind the fabric, plus the per-process
//! router thread that dispatches incoming traffic.
//!
//! The protocol itself — buffering policy, batch sequencing, stash-until-
//! registration — lives in the pure [`GroupCore`] state machine
//! ([`crate::progress::protocol`]), which the deterministic model-checker
//! ([`crate::progress::modelcheck`]) drives over virtual links. This
//! module only wires cores to the fabric: encode, retry, escalate.
//!
//! By default Naiad accumulates updates at the process level and at the
//! cluster level: each process sends accumulated updates to a central
//! accumulator, which broadcasts their net effect to all workers. The
//! [`ProcessAccumulator`] is shared by a process's workers (deposits) and
//! its router (observations of external broadcasts); the central
//! accumulator runs on its own thread behind an extra fabric endpoint.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naiad_netsim::{
    MembershipEvent, MembershipMsg, MembershipTable, NetReceiver, NetSender, RecvError,
    TrafficClass,
};
use naiad_wire::{encode_to_vec, Bytes};

use super::sync::Mutex;

use crate::progress::{GroupCore, ProgressBatch, ProgressMode, ProgressUpdate};

use super::channels::{
    parse_data_tag, ChannelKey, ProcessRegistry, CENTRAL_TAG, CREDIT_TAG, HEARTBEAT_TAG,
    MEMBERSHIP_TAG, PROGRESS_TAG,
};
use super::flow::{FlowKey, FlowRegistry};
use super::liveness::Liveness;
use super::retry::{escalate, send_with_retry, EscalationCell, FaultKind, RetryPolicy};

pub(crate) use crate::progress::protocol::{CENTRAL_SENDER, PROC_ACC_SENDER_BASE};

/// Idle-tick counters for the hub threads (routers + central
/// accumulator), surfaced through
/// [`HubCounters`](crate::telemetry::HubCounters). Each tick is one
/// *bounded-backoff* receive timeout: the loops double their wait from
/// [`IDLE_WAIT_BASE`] up to [`IDLE_WAIT_MAX`] while quiet and snap back
/// on traffic, so an idle cluster costs a handful of wakeups per second
/// instead of a tight 5 ms re-loop.
#[derive(Debug, Default)]
pub(crate) struct HubStats {
    pub(crate) router_idle_ticks: AtomicU64,
    pub(crate) central_idle_ticks: AtomicU64,
}

/// First idle wait after traffic.
const IDLE_WAIT_BASE: Duration = Duration::from_millis(5);
/// Backoff ceiling; also bounds shutdown-observation latency (the loops
/// only check the shutdown flag on the timeout arm).
const IDLE_WAIT_MAX: Duration = Duration::from_millis(20);

/// Lazily registers `dataflow`'s graph with a [`GroupCore`], looking the
/// graph up in the process registry (a peer's broadcast can outrun local
/// construction, in which case the core stashes the observation itself).
fn ensure_registered(core: &mut GroupCore, registry: &ProcessRegistry, dataflow: usize) {
    if !core.is_registered(dataflow as u32) {
        if let Some(graph) = registry.dataflow_graph(dataflow) {
            core.register(dataflow as u32, graph);
        }
    }
}

/// The process-level accumulator (§3.3): a transport shell around a pure
/// [`GroupCore`]. Workers deposit their journals; the router reports
/// external broadcasts; flushes leave through the fabric according to
/// the progress mode.
pub(crate) struct ProcessAccumulator {
    processes: usize,
    mode: ProgressMode,
    core: GroupCore,
    registry: Arc<ProcessRegistry>,
    net: Arc<Mutex<NetSender>>,
    policy: RetryPolicy,
    escalation: Arc<EscalationCell>,
}

impl ProcessAccumulator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        process: usize,
        processes: usize,
        mode: ProgressMode,
        registry: Arc<ProcessRegistry>,
        net: Arc<Mutex<NetSender>>,
        total_workers: usize,
        policy: RetryPolicy,
        escalation: Arc<EscalationCell>,
    ) -> Self {
        ProcessAccumulator {
            processes,
            mode,
            // In Local+Global mode the central accumulator echoes this
            // process's own updates back, so the view must not also fold
            // flushes (they would double count). In Local mode nothing
            // echoes, so flushes fold immediately.
            core: GroupCore::new(
                PROC_ACC_SENDER_BASE + process as u32,
                mode == ProgressMode::Local,
                total_workers,
            ),
            registry,
            net,
            policy,
            escalation,
        }
    }

    /// This accumulator's sender id.
    pub(crate) fn sender_id(&self) -> u32 {
        self.core.sender()
    }

    /// Deposits a worker's journal; forwards a flush if the §3.3 condition
    /// requires one.
    pub(crate) fn deposit(&mut self, dataflow: usize, updates: Vec<ProgressUpdate>) {
        ensure_registered(&mut self.core, &self.registry, dataflow);
        if let Some(batch) = self.core.deposit(dataflow as u32, updates) {
            self.forward(&batch);
        }
    }

    /// Observes an external broadcast (from another process's accumulator
    /// or the central accumulator); forwards a flush if the buffered
    /// updates are no longer safe to hold.
    pub(crate) fn observe(&mut self, dataflow: usize, updates: &[ProgressUpdate]) {
        ensure_registered(&mut self.core, &self.registry, dataflow);
        if let Some(batch) = self.core.observe(dataflow as u32, updates) {
            self.forward(&batch);
        }
    }

    fn forward(&mut self, batch: &ProgressBatch) {
        let bytes: Bytes = encode_to_vec(batch).into();
        match self.mode {
            ProgressMode::Local => {
                // Broadcast directly to every process (including ours),
                // retrying each link independently so one flaky link never
                // re-sends to links that already accepted the batch.
                for dst in 0..self.processes {
                    self.send_or_escalate(dst, PROGRESS_TAG, &bytes);
                }
            }
            ProgressMode::LocalGlobal => {
                // Up the tree: the central accumulator redistributes.
                self.send_or_escalate(self.processes, CENTRAL_TAG, &bytes);
            }
            _ => unreachable!("process accumulators exist only in local modes"),
        }
    }

    fn send_or_escalate(&self, dst: usize, tag: u32, bytes: &Bytes) {
        if let Err(err) =
            send_with_retry(&self.net, self.policy, dst, tag, TrafficClass::Progress, bytes)
        {
            escalate(&self.escalation, FaultKind::from_send_error(err));
        }
    }
}

/// The cluster-level accumulator thread body (§3.3): receives batches on
/// the extra fabric endpoint, accumulates, and broadcasts net effects to
/// every process.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_central_accumulator(
    mut rx: NetReceiver,
    net: &Arc<Mutex<NetSender>>,
    registry: &ProcessRegistry,
    processes: usize,
    total_workers: usize,
    shutdown: &AtomicBool,
    policy: RetryPolicy,
    escalation: &EscalationCell,
    stats: &HubStats,
) {
    // fold_on_flush: the central accumulator has no table of its own and
    // never hears its broadcasts back, so flushed content folds at flush
    // time to keep cover tests accurate for still-buffered updates.
    let mut core = GroupCore::new(CENTRAL_SENDER, true, total_workers);
    let mut wait = IDLE_WAIT_BASE;
    loop {
        match rx.recv_deadline(Some(wait)) {
            Ok(env) => {
                wait = IDLE_WAIT_BASE;
                debug_assert_eq!(env.channel, CENTRAL_TAG);
                let batch: ProgressBatch = naiad_wire::decode_from_slice(&env.payload)
                    .unwrap_or_else(|e| {
                        panic!(
                            "central accumulator: undecodable progress batch from \
                             endpoint {} ({} bytes) — wire corruption or protocol \
                             mismatch: {e:?}",
                            env.src,
                            env.payload.len()
                        )
                    });
                ensure_registered(&mut core, registry, batch.dataflow as usize);
                if let Some(out) = core.deposit(batch.dataflow, batch.updates) {
                    let bytes: Bytes = encode_to_vec(&out).into();
                    for dst in 0..processes {
                        if let Err(err) = send_with_retry(
                            net,
                            policy,
                            dst,
                            PROGRESS_TAG,
                            TrafficClass::Progress,
                            &bytes,
                        ) {
                            escalate(escalation, FaultKind::from_send_error(err));
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {
                stats.central_idle_ticks.fetch_add(1, Ordering::Relaxed);
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Bounded backoff: quiet periods cost progressively fewer
                // wakeups instead of a tight re-loop.
                wait = (wait * 2).min(IDLE_WAIT_MAX);
            }
            Err(RecvError::Disconnected) => return,
        }
    }
}

/// The per-process router thread body: dispatches incoming fabric traffic
/// to worker queues, fanning progress broadcasts out to every local worker
/// and teeing them into the process accumulator where the mode requires.
///
/// The router also *is* the process's liveness driver: it ticks the
/// failure detector every loop iteration (it wakes at least every
/// `heartbeat_interval / 2` when a detector is installed, even with all
/// workers parked), refreshes peer liveness on every arrival, and raises
/// detected failures on the escalation cell — without panicking itself,
/// so routing continues while the workers unwind.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_router(
    mut rx: NetReceiver,
    registry: &ProcessRegistry,
    workers_per_process: usize,
    accumulator: Option<&Mutex<ProcessAccumulator>>,
    shutdown: &AtomicBool,
    net: &Arc<Mutex<NetSender>>,
    liveness: Option<&Liveness>,
    escalation: &EscalationCell,
    stats: &HubStats,
    membership: MembershipMsg,
    flow: Option<&FlowRegistry>,
) {
    // Lazily resolved progress-inbox senders, one per local worker.
    let progress_txs: Vec<_> = (0..workers_per_process)
        .map(|w| registry.sender::<Bytes>(ChannelKey::Progress(w)))
        .collect();
    // Membership plane (elastic rescaling): announce this process's view
    // of the current generation, then fold peer announcements into a
    // table that dedups chaos re-deliveries and discards pre-rescale
    // stragglers. Announcements are best-effort — a peer we cannot reach
    // is the failure detector's concern, not the membership plane's.
    let mut members = MembershipTable::new(membership.generation, membership.processes);
    members
        .observe(membership)
        // lint-allow(NS0004): the table was seeded from this very
        // announcement two lines up; self-observation cannot conflict.
        .expect("own membership announcement is self-consistent");
    {
        let payload: Bytes = membership.encode().to_vec().into();
        let mut net = net.lock();
        for dst in 0..membership.processes {
            if dst != membership.process {
                let _ = net.send_control(dst, MEMBERSHIP_TAG, payload.clone());
            }
        }
    }
    // With a detector installed the idle wait is additionally capped so
    // heartbeat emission and suspicion scans stay timely.
    let wait_cap = match &liveness {
        Some(live) => (live.interval() / 2).clamp(Duration::from_millis(1), IDLE_WAIT_MAX),
        None => IDLE_WAIT_MAX,
    };
    let mut wait = IDLE_WAIT_BASE.min(wait_cap);
    loop {
        if let Some(live) = &liveness {
            // Emission and detection both ride the router tick: `maybe_beat`
            // is interval-gated internally (one atomic load when not due).
            let detected = live.maybe_beat(net).or_else(|| live.scan());
            if let Some(kind) = detected {
                escalation.raise(kind);
            }
        }
        match rx.recv_deadline(Some(wait)) {
            Ok(env) => {
                wait = IDLE_WAIT_BASE.min(wait_cap);
                if let Some(live) = &liveness {
                    // Any traffic proves the sender alive; heartbeats carry
                    // no other content.
                    live.note_heard(env.src);
                }
                match env.channel {
                    HEARTBEAT_TAG => {}
                    MEMBERSHIP_TAG => {
                        let msg = MembershipMsg::decode(&env.payload).unwrap_or_else(|e| {
                            panic!(
                                "router: undecodable membership announcement from endpoint {} \
                                 ({} bytes) — wire corruption or protocol mismatch: {e}",
                                env.src,
                                env.payload.len()
                            )
                        });
                        match members.observe(msg) {
                            // Admitted peers and idempotent re-deliveries are
                            // the protocol working; stale announcements are
                            // pre-rescale stragglers that must not resurrect
                            // removed peers; a future generation means this
                            // phase is being superseded and will be torn down
                            // by the coordinator momentarily.
                            Ok(
                                MembershipEvent::Admitted
                                | MembershipEvent::Duplicate
                                | MembershipEvent::Stale { .. }
                                | MembershipEvent::Future { .. },
                            ) => {}
                            Err(e) => panic!(
                                "router: membership conflict from endpoint {}: {e}",
                                env.src
                            ),
                        }
                    }
                    PROGRESS_TAG => {
                        for tx in &progress_txs {
                            tx.send(env.payload.clone());
                        }
                        if let Some(acc) = &accumulator {
                            let batch: ProgressBatch =
                                naiad_wire::decode_from_slice(&env.payload).unwrap_or_else(|e| {
                                    panic!(
                                        "router: undecodable progress batch from endpoint {} \
                                         ({} bytes) — wire corruption or protocol mismatch: {e:?}",
                                        env.src,
                                        env.payload.len()
                                    )
                                });
                            let mut acc = acc.lock();
                            // Do not observe our own flushes coming back (they
                            // were folded at flush time in Local mode; in
                            // Local+Global everything arrives via the central
                            // accumulator and must be observed, own updates
                            // included, because flushes were not folded).
                            if batch.sender != acc.sender_id() {
                                acc.observe(batch.dataflow as usize, &batch.updates);
                            }
                        }
                    }
                    CENTRAL_TAG => {
                        unreachable!("central traffic is addressed to the central endpoint")
                    }
                    CREDIT_TAG => {
                        // Credit return from a remote receiver (DESIGN.md
                        // §15): `(data tag, bytes)` for a batch one of our
                        // workers sent to process `env.src` and that has now
                        // been consumed there. Stray returns after a local
                        // reconfiguration are ignored — the flow registry is
                        // per-run.
                        if let Some(flow) = flow {
                            let mut input = &env.payload[..];
                            let decoded = naiad_wire::Wire::decode(&mut input)
                                .and_then(|tag: u32| {
                                    naiad_wire::Wire::decode(&mut input)
                                        .map(|bytes: u64| (tag, bytes))
                                });
                            match decoded {
                                Ok((tag, bytes)) => {
                                    let key =
                                        FlowKey::Remote(membership.process, env.src, tag);
                                    flow.release_key(key, bytes);
                                }
                                Err(e) => panic!(
                                    "router: undecodable credit return from endpoint {} \
                                     ({} bytes): {e:?}",
                                    env.src,
                                    env.payload.len()
                                ),
                            }
                        }
                    }
                    tag => {
                        let (dataflow, channel, dst_local) = parse_data_tag(tag);
                        // The remote-arrival queue carries the source process
                        // alongside the payload so the consuming puller can
                        // route its credit return (DESIGN.md §15).
                        let tx = registry.sender::<(u32, Bytes)>(ChannelKey::RemoteData(
                            dataflow, channel, dst_local,
                        ));
                        tx.send((env.src as u32, env.payload));
                    }
                }
            }
            Err(RecvError::Timeout) => {
                stats.router_idle_ticks.fetch_add(1, Ordering::Relaxed);
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Bounded backoff between idle ticks (capped tighter when a
                // detector needs timely scans).
                wait = (wait * 2).min(wait_cap);
            }
            Err(RecvError::Disconnected) => return,
        }
    }
}
