//! Process-level and cluster-level progress accumulation (§3.3), and the
//! per-process router thread that dispatches fabric traffic.
//!
//! By default Naiad accumulates updates at the process level and at the
//! cluster level: each process sends accumulated updates to a central
//! accumulator, which broadcasts their net effect to all workers. The
//! [`ProcessAccumulator`] is shared by a process's workers (deposits) and
//! its router (observations of external broadcasts); the
//! [`CentralAccumulator`] runs on its own thread behind an extra fabric
//! endpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use naiad_netsim::{NetReceiver, NetSender, RecvError, TrafficClass};
use naiad_wire::{encode_to_vec, Bytes};

use super::sync::Mutex;

use crate::progress::{Accumulator, ProgressBatch, ProgressMode, ProgressUpdate};

use super::channels::{parse_data_tag, ChannelKey, ProcessRegistry, CENTRAL_TAG, PROGRESS_TAG};
use super::retry::{escalate, send_with_retry, EscalationCell, FaultKind, RetryPolicy};

/// Sender-id base for process accumulators (workers use their own index).
pub(crate) const PROC_ACC_SENDER_BASE: u32 = 1 << 24;
/// Sender id of the cluster-level accumulator.
pub(crate) const CENTRAL_SENDER: u32 = 1 << 25;

/// A per-dataflow set of accumulators serving one group of senders.
struct AccumulatorSet {
    accs: HashMap<usize, Accumulator>,
    registry: Arc<ProcessRegistry>,
    fold_on_flush: bool,
    total_workers: usize,
    /// Observations that arrived before this group registered the
    /// dataflow's graph (a peer process can broadcast first); replayed in
    /// arrival order once the graph is known.
    stashed: HashMap<usize, Vec<ProgressUpdate>>,
}

impl AccumulatorSet {
    fn new(registry: Arc<ProcessRegistry>, fold_on_flush: bool, total_workers: usize) -> Self {
        AccumulatorSet {
            accs: HashMap::new(),
            registry,
            fold_on_flush,
            total_workers,
            stashed: HashMap::new(),
        }
    }

    /// The accumulator for `dataflow`, if its graph is known yet.
    fn try_acc(&mut self, dataflow: usize) -> Option<&mut Accumulator> {
        if !self.accs.contains_key(&dataflow) {
            let graph = self.registry.dataflow_graph(dataflow)?;
            let mut acc = Accumulator::new(graph, self.total_workers);
            acc.set_fold_on_flush(self.fold_on_flush);
            if let Some(stashed) = self.stashed.remove(&dataflow) {
                // Pre-registration broadcasts refine the view only; the
                // buffer is empty, so no flush can trigger.
                let flushed = acc.observe(stashed.iter());
                debug_assert!(flushed.is_none(), "empty buffer cannot flush");
            }
            self.accs.insert(dataflow, acc);
        }
        self.accs.get_mut(&dataflow)
    }

    /// The accumulator for `dataflow`; the caller guarantees registration
    /// (local deposits always follow construction).
    fn acc(&mut self, dataflow: usize) -> &mut Accumulator {
        self.try_acc(dataflow)
            .expect("local deposits follow dataflow registration")
    }

    fn stash(&mut self, dataflow: usize, updates: &[ProgressUpdate]) {
        self.stashed
            .entry(dataflow)
            .or_default()
            .extend_from_slice(updates);
    }
}

/// The process-level accumulator (§3.3): workers deposit their journals;
/// the router reports external broadcasts; flushes leave through the
/// fabric according to the progress mode.
pub(crate) struct ProcessAccumulator {
    process: usize,
    processes: usize,
    mode: ProgressMode,
    set: AccumulatorSet,
    net: Arc<Mutex<NetSender>>,
    seq: u64,
    policy: RetryPolicy,
    escalation: Arc<EscalationCell>,
}

impl ProcessAccumulator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        process: usize,
        processes: usize,
        mode: ProgressMode,
        registry: Arc<ProcessRegistry>,
        net: Arc<Mutex<NetSender>>,
        total_workers: usize,
        policy: RetryPolicy,
        escalation: Arc<EscalationCell>,
    ) -> Self {
        ProcessAccumulator {
            process,
            processes,
            mode,
            // In Local+Global mode the central accumulator echoes this
            // process's own updates back, so the view must not also fold
            // flushes (they would double count). In Local mode nothing
            // echoes, so flushes fold immediately.
            set: AccumulatorSet::new(registry, mode == ProgressMode::Local, total_workers),
            net,
            seq: 0,
            policy,
            escalation,
        }
    }

    /// This accumulator's sender id.
    pub(crate) fn sender_id(&self) -> u32 {
        PROC_ACC_SENDER_BASE + self.process as u32
    }

    /// Deposits a worker's journal; forwards a flush if the §3.3 condition
    /// requires one.
    pub(crate) fn deposit(&mut self, dataflow: usize, updates: Vec<ProgressUpdate>) {
        if let Some(flushed) = self.set.acc(dataflow).deposit(updates) {
            self.forward(dataflow, flushed);
        }
    }

    /// Observes an external broadcast (from another process's accumulator
    /// or the central accumulator); forwards a flush if the buffered
    /// updates are no longer safe to hold.
    pub(crate) fn observe(&mut self, dataflow: usize, updates: &[ProgressUpdate]) {
        match self.set.try_acc(dataflow) {
            Some(acc) => {
                if let Some(flushed) = acc.observe(updates.iter()) {
                    self.forward(dataflow, flushed);
                }
            }
            // A peer broadcast can outrun this process's construction.
            None => self.set.stash(dataflow, updates),
        }
    }

    fn forward(&mut self, dataflow: usize, updates: Vec<ProgressUpdate>) {
        let batch = ProgressBatch {
            sender: self.sender_id(),
            seq: self.seq,
            dataflow: dataflow as u32,
            updates,
        };
        self.seq += 1;
        let bytes: Bytes = encode_to_vec(&batch).into();
        match self.mode {
            ProgressMode::Local => {
                // Broadcast directly to every process (including ours),
                // retrying each link independently so one flaky link never
                // re-sends to links that already accepted the batch.
                for dst in 0..self.processes {
                    self.send_or_escalate(dst, PROGRESS_TAG, bytes.clone());
                }
            }
            ProgressMode::LocalGlobal => {
                // Up the tree: the central accumulator redistributes.
                self.send_or_escalate(self.processes, CENTRAL_TAG, bytes);
            }
            _ => unreachable!("process accumulators exist only in local modes"),
        }
    }

    fn send_or_escalate(&self, dst: usize, tag: u32, bytes: Bytes) {
        if let Err(err) =
            send_with_retry(&self.net, self.policy, dst, tag, TrafficClass::Progress, bytes)
        {
            escalate(&self.escalation, FaultKind::from_send_error(err));
        }
    }
}

/// The cluster-level accumulator thread body (§3.3): receives batches on
/// the extra fabric endpoint, accumulates, and broadcasts net effects to
/// every process.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_central_accumulator(
    mut rx: NetReceiver,
    net: Arc<Mutex<NetSender>>,
    registry: Arc<ProcessRegistry>,
    processes: usize,
    total_workers: usize,
    shutdown: Arc<AtomicBool>,
    policy: RetryPolicy,
    escalation: Arc<EscalationCell>,
) {
    let mut set = AccumulatorSet::new(registry, true, total_workers);
    let mut seq = 0u64;
    loop {
        match rx.recv_deadline(Some(std::time::Duration::from_millis(5))) {
            Ok(env) => {
                debug_assert_eq!(env.channel, CENTRAL_TAG);
                let batch: ProgressBatch =
                    naiad_wire::decode_from_slice(&env.payload).expect("corrupt central batch");
                let dataflow = batch.dataflow as usize;
                if let Some(flushed) = set.acc(dataflow).deposit(batch.updates) {
                    let out = ProgressBatch {
                        sender: CENTRAL_SENDER,
                        seq,
                        dataflow: batch.dataflow,
                        updates: flushed,
                    };
                    seq += 1;
                    let bytes: Bytes = encode_to_vec(&out).into();
                    for dst in 0..processes {
                        if let Err(err) = send_with_retry(
                            &net,
                            policy,
                            dst,
                            PROGRESS_TAG,
                            TrafficClass::Progress,
                            bytes.clone(),
                        ) {
                            escalate(&escalation, FaultKind::from_send_error(err));
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvError::Disconnected) => return,
        }
    }
}

/// The per-process router thread body: dispatches incoming fabric traffic
/// to worker queues, fanning progress broadcasts out to every local worker
/// and teeing them into the process accumulator where the mode requires.
pub(crate) fn run_router(
    mut rx: NetReceiver,
    registry: Arc<ProcessRegistry>,
    workers_per_process: usize,
    accumulator: Option<Arc<Mutex<ProcessAccumulator>>>,
    shutdown: Arc<AtomicBool>,
) {
    // Lazily resolved progress-inbox senders, one per local worker.
    let progress_txs: Vec<_> = (0..workers_per_process)
        .map(|w| registry.sender::<Bytes>(ChannelKey::Progress(w)))
        .collect();
    loop {
        match rx.recv_deadline(Some(std::time::Duration::from_millis(5))) {
            Ok(env) => match env.channel {
                PROGRESS_TAG => {
                    for tx in &progress_txs {
                        let _ = tx.send(env.payload.clone());
                    }
                    if let Some(acc) = &accumulator {
                        let batch: ProgressBatch = naiad_wire::decode_from_slice(&env.payload)
                            .expect("corrupt progress batch");
                        let mut acc = acc.lock();
                        // Do not observe our own flushes coming back (they
                        // were folded at flush time in Local mode; in
                        // Local+Global everything arrives via the central
                        // accumulator and must be observed, own updates
                        // included, because flushes were not folded).
                        if batch.sender != acc.sender_id() {
                            acc.observe(batch.dataflow as usize, &batch.updates);
                        }
                    }
                }
                CENTRAL_TAG => {
                    unreachable!("central traffic is addressed to the central endpoint")
                }
                tag => {
                    let (dataflow, channel, dst_local) = parse_data_tag(tag);
                    let tx = registry
                        .sender::<Bytes>(ChannelKey::RemoteData(dataflow, channel, dst_local));
                    let _ = tx.send(env.payload);
                }
            },
            Err(RecvError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvError::Disconnected) => return,
        }
    }
}
