//! Heartbeat-based failure detection (§3.4/§3.5).
//!
//! PR 1's coordinated rollback only fires when a *send* returns a typed
//! fault: a process that crashes or is partitioned while its peers are
//! idle or receive-only is never noticed, and the cluster hangs with the
//! frontier silently stuck. Naiad pairs rollback with active liveness
//! machinery — ping/pong failure detection and lease-based membership —
//! and this module is that half of the loop.
//!
//! One [`Liveness`] detector exists per *process* and is driven from the
//! process's router thread, which ticks every few milliseconds even when
//! all workers are busy or parked:
//!
//! * **Emission** — [`Liveness::maybe_beat`] sends a standalone
//!   heartbeat to every peer once per configured interval, over the
//!   fabric's latency-exempt control channel. Any *data or progress*
//!   traffic refreshes liveness too (the router calls
//!   [`Liveness::note_heard`] on every arrival), so heartbeats
//!   effectively piggyback on progress traffic while it flows and only
//!   go standalone when a link falls quiet.
//! * **Detection** — [`Liveness::scan`] compares each peer's
//!   last-heard timestamp (from the fabric's shared [`ClusterClock`])
//!   against the suspicion and failure thresholds. Crossing the
//!   suspicion threshold is recorded but benign; crossing the failure
//!   threshold returns [`FaultKind::ProcessCrashed`], which the router
//!   escalates into the regular typed-error → coordinated-rollback path.
//! * **Send-side detection** — a heartbeat that bounces with a crash
//!   error is itself a detection: the peer is gone, no timeout needed.
//!   Partition rejections are *not* treated as failures on the send
//!   side (the receive-side timeout owns that, keeping the error
//!   attribution on the unreachable peer rather than the link).
//!
//! Detection latency is bounded by `heartbeat_fail_after` plus one
//! router tick; chaos tests assert the bound. All state is atomic so the
//! router thread scans while worker telemetry drains transitions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use naiad_netsim::{ClusterClock, NetSender, SendError};

use super::channels::HEARTBEAT_TAG;
use super::config::Config;
use super::retry::FaultKind;
use super::sync::Mutex;

/// A state change in the failure detector, drained into worker telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LivenessTransition {
    /// `peer` crossed the suspicion threshold after `silent_ns` of silence.
    Suspected { peer: usize, silent_ns: u64 },
    /// A suspected `peer` was heard from again.
    Cleared { peer: usize },
    /// `peer` crossed the failure threshold after `silent_ns` of silence.
    Failed { peer: usize, silent_ns: u64 },
}

/// Per-process heartbeat emitter and peer failure detector.
#[derive(Debug)]
pub(crate) struct Liveness {
    process: usize,
    interval_ns: u64,
    suspect_ns: u64,
    fail_ns: u64,
    clock: Arc<ClusterClock>,
    /// Per-peer last-heard timestamps (ns on the cluster clock).
    last_heard: Vec<AtomicU64>,
    suspected: Vec<AtomicBool>,
    failed: Vec<AtomicBool>,
    /// Cluster-clock instant of the next standalone heartbeat.
    next_beat: AtomicU64,
    beats_sent: AtomicU64,
    suspicions: AtomicU64,
    failures: AtomicU64,
    transitions: Mutex<Vec<LivenessTransition>>,
    /// Cheap flag so workers can skip the transition lock when idle.
    dirty: AtomicBool,
}

impl Liveness {
    /// Builds a detector for `process` among `processes` peers, reading
    /// cadence and thresholds from `config`. All peers start "heard now":
    /// the grace period before the first suspicion equals the threshold.
    pub(crate) fn new(
        process: usize,
        processes: usize,
        config: &Config,
        clock: Arc<ClusterClock>,
    ) -> Self {
        let as_ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let now = clock.now_ns();
        let mut last_heard = Vec::with_capacity(processes);
        last_heard.resize_with(processes, || AtomicU64::new(now));
        let mut suspected = Vec::with_capacity(processes);
        suspected.resize_with(processes, || AtomicBool::new(false));
        let mut failed = Vec::with_capacity(processes);
        failed.resize_with(processes, || AtomicBool::new(false));
        Liveness {
            process,
            interval_ns: as_ns(config.heartbeat_interval).max(1),
            suspect_ns: as_ns(config.heartbeat_suspect_after).max(1),
            fail_ns: as_ns(config.heartbeat_fail_after).max(1),
            clock,
            last_heard,
            suspected,
            failed,
            next_beat: AtomicU64::new(now),
            beats_sent: AtomicU64::new(0),
            suspicions: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            transitions: Mutex::default(),
            dirty: AtomicBool::new(false),
        }
    }

    /// The configured heartbeat interval (used to cap the router's idle
    /// backoff so detector ticks stay timely).
    pub(crate) fn interval(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.interval_ns)
    }

    fn push_transition(&self, t: LivenessTransition) {
        self.transitions.lock().push(t);
        self.dirty.store(true, Ordering::Release);
    }

    /// Records that traffic arrived from `peer`. Out-of-range sources
    /// (the central accumulator's extra endpoint) are ignored. Clears any
    /// standing suspicion.
    pub(crate) fn note_heard(&self, peer: usize) {
        let (Some(slot), Some(sus)) = (self.last_heard.get(peer), self.suspected.get(peer))
        else {
            return;
        };
        slot.store(self.clock.now_ns(), Ordering::Release);
        if sus.swap(false, Ordering::AcqRel) {
            self.push_transition(LivenessTransition::Cleared { peer });
        }
    }

    /// Emits standalone heartbeats if the interval elapsed. Transient
    /// failures (drops, partitions) and vanished endpoints are ignored —
    /// the receive-side timeout owns those — but a crash error is an
    /// immediate detection and is returned for escalation.
    pub(crate) fn maybe_beat(&self, net: &Arc<Mutex<NetSender>>) -> Option<FaultKind> {
        let now = self.clock.now_ns();
        // Single consumer (the router thread), so a plain load-check-store
        // is race-free; atomics are only for the workers' reads.
        if now < self.next_beat.load(Ordering::Acquire) {
            return None;
        }
        self.next_beat
            .store(now.saturating_add(self.interval_ns), Ordering::Release);

        let payload: naiad_wire::Bytes = now.to_le_bytes().to_vec().into();
        let mut detected = None;
        {
            let mut net = net.lock();
            for dst in 0..self.last_heard.len() {
                if dst == self.process {
                    continue;
                }
                match net.send_control(dst, HEARTBEAT_TAG, payload.clone()) {
                    Ok(()) => {
                        self.beats_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    // Receive-side timeout owns partition detection; a
                    // vanished endpoint means orderly teardown.
                    Err(SendError::Dropped { .. })
                    | Err(SendError::Partitioned { .. })
                    | Err(SendError::Disconnected { .. }) => {}
                    Err(SendError::PeerCrashed { dst }) => {
                        let fresh = self
                            .failed
                            .get(dst)
                            .is_some_and(|f| !f.swap(true, Ordering::AcqRel));
                        if fresh {
                            self.failures.fetch_add(1, Ordering::Relaxed);
                            let silent_ns = self.last_heard.get(dst).map_or(0, |h| {
                                now.saturating_sub(h.load(Ordering::Acquire))
                            });
                            self.push_transition(LivenessTransition::Failed {
                                peer: dst,
                                silent_ns,
                            });
                        }
                        detected.get_or_insert(FaultKind::ProcessCrashed { process: dst });
                    }
                    Err(SendError::SelfCrashed { src }) => {
                        detected.get_or_insert(FaultKind::ProcessCrashed { process: src });
                    }
                }
            }
        }
        detected
    }

    /// Sweeps the peer table: raises suspicions past `suspect_ns` of
    /// silence and returns a failure once a peer passes `fail_ns`.
    pub(crate) fn scan(&self) -> Option<FaultKind> {
        let now = self.clock.now_ns();
        let mut detected = None;
        for (peer, heard) in self.last_heard.iter().enumerate() {
            if peer == self.process {
                continue;
            }
            let silent_ns = now.saturating_sub(heard.load(Ordering::Acquire));
            if silent_ns >= self.fail_ns {
                let fresh = self
                    .failed
                    .get(peer)
                    .is_some_and(|f| !f.swap(true, Ordering::AcqRel));
                if fresh {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    self.push_transition(LivenessTransition::Failed { peer, silent_ns });
                }
                detected.get_or_insert(FaultKind::ProcessCrashed { process: peer });
            } else if silent_ns >= self.suspect_ns
                && self
                    .suspected
                    .get(peer)
                    .is_some_and(|s| !s.swap(true, Ordering::AcqRel))
            {
                self.suspicions.fetch_add(1, Ordering::Relaxed);
                self.push_transition(LivenessTransition::Suspected { peer, silent_ns });
            }
        }
        detected
    }

    /// Drains accumulated detector transitions (for worker telemetry).
    /// Cheap when nothing happened: one relaxed load, no lock.
    pub(crate) fn drain_transitions(&self) -> Vec<LivenessTransition> {
        if !self.dirty.swap(false, Ordering::AcqRel) {
            return Vec::new();
        }
        std::mem::take(&mut *self.transitions.lock())
    }

    /// Standalone heartbeats successfully emitted.
    pub(crate) fn beats_sent(&self) -> u64 {
        self.beats_sent.load(Ordering::Relaxed)
    }

    /// Peer-suspected transitions raised.
    pub(crate) fn suspicions(&self) -> u64 {
        self.suspicions.load(Ordering::Relaxed)
    }

    /// Peer-failed declarations raised.
    pub(crate) fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_netsim::Fabric;
    use std::time::Duration;

    fn config(interval_ms: u64, suspect_ms: u64, fail_ms: u64) -> Config {
        Config::processes_and_workers(2, 1)
            .heartbeats(true)
            .heartbeat_interval(Duration::from_millis(interval_ms))
            .heartbeat_timeouts(
                Duration::from_millis(suspect_ms),
                Duration::from_millis(fail_ms),
            )
    }

    fn two_process_fixture(
        cfg: &Config,
    ) -> (
        Arc<Mutex<NetSender>>,
        naiad_netsim::NetReceiver,
        naiad_netsim::FaultController,
        Liveness,
    ) {
        let mut eps = Fabric::builder(2).build();
        let ctl = eps[0].fault_controller();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let clock = a.clock().clone();
        let (a_tx, _a_rx) = a.split();
        let (_b_tx, b_rx) = b.split();
        let live = Liveness::new(0, 2, cfg, clock);
        (Arc::new(Mutex::new(a_tx)), b_rx, ctl, live)
    }

    #[test]
    fn beats_are_interval_gated_and_reach_peers() {
        let cfg = config(5, 50, 200);
        let (net, mut b_rx, _ctl, live) = two_process_fixture(&cfg);
        assert!(live.maybe_beat(&net).is_none());
        assert_eq!(live.beats_sent(), 1, "first beat fires immediately");
        // Immediately again: gated by the interval.
        assert!(live.maybe_beat(&net).is_none());
        assert_eq!(live.beats_sent(), 1);
        let env = b_rx.try_recv().expect("heartbeat delivered");
        assert_eq!(env.channel, HEARTBEAT_TAG);
        assert_eq!(env.src, 0);
        std::thread::sleep(Duration::from_millis(6));
        assert!(live.maybe_beat(&net).is_none());
        assert_eq!(live.beats_sent(), 2, "interval elapsed, beat again");
    }

    #[test]
    fn silence_escalates_suspected_then_failed() {
        let cfg = config(1, 5, 20);
        let (_net, _b_rx, _ctl, live) = two_process_fixture(&cfg);
        assert!(live.scan().is_none(), "fresh table: everyone live");
        std::thread::sleep(Duration::from_millis(7));
        assert!(live.scan().is_none(), "suspected is not yet failed");
        assert_eq!(live.suspicions(), 1);
        let ts = live.drain_transitions();
        assert!(matches!(
            ts.as_slice(),
            [LivenessTransition::Suspected { peer: 1, .. }]
        ));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(
            live.scan(),
            Some(FaultKind::ProcessCrashed { process: 1 })
        );
        assert_eq!(live.failures(), 1);
        // Idempotent: a second scan re-detects but records one failure.
        assert!(live.scan().is_some());
        assert_eq!(live.failures(), 1);
        assert!(matches!(
            live.drain_transitions().as_slice(),
            [LivenessTransition::Failed { peer: 1, .. }]
        ));
        assert!(live.drain_transitions().is_empty(), "drain empties");
    }

    #[test]
    fn traffic_clears_suspicion() {
        let cfg = config(1, 5, 60_000);
        let (_net, _b_rx, _ctl, live) = two_process_fixture(&cfg);
        std::thread::sleep(Duration::from_millis(7));
        assert!(live.scan().is_none());
        assert_eq!(live.suspicions(), 1);
        live.note_heard(1);
        let ts = live.drain_transitions();
        assert!(ts.contains(&LivenessTransition::Cleared { peer: 1 }));
        std::thread::sleep(Duration::from_millis(2));
        assert!(live.scan().is_none());
        assert_eq!(live.suspicions(), 1, "cleared peer is not re-suspected");
        // The central accumulator's out-of-range endpoint id is ignored.
        live.note_heard(99);
    }

    #[test]
    fn crashed_peer_is_detected_on_send() {
        let cfg = config(1, 50, 200);
        let (net, _b_rx, ctl, live) = two_process_fixture(&cfg);
        ctl.crash(1);
        assert_eq!(
            live.maybe_beat(&net),
            Some(FaultKind::ProcessCrashed { process: 1 })
        );
        assert_eq!(live.failures(), 1);
        assert_eq!(live.beats_sent(), 0);
    }

    #[test]
    fn partitioned_link_is_not_a_send_side_failure() {
        let cfg = config(1, 50, 200);
        let (net, _b_rx, ctl, live) = two_process_fixture(&cfg);
        ctl.sever(0, 1);
        assert!(live.maybe_beat(&net).is_none(), "timeout owns partitions");
        assert_eq!(live.failures(), 0);
    }
}
