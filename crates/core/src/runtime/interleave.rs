//! A miniature loom: exhaustive, preemption-bounded exploration of
//! thread interleavings over the [`sync`](super::sync) shims.
//!
//! Compiled only under `--cfg loom`. The workspace is dependency-free,
//! so instead of the `loom` crate this module carries its own explorer:
//! real OS threads driven by a cooperative token scheduler. Exactly one
//! thread runs at a time; every shim operation (atomic access, mutex
//! acquire/release, condvar wait/notify) is a *yield point* where the
//! scheduler may hand the token to a different runnable thread. The
//! driver enumerates schedules depth-first: each run records the choice
//! made at every yield point, and the next run replays a prefix and
//! bends the last bendable choice.
//!
//! **Preemption bounding.** Unbounded exploration of even two threads
//! with ~15 yield points each is ~C(30,15) ≈ 155M schedules. Bounding
//! the number of *involuntary* switches (taking the token from a thread
//! that could have continued) to a small constant cuts that to a few
//! thousand while still covering every bug reachable with that many
//! preemptions — most real races, including the PR 8 credit-gauge
//! ordering race, need exactly one. Voluntary switches (the running
//! thread blocked or finished) are free.
//!
//! **Timeouts.** The model ignores wall-clock durations: a timed condvar
//! waiter is *rescuable* — if every thread is blocked, timed waiters are
//! woken as timed-out, which models timeout expiry without real sleeps.
//! If no thread is rescuable the schedule is a genuine deadlock and the
//! explorer panics with the choice trace as a witness.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard,
    PoisonError};

thread_local! {
    /// The model-thread index of the current OS thread, if the explorer
    /// spawned it.
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The exploration currently driving model threads, if any. Read by
/// every shim operation; `None` (or a thread with no [`TID`]) means
/// passthrough.
static ACTIVE: StdMutex<Option<Arc<Sched>>> = StdMutex::new(None);

/// Serializes explorations: the shims route through one global
/// [`ACTIVE`] slot, so two concurrent `explore` calls (cargo's parallel
/// test threads) must take turns.
static EXPLORE_SERIAL: StdMutex<()> = StdMutex::new(());

static NEXT_OBJECT: AtomicUsize = AtomicUsize::new(0);

/// A fresh model identity for a mutex or condvar.
pub(crate) fn next_object_id() -> usize {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked,
    Finished,
}

struct CvWaiter {
    tid: usize,
    /// Timed waiters can be rescued (woken as timed-out) when the
    /// schedule would otherwise deadlock.
    timed: bool,
}

struct State {
    run: Vec<Run>,
    /// The thread holding the execution token; `None` while the
    /// controller picks the next one.
    current: Option<usize>,
    /// The last thread scheduled (preemption accounting).
    prev: Option<usize>,
    preemptions: usize,
    bound: usize,
    /// Yield points consumed so far this schedule.
    step: usize,
    /// Choices to replay from the previous schedule's prefix.
    replay: Vec<usize>,
    /// `(choice index, options available)` per yield point, recorded for
    /// backtracking and as the witness trace.
    taken: Vec<(usize, usize)>,
    mutex_owner: HashMap<usize, usize>,
    mutex_waiters: HashMap<usize, Vec<usize>>,
    cv_waiters: HashMap<usize, Vec<CvWaiter>>,
    /// Per-thread flag handed back by `condvar_wait`: the wake was a
    /// rescue (modeled timeout), not a notification.
    timed_out: Vec<bool>,
    rescues: usize,
    /// A model thread panicked (a real finding, or a cascading abort);
    /// the controller then force-wakes the rest so joins terminate.
    failed: bool,
    /// The controller gave up (deadlock/livelock); threads must unwind.
    shutdown: bool,
}

pub(crate) struct Sched {
    m: StdMutex<State>,
    cv: StdCondvar,
}

// lint-allow(NS0004): explorer state vectors are sized to the thread
// count at construction and indexed only by controller-issued tids.
impl Sched {
    fn new(threads: usize, bound: usize, replay: Vec<usize>) -> Self {
        Sched {
            m: StdMutex::new(State {
                run: vec![Run::Runnable; threads],
                current: None,
                prev: None,
                preemptions: 0,
                bound,
                step: 0,
                replay,
                taken: Vec::new(),
                mutex_owner: HashMap::new(),
                mutex_waiters: HashMap::new(),
                cv_waiters: HashMap::new(),
                timed_out: vec![false; threads],
                rescues: 0,
                failed: false,
                shutdown: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn state(&self) -> StdGuard<'_, State> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks the calling model thread until the controller grants it
    /// the token (or shuts the exploration down).
    fn wait_for_grant<'a>(&'a self, mut st: StdGuard<'a, State>, tid: usize) -> StdGuard<'a, State> {
        loop {
            if st.shutdown {
                drop(st);
                panic!("interleave: exploration shut down");
            }
            if st.current == Some(tid) {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Yield point: hand the token back and wait to be rescheduled.
    fn pause(&self, tid: usize) {
        let mut st = self.state();
        if st.current != Some(tid) {
            // Shim op on a model thread the controller has not granted
            // yet (e.g. inside thread-startup glue): wait for the first
            // grant instead of yielding one we do not hold.
            let _st = self.wait_for_grant(st, tid);
            return;
        }
        st.current = None;
        self.cv.notify_all();
        let _st = self.wait_for_grant(st, tid);
    }

    /// Marks the calling thread blocked (caller already registered it on
    /// a waiter list), releases the token, and waits to be rescheduled.
    fn block<'a>(&'a self, mut st: StdGuard<'a, State>, tid: usize) -> StdGuard<'a, State> {
        st.run[tid] = Run::Blocked;
        st.current = None;
        self.cv.notify_all();
        self.wait_for_grant(st, tid)
    }

    /// The controller loop: waits for the token to come home, picks the
    /// next runnable thread (replaying recorded choices, then defaulting
    /// to "continue the previous thread"), and records every decision.
    fn drive(&self) -> Result<Vec<(usize, usize)>, String> {
        let mut st = self.state();
        let mut iterations = 0usize;
        loop {
            while st.current.is_some() {
                st = match self.cv.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            if st.run.iter().all(|r| *r == Run::Finished) {
                return Ok(st.taken.clone());
            }
            iterations += 1;
            if iterations > 200_000 {
                st.shutdown = true;
                self.cv.notify_all();
                return Err("interleave: schedule exceeded 200k steps (livelock?)".into());
            }
            let mut options: Vec<usize> = (0..st.run.len())
                .filter(|&t| st.run[t] == Run::Runnable)
                .collect();
            if options.is_empty() {
                if !self.rescue(&mut st) {
                    let trace = st.taken.clone();
                    st.shutdown = true;
                    self.cv.notify_all();
                    return Err(format!(
                        "interleave: deadlock — all threads blocked, none rescuable \
                         (witness schedule {trace:?})"
                    ));
                }
                continue;
            }
            // Continuing the previous thread is choice 0 (free); any
            // other pick while it could continue costs a preemption.
            let prev_runnable = match st.prev {
                Some(p) => {
                    if let Some(pos) = options.iter().position(|&t| t == p) {
                        options.remove(pos);
                        options.insert(0, p);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if prev_runnable && st.preemptions >= st.bound {
                options.truncate(1);
            }
            let choice = if st.step < st.replay.len() {
                st.replay[st.step]
            } else {
                0
            };
            if choice >= options.len() {
                let trace = st.taken.clone();
                st.shutdown = true;
                self.cv.notify_all();
                return Err(format!(
                    "interleave: replay diverged at step {} (choice {choice} of {} options, \
                     prefix {trace:?})",
                    st.step,
                    options.len()
                ));
            }
            let tid = options[choice];
            if prev_runnable && choice != 0 {
                st.preemptions += 1;
            }
            st.step += 1;
            st.taken.push((choice, options.len()));
            st.prev = Some(tid);
            st.current = Some(tid);
            self.cv.notify_all();
        }
    }

    /// Wakes blocked threads when nothing is runnable: timed condvar
    /// waiters wake as timed-out (modeled timeout expiry); after a
    /// thread panic *every* waiter is woken so the run can unwind.
    /// Returns whether anyone woke.
    fn rescue(&self, st: &mut State) -> bool {
        st.rescues += 1;
        if st.rescues > 1_000 {
            return false;
        }
        let rescue_all = st.failed;
        let mut woke = false;
        let cv_ids: Vec<usize> = st.cv_waiters.keys().copied().collect();
        for cv in cv_ids {
            let Some(waiters) = st.cv_waiters.remove(&cv) else {
                continue;
            };
            let mut keep = Vec::new();
            for w in waiters {
                if w.timed || rescue_all {
                    st.run[w.tid] = Run::Runnable;
                    st.timed_out[w.tid] = w.timed;
                    woke = true;
                } else {
                    keep.push(w);
                }
            }
            if !keep.is_empty() {
                st.cv_waiters.insert(cv, keep);
            }
        }
        woke
    }
}

/// Restores scheduler invariants when a model thread exits — normally or
/// by panic. On panic it releases the thread's model mutexes (their
/// state is torn, but the run is aborting and the payload is re-thrown)
/// so the surviving threads can unwind instead of deadlocking the join.
struct Finisher {
    sched: Arc<Sched>,
    tid: usize,
}

// lint-allow(NS0004): indices are controller-issued tids, in range by
// construction.
impl Drop for Finisher {
    fn drop(&mut self) {
        let mut st = self.sched.state();
        st.run[self.tid] = Run::Finished;
        if std::thread::panicking() && !st.shutdown {
            st.failed = true;
            let owned: Vec<usize> = st
                .mutex_owner
                .iter()
                .filter(|&(_, &owner)| owner == self.tid)
                .map(|(&id, _)| id)
                .collect();
            for id in owned {
                st.mutex_owner.remove(&id);
                if let Some(ws) = st.mutex_waiters.remove(&id) {
                    for w in ws {
                        st.run[w] = Run::Runnable;
                    }
                }
            }
        }
        if st.current == Some(self.tid) {
            st.current = None;
        }
        self.sched.cv.notify_all();
    }
}

/// The exploration's scheduler handle for the calling thread, when it is
/// a model thread of an active exploration.
fn scheduler() -> Option<(Arc<Sched>, usize)> {
    let tid = TID.with(Cell::get)?;
    let sched = ACTIVE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    Some((sched, tid))
}

/// Whether the calling thread is owned by an active exploration.
pub(crate) fn on_model_thread() -> bool {
    scheduler().is_some()
}

/// A plain schedule point: the shims call this before every atomic
/// access. No-op off the model.
pub(crate) fn yield_point() {
    if let Some((sched, tid)) = scheduler() {
        sched.pause(tid);
    }
}

/// Model-acquires mutex `id`, blocking (in model time) while held.
pub(crate) fn mutex_lock(id: usize) {
    let Some((sched, tid)) = scheduler() else {
        return;
    };
    loop {
        sched.pause(tid);
        let mut st = sched.state();
        if st.mutex_owner.contains_key(&id) {
            st.mutex_waiters.entry(id).or_default().push(tid);
            drop(sched.block(st, tid));
            // Woken by the release; loop and race the other waiters
            // (the schedule decides who wins).
        } else {
            st.mutex_owner.insert(id, tid);
            return;
        }
    }
}

/// Model-acquires mutex `id` only if free right now. Off-model this
/// answers `true` (the std try_lock decides).
pub(crate) fn mutex_try_lock(id: usize) -> bool {
    let Some((sched, tid)) = scheduler() else {
        return true;
    };
    sched.pause(tid);
    let mut st = sched.state();
    if st.mutex_owner.contains_key(&id) {
        false
    } else {
        st.mutex_owner.insert(id, tid);
        true
    }
}

/// Model-releases mutex `id` and wakes its waiters; the release is a
/// schedule point.
// lint-allow(NS0004): waiter tids come off the scheduler's own lists,
// in range by construction.
pub(crate) fn mutex_unlock(id: usize) {
    let Some((sched, tid)) = scheduler() else {
        return;
    };
    {
        let mut st = sched.state();
        st.mutex_owner.remove(&id);
        if let Some(ws) = st.mutex_waiters.remove(&id) {
            for w in ws {
                st.run[w] = Run::Runnable;
            }
        }
    }
    sched.pause(tid);
}

/// Atomically (under the schedule token) releases mutex `mutex_id` and
/// parks on condvar `cv_id`. Returns whether the wake was a modeled
/// timeout. The caller re-acquires the mutex afterwards.
// lint-allow(NS0004): tids come off the scheduler's own lists, in range
// by construction.
pub(crate) fn condvar_wait(cv_id: usize, mutex_id: usize, timed: bool) -> bool {
    let Some((sched, tid)) = scheduler() else {
        return false;
    };
    let mut st = sched.state();
    st.mutex_owner.remove(&mutex_id);
    if let Some(ws) = st.mutex_waiters.remove(&mutex_id) {
        for w in ws {
            st.run[w] = Run::Runnable;
        }
    }
    st.cv_waiters
        .entry(cv_id)
        .or_default()
        .push(CvWaiter { tid, timed });
    st.timed_out[tid] = false;
    let mut st = sched.block(st, tid);
    let timed_out = st.timed_out[tid];
    st.timed_out[tid] = false;
    timed_out
}

/// Model-notifies condvar `cv_id`; a schedule point.
// lint-allow(NS0004): woken tids come off the scheduler's own lists, in
// range by construction.
pub(crate) fn condvar_notify(cv_id: usize, all: bool) {
    let Some((sched, tid)) = scheduler() else {
        return;
    };
    sched.pause(tid);
    let mut st = sched.state();
    let Some(ws) = st.cv_waiters.get_mut(&cv_id) else {
        return;
    };
    let woken: Vec<usize> = if all {
        ws.drain(..).map(|w| w.tid).collect()
    } else if ws.is_empty() {
        Vec::new()
    } else {
        vec![ws.remove(0).tid]
    };
    for w in woken {
        st.run[w] = Run::Runnable;
    }
}

/// Exploration parameters.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct Explore {
    /// Involuntary context switches allowed per schedule.
    pub(crate) preemption_bound: usize,
    /// Hard cap on schedules explored (runaway-state-space backstop).
    pub(crate) max_schedules: usize,
}

impl Default for Explore {
    fn default() -> Self {
        Explore {
            preemption_bound: 2,
            max_schedules: 100_000,
        }
    }
}

/// Runs `factory`'s threads under every schedule reachable within the
/// default preemption bound. Panics (with the witness trace) if any
/// schedule panics or deadlocks. Returns the number of schedules
/// explored.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn explore(factory: impl Fn() -> Vec<Box<dyn FnOnce() + Send>>) -> usize {
    explore_with(&Explore::default(), factory)
}

/// [`explore`] with explicit parameters.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn explore_with(
    opts: &Explore,
    factory: impl Fn() -> Vec<Box<dyn FnOnce() + Send>>,
) -> usize {
    let _serial = EXPLORE_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let taken = run_schedule(opts, &replay, factory());
        schedules += 1;
        assert!(
            schedules < opts.max_schedules,
            "interleave: {schedules} schedules without exhausting the space \
             (raise max_schedules or lower the preemption bound)"
        );
        // Depth-first backtrack: bend the deepest bendable choice.
        let mut prefix = taken;
        loop {
            match prefix.pop() {
                None => return schedules,
                Some((idx, n)) if idx + 1 < n => {
                    prefix.push((idx + 1, n));
                    break;
                }
                Some(_) => {}
            }
        }
        replay = prefix.iter().map(|&(idx, _)| idx).collect();
    }
}

fn run_schedule(
    opts: &Explore,
    replay: &[usize],
    bodies: Vec<Box<dyn FnOnce() + Send>>,
) -> Vec<(usize, usize)> {
    let sched = Arc::new(Sched::new(bodies.len(), opts.preemption_bound, replay.to_vec()));
    *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = Some(sched.clone());
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let sched = sched.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || {
                    TID.with(|slot| slot.set(Some(tid)));
                    let _finisher = Finisher {
                        sched: sched.clone(),
                        tid,
                    };
                    {
                        let st = sched.state();
                        drop(sched.wait_for_grant(st, tid));
                    }
                    body();
                });
            match spawned {
                Ok(handle) => handle,
                Err(e) => panic!("interleave: thread spawn failed: {e}"),
            }
        })
        .collect();
    let drive_result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sched.drive()));
    let mut thread_payload = None;
    for handle in handles {
        if let Err(payload) = handle.join() {
            if thread_payload.is_none() {
                thread_payload = Some(payload);
            }
        }
    }
    *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    let failed = sched.state().failed;
    if failed {
        if let Some(payload) = thread_payload {
            // A model thread's own assertion is the finding; re-throw it
            // over any secondary controller error.
            std::panic::resume_unwind(payload);
        }
    }
    match drive_result {
        Ok(Ok(taken)) => {
            if let Some(payload) = thread_payload {
                std::panic::resume_unwind(payload);
            }
            taken
        }
        Ok(Err(msg)) => panic!("{msg}"),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};

    use crate::runtime::sync::{AtomicU64, Condvar, Mutex};

    /// Two threads incrementing through a model mutex: every schedule
    /// must end at 2, and with two yield-heavy bodies the bounded DFS
    /// still visits more than one schedule.
    #[test]
    fn loom_mutex_exclusion_across_all_schedules() {
        let schedules = explore(|| {
            let counter = std::sync::Arc::new(Mutex::new(0u32));
            let done = std::sync::Arc::new(StdAtomicUsize::new(0));
            (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    let done = done.clone();
                    Box::new(move || {
                        let mut g = counter.lock();
                        let v = *g;
                        *g = v + 1;
                        drop(g);
                        if done.fetch_add(1, Ordering::SeqCst) == 1 {
                            assert_eq!(*counter.lock(), 2, "lost update");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect()
        });
        assert!(schedules > 1, "explorer must branch, got {schedules}");
    }

    /// A torn non-atomic-style update through *separate* shim atomics
    /// (read, then write) IS found: some schedule loses an update, and
    /// the explorer surfaces the assertion. This is the explorer's
    /// self-test that it actually interleaves at shim granularity.
    #[test]
    fn loom_explorer_finds_a_seeded_lost_update() {
        let found = std::panic::catch_unwind(|| {
            explore(|| {
                let cell = std::sync::Arc::new(AtomicU64::new(0));
                let done = std::sync::Arc::new(StdAtomicUsize::new(0));
                (0..2)
                    .map(|_| {
                        let cell = cell.clone();
                        let done = done.clone();
                        Box::new(move || {
                            // Deliberately racy read-modify-write.
                            let v = cell.load(Ordering::SeqCst);
                            cell.store(v + 1, Ordering::SeqCst);
                            if done.fetch_add(1, Ordering::SeqCst) == 1 {
                                assert_eq!(
                                    cell.load(Ordering::SeqCst),
                                    2,
                                    "seeded lost update"
                                );
                            }
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect()
            });
        });
        assert!(
            found.is_err(),
            "the seeded read/store race must be caught by some schedule"
        );
    }

    /// Condvar protocol under the model: a consumer parks, a producer
    /// flips the flag and notifies; every schedule terminates and the
    /// consumer always observes the flag.
    #[test]
    fn loom_condvar_handshake_terminates_everywhere() {
        explore(|| {
            let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
            let consumer = shared.clone();
            let producer = shared;
            vec![
                Box::new(move || {
                    let (m, cv) = (&consumer.0, &consumer.1);
                    let mut g = m.lock();
                    while !*g {
                        let (g2, _timed_out) =
                            cv.wait_timeout(g, std::time::Duration::from_secs(1));
                        g = g2;
                    }
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    let (m, cv) = (&producer.0, &producer.1);
                    *m.lock() = true;
                    cv.notify_all();
                }) as Box<dyn FnOnce() + Send>,
            ]
        });
    }

    /// SlabPool conservation under concurrent returns: two pooled
    /// payloads dropped from two threads — in every interleaving the
    /// pool ends with nothing in use and both buffers accounted for
    /// (returned or discarded), never double-returned. The wire crate's
    /// loom hook routes its internal pause points through this explorer
    /// so the puts genuinely interleave.
    #[test]
    fn loom_slab_pool_returns_exactly_once() {
        naiad_wire::slab_loom_hook(yield_point);
        explore(|| {
            let pool = std::sync::Arc::new(naiad_wire::SlabPool::default());
            let a = {
                let mut slab = pool.get(64);
                slab.buffer().extend_from_slice(&[1u8; 16]);
                slab.freeze()
            };
            let b = {
                let mut slab = pool.get(64);
                slab.buffer().extend_from_slice(&[2u8; 16]);
                slab.freeze()
            };
            let pool_after = pool.clone();
            let done = std::sync::Arc::new(StdAtomicUsize::new(0));
            let done2 = done.clone();
            vec![
                Box::new(move || {
                    drop(a);
                    if done.fetch_add(1, Ordering::SeqCst) == 1 {
                        check_conserved(&pool_after);
                    }
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    drop(b);
                    if done2.fetch_add(1, Ordering::SeqCst) == 1 {
                        check_conserved(&pool);
                    }
                }) as Box<dyn FnOnce() + Send>,
            ]
        });
    }

    fn check_conserved(pool: &naiad_wire::SlabPool) {
        let g = pool.gauges();
        assert_eq!(g.in_use_slabs, 0, "every checkout must be closed");
        assert_eq!(
            g.slab_returns + g.slab_discards,
            2,
            "each buffer returns or discards exactly once: {g:?}"
        );
        assert_eq!(g.resident_slabs, g.slab_returns, "free lists match returns");
    }
}
