//! Credit-based flow control for the data plane (DESIGN.md §15).
//!
//! Every `TrafficClass::Data` queue — intra-process typed queues and the
//! serialized remote-arrival path — is wrapped in byte-denominated credit
//! accounting: senders spend credits when a batch is emitted, receivers
//! return them when the batch is consumed. A sender out of credits parks
//! on the queue's [`CreditCell`] and is woken by the next credit return;
//! remote returns ride the existing control plane (`CREDIT_TAG`) so they
//! are exempt from latency injection and probabilistic loss, exactly like
//! heartbeats.
//!
//! **Plane exemptions.** Progress and Control traffic are *never*
//! credited. Progress batches are small, bounded per step, and carry the
//! occurrence-count deltas the §3.3 protocol needs to *retire* work —
//! bounding them with data-plane credits would let a full data queue
//! block the very retirements that free it, a protocol-level deadlock.
//! The model-checker's `StarveCredits` chaos knob pins this invariant:
//! progress delivery never consults the credit ledger.
//!
//! **Deadlock freedom.** A parked sender never waits forever: after
//! [`FlowConfig::credit_wait`] it escapes — under [`ShedPolicy::Block`]
//! it overdrafts (the batch is sent anyway and the overdraft is counted),
//! under [`ShedPolicy::Shed`] while the worker's overload state is
//! `Shedding` the batch is dropped with exact counts (journaled `+1`
//! then `−1`, so the progress protocol stays sound). A batch offered to
//! an *empty* queue is always admitted even if it alone exceeds the
//! budget, so one oversized batch cannot wedge a channel. Self-routed
//! batches (destination worker == sending worker) are exempt from
//! parking: a worker blocking on a queue only it drains is a guaranteed
//! self-deadlock — their depth is bounded upstream by the admission
//! window and by the credits on every cross-worker edge feeding them.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::config::TuningKnobs;
// Loom-schedulable shims: plain std re-exports outside `--cfg loom`, so
// this module's concurrency is exactly what the interleaving explorer
// (runtime::interleave) model-checks.
use super::sync::{AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard};

/// What a sender does when its bounded credit wait expires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Lossless: send anyway and count an *overdraft*. The budget is a
    /// soft ceiling that can be pierced only after a full credit wait,
    /// so throughput degrades before memory does.
    #[default]
    Block,
    /// Loss-tolerant: while the worker's overload state is `Shedding`,
    /// drop the batch and count exactly what was dropped (records and
    /// bytes). Outside `Shedding` the policy behaves like `Block`.
    Shed,
}

/// Flow-control configuration ([`Config::flow`](super::config::Config::flow)).
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Byte budget per data queue. Senders park when a queue's in-flight
    /// bytes would exceed it.
    pub budget: usize,
    /// Bound on a single credit wait before the sender escapes
    /// (overdraft or shed). Keeps parking deadlock-free by construction.
    pub credit_wait: Duration,
    /// Escape policy after a full credit wait.
    pub policy: ShedPolicy,
    /// Ingress admission window: at most this many epochs may be open
    /// beyond the input frontier
    /// ([`InputHandle::try_advance_to`](crate::dataflow::InputHandle::try_advance_to)).
    /// `None` leaves ingest unbounded.
    pub max_open_epochs: Option<u64>,
    /// In-flight/budget ratio at which the overload monitor leaves
    /// `Normal` for `Throttled`.
    pub throttle_at: f64,
    /// In-flight/budget ratio at which the monitor enters `Shedding`.
    pub shed_at: f64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            budget: 1 << 20,
            credit_wait: Duration::from_millis(20),
            policy: ShedPolicy::Block,
            max_open_epochs: None,
            throttle_at: 0.5,
            shed_at: 0.9,
        }
    }
}

impl FlowConfig {
    /// Sets the per-queue byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn budget(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "credit budget must be positive");
        self.budget = bytes;
        self
    }

    /// Sets the bounded credit wait.
    ///
    /// # Panics
    ///
    /// Panics if `wait` is zero (a zero wait would turn every contention
    /// into an immediate overdraft, defeating the budget).
    pub fn credit_wait(mut self, wait: Duration) -> Self {
        assert!(!wait.is_zero(), "credit wait must be positive");
        self.credit_wait = wait;
        self
    }

    /// Sets the escape policy.
    pub fn policy(mut self, policy: ShedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the ingress admission window (open epochs beyond the
    /// frontier).
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn max_open_epochs(mut self, epochs: u64) -> Self {
        assert!(epochs > 0, "admission window must admit at least one epoch");
        self.max_open_epochs = Some(epochs);
        self
    }

    /// Sets the overload thresholds (fractions of the budget).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < throttle_at <= shed_at`.
    pub fn thresholds(mut self, throttle_at: f64, shed_at: f64) -> Self {
        assert!(
            throttle_at > 0.0 && throttle_at <= shed_at,
            "thresholds must satisfy 0 < throttle_at <= shed_at"
        );
        self.throttle_at = throttle_at;
        self.shed_at = shed_at;
        self
    }
}

/// Identifies one credited data queue, cluster-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum FlowKey {
    /// Intra-process typed queue: `(process, dataflow, channel, dst local
    /// worker)`.
    Local(usize, usize, usize, usize),
    /// Remote serialized queue, tracked at the *sender*: `(src process,
    /// dst process, data tag)`.
    Remote(usize, usize, u32),
}

/// Outcome of one credit acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acquire {
    /// Credits granted (possibly after parking for `waited_ns`).
    Granted { waited_ns: u64 },
    /// The bounded wait expired; the caller must overdraft or shed.
    TimedOut { waited_ns: u64 },
}

/// Per-queue credit ledger: in-flight bytes guarded by a mutex, with a
/// condvar the receiver signals on every credit return.
pub(crate) struct CreditCell {
    in_flight: Mutex<u64>,
    returned: Condvar,
}

impl CreditCell {
    fn new() -> Self {
        CreditCell {
            in_flight: Mutex::new(0),
            returned: Condvar::new(),
        }
    }

    fn guard(&self) -> MutexGuard<'_, u64> {
        self.in_flight.lock()
    }

    /// Whether `cost` fits under `budget` right now. An empty queue
    /// always admits, so one oversized batch cannot wedge the channel.
    fn admits(in_flight: u64, cost: u64, budget: u64) -> bool {
        in_flight == 0 || in_flight + cost <= budget
    }

    /// Spends `cost` credits, parking up to `wait` for returns.
    pub(crate) fn acquire(&self, cost: u64, budget: u64, wait: Duration) -> Acquire {
        let mut guard = self.guard();
        if Self::admits(*guard, cost, budget) {
            *guard += cost;
            return Acquire::Granted { waited_ns: 0 };
        }
        let started = Instant::now();
        loop {
            let elapsed = started.elapsed();
            let Some(remaining) = wait.checked_sub(elapsed) else {
                return Acquire::TimedOut {
                    waited_ns: elapsed.as_nanos() as u64,
                };
            };
            let (g, _timed_out) = self.returned.wait_timeout(guard, remaining);
            guard = g;
            if Self::admits(*guard, cost, budget) {
                *guard += cost;
                return Acquire::Granted {
                    waited_ns: started.elapsed().as_nanos() as u64,
                };
            }
        }
    }

    /// Spends `cost` credits unconditionally (self-routes and
    /// [`ShedPolicy::Block`] overdrafts).
    pub(crate) fn force(&self, cost: u64) {
        *self.guard() += cost;
    }

    /// Returns `cost` credits and wakes parked senders.
    pub(crate) fn release(&self, cost: u64) {
        let mut guard = self.guard();
        *guard = guard.saturating_sub(cost);
        drop(guard);
        self.returned.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> u64 {
        *self.guard()
    }
}

/// Cluster-wide flow-control state: one [`CreditCell`] per credited data
/// queue, plus the aggregate gauges the overload monitor, the stall
/// watchdog, and the telemetry snapshot read.
///
/// Shared by every process of the simulated cluster (like the escalation
/// cell); a multi-host deployment would shard it per process and carry
/// the remote ledgers' returns on the control plane exactly as the
/// simulated one already does.
pub(crate) struct FlowRegistry {
    config: FlowConfig,
    tuning: Option<TuningKnobs>,
    cells: Mutex<HashMap<FlowKey, Arc<CreditCell>>>,
    /// Credited data-plane bytes in flight, cluster-wide.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight` (the chaos-soak oracle).
    peak_in_flight: AtomicU64,
    /// Senders currently parked waiting for credits.
    parked: AtomicUsize,
    /// Completed credit waits (any wait > 0).
    credit_waits: AtomicU64,
    /// Total nanoseconds spent parked.
    credit_wait_ns: AtomicU64,
    /// Credit returns processed (the watchdog's "upstream is alive"
    /// signal).
    returns: AtomicU64,
    /// `Block`-policy escapes past the budget.
    overdrafts: AtomicU64,
    /// Batches dropped by `Shed` policy.
    shed_batches: AtomicU64,
    /// Records dropped by `Shed` policy.
    shed_records: AtomicU64,
    /// Bytes dropped by `Shed` policy.
    shed_bytes: AtomicU64,
}

impl FlowRegistry {
    pub(crate) fn new(config: FlowConfig, tuning: Option<TuningKnobs>) -> Self {
        FlowRegistry {
            config,
            tuning,
            cells: Mutex::new(HashMap::new()),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            credit_waits: AtomicU64::new(0),
            credit_wait_ns: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            overdrafts: AtomicU64::new(0),
            shed_batches: AtomicU64::new(0),
            shed_records: AtomicU64::new(0),
            shed_bytes: AtomicU64::new(0),
        }
    }

    pub(crate) fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The per-queue byte budget in force right now: the live tuning
    /// knob when the autotuner is wired in, the static config value
    /// otherwise (mirrors `Pusher::batch_limit`).
    pub(crate) fn budget(&self) -> u64 {
        match &self.tuning {
            Some(knobs) => knobs.credit_budget() as u64,
            None => self.config.budget as u64,
        }
    }

    /// The credit cell for `key`, created on first touch.
    pub(crate) fn cell(&self, key: FlowKey) -> Arc<CreditCell> {
        self.cells
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(CreditCell::new()))
            .clone()
    }

    /// Per-cell credit detail for the stall watchdog's state dump, as a
    /// JSON array sorted by key. Uses `try_lock` throughout — on the
    /// registry and on every cell — because the dump runs while senders
    /// may be parked mid-protocol: a held ledger reports `"held"`
    /// instead of deadlocking the diagnostic that is trying to explain
    /// the stall.
    pub(crate) fn dump_cells(&self) -> String {
        let Some(cells) = self.cells.try_lock() else {
            return "[\"cells registry busy\"]".to_string();
        };
        let mut parts: Vec<String> = cells
            .iter()
            .map(|(key, cell)| {
                let in_flight = cell
                    .in_flight
                    .try_lock()
                    .map_or_else(|| "\"held\"".to_string(), |g| (*g).to_string());
                format!("{{\"key\":\"{key:?}\",\"in_flight\":{in_flight}}}")
            })
            .collect();
        parts.sort();
        format!("[{}]", parts.join(","))
    }

    /// Spends `cost` on `cell`, parking up to the configured wait.
    /// Updates the aggregate gauges; the caller handles a timeout
    /// (overdraft or shed) and its accounting.
    pub(crate) fn acquire(&self, cell: &CreditCell, cost: u64) -> Acquire {
        self.parked.fetch_add(1, Ordering::Release);
        let outcome = cell.acquire(cost, self.budget(), self.config.credit_wait);
        self.parked.fetch_sub(1, Ordering::Release);
        let waited_ns = match outcome {
            Acquire::Granted { waited_ns } => {
                self.note_spent(cost);
                waited_ns
            }
            Acquire::TimedOut { waited_ns } => waited_ns,
        };
        if waited_ns > 0 {
            self.credit_waits.fetch_add(1, Ordering::Relaxed);
            self.credit_wait_ns.fetch_add(waited_ns, Ordering::Relaxed);
        }
        outcome
    }

    /// Spends `cost` unconditionally (self-routes; not counted as an
    /// overdraft).
    pub(crate) fn force(&self, cell: &CreditCell, cost: u64) {
        cell.force(cost);
        self.note_spent(cost);
    }

    /// Spends `cost` past the budget after a full wait (`Block` policy).
    pub(crate) fn overdraft(&self, cell: &CreditCell, cost: u64) {
        cell.force(cost);
        self.note_spent(cost);
        self.overdrafts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a batch dropped by the `Shed` policy.
    pub(crate) fn note_shed(&self, records: u64, bytes: u64) {
        self.shed_batches.fetch_add(1, Ordering::Relaxed);
        self.shed_records.fetch_add(records, Ordering::Relaxed);
        self.shed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn note_spent(&self, cost: u64) {
        let now = self.in_flight.fetch_add(cost, Ordering::Relaxed) + cost;
        self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// Returns `cost` credits to `cell` and the aggregate gauge. The
    /// gauge drops *before* the cell wakes parked senders: the reverse
    /// order would let a freshly admitted sender bump the gauge while
    /// the consumed bytes were still counted, spuriously pushing the
    /// peak past the budget.
    pub(crate) fn release(&self, cell: &CreditCell, cost: u64) {
        self.in_flight.fetch_sub(cost, Ordering::Relaxed);
        cell.release(cost);
        self.returns.fetch_add(1, Ordering::Relaxed);
    }

    /// Like [`FlowRegistry::release`], resolving the cell by key (the
    /// router's credit-return path).
    pub(crate) fn release_key(&self, key: FlowKey, cost: u64) {
        let cell = self.cell(key);
        self.release(&cell, cost);
    }

    pub(crate) fn in_flight_bytes(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    pub(crate) fn peak_in_flight_bytes(&self) -> u64 {
        self.peak_in_flight.load(Ordering::Relaxed)
    }

    pub(crate) fn parked_senders(&self) -> usize {
        self.parked.load(Ordering::Acquire)
    }

    pub(crate) fn credit_waits(&self) -> u64 {
        self.credit_waits.load(Ordering::Relaxed)
    }

    pub(crate) fn credit_wait_ns(&self) -> u64 {
        self.credit_wait_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn returns(&self) -> u64 {
        self.returns.load(Ordering::Relaxed)
    }

    pub(crate) fn overdrafts(&self) -> u64 {
        self.overdrafts.load(Ordering::Relaxed)
    }

    pub(crate) fn shed_batches(&self) -> u64 {
        self.shed_batches.load(Ordering::Relaxed)
    }

    pub(crate) fn shed_records(&self) -> u64 {
        self.shed_records.load(Ordering::Relaxed)
    }

    pub(crate) fn shed_bytes(&self) -> u64 {
        self.shed_bytes.load(Ordering::Relaxed)
    }
}

/// A worker's overload state (DESIGN.md §15): a three-state machine the
/// per-worker [`OverloadMonitor`] drives from the credit gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OverloadState {
    /// In-flight bytes comfortably under budget; no recent credit waits.
    #[default]
    Normal,
    /// Pressure building: senders are waiting for credits or in-flight
    /// bytes crossed the throttle threshold. Ingest should slow down.
    Throttled,
    /// Saturated: in-flight bytes pinned at the budget. The shedding
    /// policy applies to loss-tolerant channels.
    Shedding,
}

impl OverloadState {
    /// Short machine-readable name (telemetry JSON).
    pub fn name(self) -> &'static str {
        match self {
            OverloadState::Normal => "normal",
            OverloadState::Throttled => "throttled",
            OverloadState::Shedding => "shedding",
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            OverloadState::Normal => 0,
            OverloadState::Throttled => 1,
            OverloadState::Shedding => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            0 => OverloadState::Normal,
            1 => OverloadState::Throttled,
            _ => OverloadState::Shedding,
        }
    }
}

/// The shared, lock-free view of a worker's overload state, read by that
/// worker's pushers on the shed path.
#[derive(Default)]
pub(crate) struct OverloadFlag(AtomicU8);

impl OverloadFlag {
    pub(crate) fn get(&self) -> OverloadState {
        OverloadState::from_u8(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn set(&self, state: OverloadState) {
        self.0.store(state.as_u8(), Ordering::Relaxed);
    }
}

/// Per-worker overload detector: a pure state machine over the pressure
/// signal, with hysteresis so a noisy gauge cannot flap the state.
///
/// Escalation is immediate (overload must be reacted to now);
/// de-escalation requires [`OverloadMonitor::COOLDOWN`] consecutive calm
/// observations.
pub(crate) struct OverloadMonitor {
    state: OverloadState,
    throttle_at: f64,
    shed_at: f64,
    calm: u32,
}

impl OverloadMonitor {
    /// Consecutive calm observations required before de-escalating.
    pub(crate) const COOLDOWN: u32 = 4;

    pub(crate) fn new(config: &FlowConfig) -> Self {
        OverloadMonitor {
            state: OverloadState::Normal,
            throttle_at: config.throttle_at,
            shed_at: config.shed_at,
            calm: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn state(&self) -> OverloadState {
        self.state
    }

    /// Feeds one observation: the in-flight/budget ratio and whether any
    /// sender completed a credit wait since the last observation.
    /// Returns the transition, if one happened.
    pub(crate) fn observe(
        &mut self,
        ratio: f64,
        waited: bool,
    ) -> Option<(OverloadState, OverloadState)> {
        let target = if ratio >= self.shed_at {
            OverloadState::Shedding
        } else if ratio >= self.throttle_at || waited {
            OverloadState::Throttled
        } else {
            OverloadState::Normal
        };
        let next = if target > self.state {
            self.calm = 0;
            target
        } else if target < self.state {
            self.calm += 1;
            if self.calm >= Self::COOLDOWN {
                self.calm = 0;
                target
            } else {
                self.state
            }
        } else {
            self.calm = 0;
            self.state
        };
        if next != self.state {
            let from = self.state;
            self.state = next;
            Some((from, next))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn cell_admits_under_budget_and_when_empty() {
        let cell = CreditCell::new();
        assert_eq!(
            cell.acquire(100, 256, Duration::from_millis(1)),
            Acquire::Granted { waited_ns: 0 }
        );
        assert_eq!(cell.in_flight(), 100);
        // A batch larger than the whole budget admits only into an empty
        // queue.
        cell.release(100);
        assert!(matches!(
            cell.acquire(10_000, 256, Duration::from_millis(1)),
            Acquire::Granted { .. }
        ));
        assert_eq!(cell.in_flight(), 10_000);
    }

    #[test]
    fn exhausted_cell_times_out_with_measured_wait() {
        let cell = CreditCell::new();
        cell.force(200);
        let outcome = cell.acquire(100, 256, Duration::from_millis(5));
        match outcome {
            Acquire::TimedOut { waited_ns } => assert!(waited_ns >= 4_000_000),
            Acquire::Granted { .. } => panic!("must not fit: 200 + 100 > 256"),
        }
    }

    #[test]
    fn release_wakes_a_parked_sender() {
        let cell = Arc::new(CreditCell::new());
        cell.force(200);
        let parked = cell.clone();
        let t = thread::spawn(move || parked.acquire(100, 256, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        cell.release(150);
        match t.join().unwrap() {
            Acquire::Granted { waited_ns } => assert!(waited_ns > 0, "the wait was real"),
            Acquire::TimedOut { .. } => panic!("released credits must admit the sender"),
        }
        assert_eq!(cell.in_flight(), 150);
    }

    #[test]
    fn registry_tracks_peak_and_overdrafts() {
        let reg = FlowRegistry::new(FlowConfig::default().budget(256), None);
        let cell = reg.cell(FlowKey::Local(0, 0, 0, 0));
        assert!(matches!(reg.acquire(&cell, 200), Acquire::Granted { .. }));
        reg.overdraft(&cell, 300);
        assert_eq!(reg.in_flight_bytes(), 500);
        assert_eq!(reg.peak_in_flight_bytes(), 500);
        assert_eq!(reg.overdrafts(), 1);
        reg.release(&cell, 200);
        reg.release_key(FlowKey::Local(0, 0, 0, 0), 300);
        assert_eq!(reg.in_flight_bytes(), 0);
        assert_eq!(reg.returns(), 2);
        assert_eq!(reg.peak_in_flight_bytes(), 500, "peak is a high-water mark");
    }

    #[test]
    fn budget_reads_live_knob_when_tuned() {
        let knobs = TuningKnobs::default();
        knobs.set_credit_budget(777);
        let reg = FlowRegistry::new(FlowConfig::default().budget(100), Some(knobs.clone()));
        assert_eq!(reg.budget(), 777);
        knobs.set_credit_budget(888);
        assert_eq!(reg.budget(), 888);
        let untuned = FlowRegistry::new(FlowConfig::default().budget(100), None);
        assert_eq!(untuned.budget(), 100);
    }

    #[test]
    fn monitor_escalates_immediately_and_deescalates_with_hysteresis() {
        let config = FlowConfig::default().thresholds(0.5, 0.9);
        let mut m = OverloadMonitor::new(&config);
        assert_eq!(m.observe(0.1, false), None);
        assert_eq!(
            m.observe(0.6, false),
            Some((OverloadState::Normal, OverloadState::Throttled))
        );
        assert_eq!(
            m.observe(0.95, false),
            Some((OverloadState::Throttled, OverloadState::Shedding))
        );
        // Calm observations de-escalate only after the cooldown.
        for _ in 0..OverloadMonitor::COOLDOWN - 1 {
            assert_eq!(m.observe(0.1, false), None);
        }
        assert_eq!(
            m.observe(0.1, false),
            Some((OverloadState::Shedding, OverloadState::Normal))
        );
        // Recent credit waits alone justify Throttled.
        assert_eq!(
            m.observe(0.0, true),
            Some((OverloadState::Normal, OverloadState::Throttled))
        );
    }

    #[test]
    fn monitor_cooldown_resets_on_renewed_pressure() {
        let config = FlowConfig::default().thresholds(0.5, 0.9);
        let mut m = OverloadMonitor::new(&config);
        m.observe(0.95, false);
        assert_eq!(m.state(), OverloadState::Shedding);
        m.observe(0.1, false);
        m.observe(0.95, false); // pressure returns: cooldown must reset
        for _ in 0..OverloadMonitor::COOLDOWN - 1 {
            assert_eq!(m.observe(0.1, false), None);
        }
        assert!(m.observe(0.1, false).is_some());
    }

    #[test]
    fn overload_flag_roundtrips() {
        let flag = OverloadFlag::default();
        assert_eq!(flag.get(), OverloadState::Normal);
        flag.set(OverloadState::Shedding);
        assert_eq!(flag.get(), OverloadState::Shedding);
        assert_eq!(OverloadState::from_u8(OverloadState::Throttled.as_u8()),
            OverloadState::Throttled);
    }

    #[test]
    #[should_panic(expected = "credit budget must be positive")]
    fn zero_budget_rejected() {
        let _ = FlowConfig::default().budget(0);
    }

    #[test]
    fn dump_cells_reports_per_cell_detail_without_blocking() {
        let reg = FlowRegistry::new(FlowConfig::default().budget(256), None);
        assert_eq!(reg.dump_cells(), "[]");
        let cell = reg.cell(FlowKey::Local(0, 1, 2, 3));
        reg.force(&cell, 42);
        let dump = reg.dump_cells();
        assert!(
            dump.contains("\"key\":\"Local(0, 1, 2, 3)\"") && dump.contains("\"in_flight\":42"),
            "unexpected dump: {dump}"
        );
        // A held ledger must degrade to "held", not deadlock the dump.
        let held = cell.guard();
        let dump = reg.dump_cells();
        assert!(dump.contains("\"in_flight\":\"held\""), "unexpected dump: {dump}");
        drop(held);
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::runtime::interleave::explore;
    use std::sync::Arc;

    /// Re-finds the PR 8 gauge-ordering race. [`FlowRegistry::release`]
    /// must drop the aggregate `in_flight` gauge *before* the cell wakes
    /// parked senders: with the order reversed, a schedule exists where
    /// the woken sender's `note_spent` reads the stale-high gauge and
    /// pushes `peak_in_flight` past the budget (here 200 + 200 = 400 >
    /// 256) — one preemption between `cell.release` and the gauge
    /// decrement is enough, so the explorer finds it deterministically.
    /// With the committed order the peak stays under budget in *every*
    /// schedule.
    #[test]
    fn loom_release_order_keeps_peak_under_budget() {
        explore(|| {
            let config = FlowConfig::default()
                .budget(256)
                .credit_wait(Duration::from_secs(5));
            let reg = Arc::new(FlowRegistry::new(config, None));
            let cell = reg.cell(FlowKey::Local(0, 0, 0, 0));
            // Pre-spawn (sequential): the queue holds 200 of its 256.
            reg.force(&cell, 200);
            let releaser_reg = reg.clone();
            let releaser_cell = cell.clone();
            vec![
                Box::new(move || {
                    releaser_reg.release(&releaser_cell, 200);
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    let outcome = reg.acquire(&cell, 200);
                    assert!(
                        matches!(outcome, Acquire::Granted { .. }),
                        "200 fits once the release lands: {outcome:?}"
                    );
                    let peak = reg.peak_in_flight_bytes();
                    assert!(
                        peak <= 256,
                        "gauge raced past the budget: peak {peak} > 256"
                    );
                }) as Box<dyn FnOnce() + Send>,
            ]
        });
    }
}
