//! Workers: vertex scheduling, notification delivery, and the worker side
//! of the progress protocol (§3.2, §3.3).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;


use naiad_netsim::{FaultController, NetSender, TrafficClass};
use naiad_wire::{encode_to_vec, Bytes};

use super::sync::Mutex;

use crate::analysis::{AnalysisConfig, AnalysisReport};
use crate::dataflow::{OpCore, Scope, StateRegistry, TrackerCell};
use crate::progress::{
    BatchEmitter, FifoChecker, PointstampTable, ProgressBatch, ProgressMode, ProgressUpdate,
};
use crate::telemetry::{Recorder, TelemetryEvent, WorkerTelemetry};

use super::channels::{
    ChannelKey, Journal, ProcessRegistry, RoutingContext, CENTRAL_TAG, PROGRESS_TAG,
};
use super::config::Config;
use super::durability::{open_blob, seal_blob, RestoreError};
use super::flow::{FlowRegistry, OverloadFlag, OverloadMonitor};
use super::rescale::RescaleError;
use super::liveness::{Liveness, LivenessTransition};
use super::progress_hub::ProcessAccumulator;
use super::retry::{
    escalate, send_with_retry, EscalationCell, FaultKind, FaultPanic, RetryPolicy,
};

/// One dataflow installed at this worker.
struct DataflowRuntime {
    id: usize,
    tracker: TrackerCell,
    journal: Journal,
    ops: Vec<Rc<RefCell<dyn OpCore>>>,
    states: StateRegistry,
    complete: bool,
    /// Last frontier-probe sample `(active, input_epoch)`, so probes are
    /// recorded only when the sampled values change.
    last_probe: Option<(u32, Option<u64>)>,
    /// An introspection dataflow ([`crate::introspect`]): excluded from
    /// [`Worker::step`] liveness so its open input never blocks
    /// `step_until_done`, and excluded from the recorder tap so the
    /// observer cannot feed back into itself.
    observer: bool,
    /// Last non-`None` tracker min-epoch, used to attribute scheduling
    /// slices once every pointstamp has drained.
    last_epoch: u64,
    /// Consecutive steps a small journal flush has been deferred
    /// (bounded; see [`Worker::flush_progress`]).
    defer_count: u32,
}

/// A per-step callback installed by the introspection harness: runs at
/// the top of every [`Worker::step`] with the minimum open epoch across
/// non-observer dataflows (`None` when they have all drained). The
/// closure lives on the worker's thread (`Rc`, not `Arc`).
pub(crate) type StepHook = Rc<RefCell<dyn FnMut(Option<u64>)>>;

/// A worker: owns one vertex per stage of each dataflow it participates in
/// and exchanges messages and progress updates with its peers (§3.2).
///
/// Workers are handed to the closure passed to
/// [`execute`](crate::runtime::execute::execute); they are not constructed
/// directly.
pub struct Worker {
    index: usize,
    peers: usize,
    process: usize,
    config: Config,
    registry: Arc<ProcessRegistry>,
    net: Arc<Mutex<NetSender>>,
    progress_rx: super::queue::RingReceiver<Bytes>,
    accumulator: Option<Arc<Mutex<ProcessAccumulator>>>,
    /// Global dataflow directory, shared with the central accumulator.
    directory: Arc<ProcessRegistry>,
    dataflows: Vec<DataflowRuntime>,
    next_dataflow: usize,
    /// Sequencer for this worker's outgoing progress batches.
    emitter: BatchEmitter,
    /// Per-sender FIFO check on incoming progress batches.
    fifo: FifoChecker,
    /// Whether the previous step processed anything, used to decide when
    /// the worker may block briefly instead of spinning.
    last_step_worked: bool,
    /// Progress batches that arrived before this worker built their
    /// dataflow, replayed at construction.
    stashed: HashMap<usize, Vec<ProgressBatch>>,
    /// Cluster-global fault slot, polled each step so this worker unwinds
    /// when any thread escalates an injected fault.
    escalation: Arc<EscalationCell>,
    /// This process's heartbeat failure detector (when
    /// [`Config::heartbeats`] is on); workers drain its transitions into
    /// telemetry.
    liveness: Option<Arc<Liveness>>,
    /// When the current idle spell began, for the stall watchdog. `None`
    /// whenever the last step worked or every dataflow is complete.
    stall_since: Option<Instant>,
    /// Scheduling rounds completed, reported in stall dumps.
    steps: u64,
    /// Retry budget for sends over the faulting fabric.
    policy: RetryPolicy,
    /// Structured telemetry ([`crate::telemetry`]); disabled (all calls
    /// are single branches) unless `Config::telemetry` or `NAIAD_DEBUG`
    /// asks for it.
    recorder: Recorder,
    /// Monotone per-worker scheduling-slice sequence, shared by the
    /// Start/Stop pair of each slice.
    schedule_seq: u64,
    /// Introspection step hooks ([`crate::introspect`]); empty unless a
    /// harness installed one.
    hooks: Vec<StepHook>,
    /// Cluster-global credit registry ([`crate::runtime::flow`]); `None`
    /// when flow control is off.
    flow: Option<Arc<FlowRegistry>>,
    /// This worker's overload state, shared with its pushers (shed path).
    overload: Option<Arc<OverloadFlag>>,
    /// The overload detector driving [`Worker::overload`].
    monitor: Option<OverloadMonitor>,
    /// Credit returns seen at the last watchdog check, to distinguish
    /// `Backpressured` (credits still moving) from a real stall.
    last_flow_returns: u64,
    /// Credit waits seen at the last overload poll.
    last_flow_waits: u64,
    /// The per-run slab pool backing remote encodes (DESIGN.md §16).
    slabs: Arc<naiad_wire::SlabPool>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: usize,
        peers: usize,
        config: Config,
        registry: Arc<ProcessRegistry>,
        net: Arc<Mutex<NetSender>>,
        accumulator: Option<Arc<Mutex<ProcessAccumulator>>>,
        directory: Arc<ProcessRegistry>,
        escalation: Arc<EscalationCell>,
        liveness: Option<Arc<Liveness>>,
        flow: Option<Arc<FlowRegistry>>,
        slabs: Arc<naiad_wire::SlabPool>,
    ) -> Self {
        let local_index = index % config.workers_per_process;
        let process = index / config.workers_per_process;
        let progress_rx = registry.receiver::<Bytes>(ChannelKey::Progress(local_index));
        let policy = RetryPolicy::from_config(&config);
        // `NAIAD_DEBUG` enables recording even when the config does not,
        // so the structured state dump always has events to print.
        let recorder = if config.telemetry || std::env::var_os("NAIAD_DEBUG").is_some() {
            Recorder::with_capacity(config.telemetry_capacity)
        } else {
            Recorder::disabled()
        };
        recorder.set_worker(index);
        let overload = flow.as_ref().map(|_| Arc::new(OverloadFlag::default()));
        let monitor = flow.as_ref().map(|f| OverloadMonitor::new(f.config()));
        Worker {
            index,
            peers,
            process,
            config,
            registry,
            net,
            progress_rx,
            accumulator,
            directory,
            dataflows: Vec::new(),
            next_dataflow: 0,
            emitter: BatchEmitter::new(index as u32),
            fifo: FifoChecker::new(),
            last_step_worked: true,
            stashed: HashMap::new(),
            escalation,
            liveness,
            stall_since: None,
            steps: 0,
            policy,
            recorder,
            schedule_seq: 0,
            hooks: Vec::new(),
            flow,
            overload,
            monitor,
            slabs,
            last_flow_returns: 0,
            last_flow_waits: 0,
        }
    }

    /// A clone of this worker's recorder (for the introspection harness
    /// and the autotuner, which record events of their own).
    pub(crate) fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Marks a dataflow as an *observer*: it no longer counts toward
    /// [`Worker::step`] liveness (its open input must not block the user
    /// closure's `step_until_done`) and its events are excluded from any
    /// recorder tap.
    pub(crate) fn mark_observer(&mut self, id: usize) {
        if let Some(df) = self.dataflows.iter_mut().find(|d| d.id == id) {
            df.observer = true;
        }
    }

    /// Installs a per-step introspection hook.
    pub(crate) fn add_step_hook(&mut self, hook: StepHook) {
        self.hooks.push(hook);
    }

    /// Whether every observer dataflow has completed (trivially `true`
    /// when none is installed).
    pub(crate) fn observers_complete(&self) -> bool {
        self.dataflows
            .iter()
            .filter(|df| df.observer)
            .all(|df| df.complete)
    }

    /// The minimum open epoch across non-observer dataflows: the oldest
    /// work the *user's* computation can still perform. `None` once all
    /// their pointstamps have drained.
    fn min_open_epoch(&self) -> Option<u64> {
        self.dataflows
            .iter()
            .filter(|df| !df.observer)
            .filter_map(|df| df.tracker.borrow().as_ref().and_then(PointstampTable::min_epoch))
            .min()
    }

    /// Drains this worker's telemetry into a harvest for the registry
    /// (`None` when recording is disabled).
    pub(crate) fn take_telemetry(&self) -> Option<WorkerTelemetry> {
        self.recorder.harvest(self.index)
    }

    /// This worker's global index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of workers in the computation.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// The process hosting this worker.
    pub fn process(&self) -> usize {
        self.process
    }

    /// A handle for injecting faults into the fabric at runtime: crash or
    /// revive processes, sever or heal links.
    pub fn fault_controller(&self) -> FaultController {
        self.net.lock().fault_controller()
    }

    /// Crashes this worker's own process and unwinds (this function does
    /// not return): every subsequent fabric send from or to the process
    /// fails, every peer worker unwinds via the escalation cell — the
    /// paper's failure model, where one process loss triggers a
    /// coordinated rollback of the whole computation (§3.4) — and
    /// [`execute`](crate::runtime::execute::execute) reports
    /// [`ExecuteError::ProcessCrashed`](crate::runtime::execute::ExecuteError::ProcessCrashed).
    /// The recovery coordinator
    /// ([`execute_resilient`](crate::runtime::recovery::execute_resilient))
    /// uses this to emulate a mid-computation process loss at a precise
    /// point in the input stream.
    pub fn inject_crash(&self) -> ! {
        self.fault_controller().crash(self.process);
        let kind = FaultKind::ProcessCrashed {
            process: self.process,
        };
        self.recorder.record(TelemetryEvent::FaultEscalated { kind });
        escalate(&self.escalation, kind)
    }

    /// Builds a dataflow. Every worker must call `dataflow` the same
    /// number of times with structurally identical graphs — the usual
    /// SPMD contract (§3.1's logical graph is shared; each worker
    /// instantiates its own vertices).
    ///
    /// The constructed graph is validated *and* statically analyzed (see
    /// [`crate::analysis`]) with the default [`AnalysisConfig`] before any
    /// vertex runs; use [`Worker::dataflow_with_report`] to customize the
    /// analyzer or inspect its findings.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph fails validation (invalid cycle,
    /// unconnected input, cross-context connector, …) or carries an
    /// analyzer diagnostic at `Error` severity.
    pub fn dataflow<R>(&mut self, construct: impl FnOnce(&mut Scope) -> R) -> R {
        let mut analysis = AnalysisConfig::default();
        if self.config.certify_rescale {
            analysis = analysis.with_rescale_contracts();
        }
        self.dataflow_with_report(&analysis, construct).0
    }

    /// Like [`Worker::dataflow`], but analyzes the graph under `config`
    /// and returns the full [`AnalysisReport`] alongside the construction
    /// closure's result. The report (error/warning/info counts) is also
    /// recorded as a telemetry event when telemetry is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails validation or carries a diagnostic at or
    /// above `config.deny` severity.
    pub fn dataflow_with_report<R>(
        &mut self,
        config: &AnalysisConfig,
        construct: impl FnOnce(&mut Scope) -> R,
    ) -> (R, AnalysisReport) {
        let id = self.next_dataflow;
        self.next_dataflow += 1;
        let journal: Journal = Rc::new(RefCell::new(Vec::new()));
        let tracker: TrackerCell = Rc::new(RefCell::new(None));
        let routing = RoutingContext {
            dataflow: id,
            my_index: self.index,
            peers: self.peers,
            workers_per_process: self.config.workers_per_process,
            process: self.process,
            batch_size: self.config.batch_size,
            tuning: self.config.tuning.clone(),
            slabs: self.slabs.clone(),
            registry: self.registry.clone(),
            net: Some(self.net.clone()),
            escalation: self.escalation.clone(),
            policy: self.policy,
            recorder: self.recorder.clone(),
            flow: self.flow.clone(),
            overload: self.overload.clone(),
        };
        let mut scope = Scope::new(routing, journal.clone(), tracker.clone());
        let result = construct(&mut scope);

        let (graph, ops, states, report) = scope.finalize(config);
        let graph = Arc::new(graph);
        self.registry.register_dataflow(id, graph.clone());
        self.directory.register_dataflow(id, graph.clone());
        if self.recorder.enabled() {
            let operators = ops
                .iter()
                .map(|op| {
                    let op = op.borrow();
                    (op.stage(), op.name().to_string())
                })
                .collect();
            self.recorder.register_dataflow(id, &graph, operators);
            self.recorder.record(TelemetryEvent::AnalysisReport {
                dataflow: id as u32,
                errors: report.error_count() as u32,
                warnings: report.warning_count() as u32,
                infos: report.info_count() as u32,
            });
        }
        *tracker.borrow_mut() = Some(PointstampTable::initialized(graph, self.peers));
        let runtime = DataflowRuntime {
            id,
            tracker,
            journal,
            ops,
            states,
            complete: false,
            last_probe: None,
            observer: false,
            last_epoch: 0,
            defer_count: 0,
        };
        // Replay any progress batches that raced ahead of construction.
        for batch in self.stashed.remove(&id).unwrap_or_default() {
            {
                let mut t = runtime.tracker.borrow_mut();
                // lint-allow(NS0004): the tracker was installed a few
                // lines up in this same function.
                t.as_mut()
                    .expect("tracker just installed")
                    .apply(batch.updates.iter().copied());
            }
            if self.recorder.enabled() {
                self.recorder.record(TelemetryEvent::ProgressApplied {
                    dataflow: batch.dataflow,
                    sender: batch.sender,
                    seq: batch.seq,
                    updates: batch.updates.len() as u32,
                    net: batch.updates.iter().map(|(_, d)| *d).sum(),
                });
            }
        }
        self.dataflows.push(runtime);
        (result, report)
    }

    /// Serializes every registered vertex state of every dataflow (§3.4).
    ///
    /// Call at a quiescent point — e.g. after
    /// [`ProbeHandle::done_through`](crate::dataflow::ProbeHandle::done_through)
    /// reports the epochs you want captured — so the snapshot is
    /// consistent: no messages for the captured epochs remain in flight.
    /// The returned blob is sealed with a versioned header and checksum
    /// ([`seal_blob`]); [`Worker::try_restore`] verifies both, so storage
    /// corruption is caught before any state is touched.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // Version 2 payloads open with the worker count that partitioned
        // the snapshot, so restoring into a different cluster size is a
        // typed error instead of a silent wrong-routing hazard.
        naiad_wire::Wire::encode(&self.peers, &mut out);
        naiad_wire::Wire::encode(&self.dataflows.len(), &mut out);
        for df in &self.dataflows {
            let states = df.states.borrow();
            naiad_wire::Wire::encode(&states.len(), &mut out);
            for (_stage, state) in states.iter() {
                let mut blob = Vec::new();
                state.checkpoint(&mut blob);
                naiad_wire::Wire::encode(&blob, &mut out);
            }
        }
        let sealed = seal_blob(&out);
        self.recorder.record(TelemetryEvent::CheckpointTaken {
            bytes: sealed.len() as u64,
        });
        sealed
    }

    /// Serializes registered vertex state as `parts` sealed *shard* blobs:
    /// shard `p` holds, for every keyed state, exactly the entries worker
    /// `p` of a `parts`-worker cluster would own under the exchange
    /// contract. The elastic-rescale coordinator
    /// ([`execute_elastic`](crate::runtime::rescale::execute_elastic))
    /// sends shard `p` from every old worker to new worker `p`, which
    /// absorbs them with [`Worker::restore_shards`].
    ///
    /// Fails with [`RescaleError::UnmigratableState`] if any dataflow
    /// registered opaque (non-keyed) state — such state has no
    /// partitioning the coordinator could re-route.
    pub fn checkpoint_partitioned(&self, parts: usize) -> Result<Vec<Vec<u8>>, RescaleError> {
        for (df_index, df) in self.dataflows.iter().enumerate() {
            for (stage, state) in df.states.borrow().iter() {
                if !state.is_keyed() {
                    return Err(RescaleError::UnmigratableState {
                        dataflow: df_index,
                        stage: stage.0,
                    });
                }
            }
        }
        let mut shards = Vec::with_capacity(parts);
        for part in 0..parts {
            let mut out = Vec::new();
            naiad_wire::Wire::encode(&parts, &mut out);
            naiad_wire::Wire::encode(&part, &mut out);
            naiad_wire::Wire::encode(&self.index, &mut out);
            naiad_wire::Wire::encode(&self.dataflows.len(), &mut out);
            for df in &self.dataflows {
                let states = df.states.borrow();
                naiad_wire::Wire::encode(&states.len(), &mut out);
                for (_stage, state) in states.iter() {
                    // lint-allow(NS0004): the validation pass above this
                    // loop already returned Err for non-keyed state.
                    let keyed = state.keyed().expect("checked keyed above");
                    let mut blob = Vec::new();
                    keyed.borrow().export_part(part, parts, &mut blob);
                    naiad_wire::Wire::encode(&blob, &mut out);
                }
            }
            shards.push(seal_blob(&out));
        }
        Ok(shards)
    }

    /// Rebuilds keyed vertex state from migration shards produced by
    /// [`Worker::checkpoint_partitioned`] on the *previous* membership:
    /// one shard per old worker, each carrying this worker's partition.
    ///
    /// Validates every shard (seal, partition arity, target partition,
    /// dataflow/state shape) before any state is touched; only then clears
    /// the keyed maps and absorbs the shards, so a corrupt shard can never
    /// leave the worker half-migrated.
    pub fn restore_shards(&mut self, shards: &[Vec<u8>]) -> Result<(), RestoreError> {
        let mut payloads = Vec::with_capacity(shards.len());
        for shard in shards {
            let mut payload = open_blob(shard)?;
            let input = &mut payload;
            let parts = <usize as naiad_wire::Wire>::decode(input)
                .map_err(|_| RestoreError::Truncated("shard partition arity"))?;
            if parts != self.peers {
                return Err(RestoreError::PartitionCountMismatch {
                    checkpointed: parts,
                    restoring: self.peers,
                });
            }
            let part = <usize as naiad_wire::Wire>::decode(input)
                .map_err(|_| RestoreError::Truncated("shard partition index"))?;
            if part != self.index {
                return Err(RestoreError::ShapeMismatch {
                    what: "shard partition index",
                    expected: self.index,
                    found: part,
                });
            }
            let source = <usize as naiad_wire::Wire>::decode(input)
                .map_err(|_| RestoreError::Truncated("shard source worker"))?;
            let dataflows = <usize as naiad_wire::Wire>::decode(input)
                .map_err(|_| RestoreError::Truncated("shard dataflow count"))?;
            if dataflows != self.dataflows.len() {
                return Err(RestoreError::ShapeMismatch {
                    what: "shard dataflow count",
                    expected: self.dataflows.len(),
                    found: dataflows,
                });
            }
            let mut per_df = Vec::with_capacity(dataflows);
            for df in &self.dataflows {
                let states = df.states.borrow();
                let count = <usize as naiad_wire::Wire>::decode(input)
                    .map_err(|_| RestoreError::Truncated("shard state count"))?;
                if count != states.len() {
                    return Err(RestoreError::ShapeMismatch {
                        what: "shard registered-state count",
                        expected: states.len(),
                        found: count,
                    });
                }
                let mut blobs = Vec::with_capacity(count);
                for (_stage, state) in states.iter() {
                    if !state.is_keyed() {
                        return Err(RestoreError::ShapeMismatch {
                            what: "keyed-state registration",
                            expected: states.len(),
                            found: 0,
                        });
                    }
                    let blob = <Vec<u8> as naiad_wire::Wire>::decode(input)
                        .map_err(|_| RestoreError::Truncated("shard state blob"))?;
                    blobs.push(blob);
                }
                per_df.push(blobs);
            }
            payloads.push((source, per_df));
        }
        // Every shard validated: now mutate, once, in one pass.
        for df in &self.dataflows {
            for (_stage, state) in df.states.borrow().iter() {
                // lint-allow(NS0004): decode-and-validate completed above;
                // the mutate pass must not fail halfway.
                state.keyed().expect("validated keyed above").borrow_mut().clear();
            }
        }
        for (source, per_df) in payloads {
            let mut migrated = 0u64;
            for (df, blobs) in self.dataflows.iter().zip(&per_df) {
                for ((_stage, state), blob) in df.states.borrow().iter().zip(blobs) {
                    // lint-allow(NS0004): same validated two-phase
                    // restore; see the clear pass above.
                    state
                        .keyed()
                        .expect("validated keyed above")
                        .borrow_mut()
                        .absorb_part(&mut &blob[..]);
                    migrated += blob.len() as u64;
                }
            }
            self.recorder.record(TelemetryEvent::PartitionMigrated {
                from_worker: source as u32,
                bytes: migrated,
            });
        }
        Ok(())
    }

    /// Records a telemetry event in this worker's log (used by the
    /// rescale coordinator to attribute protocol phases to workers).
    pub(crate) fn record(&self, event: TelemetryEvent) {
        self.recorder.record(event);
    }

    /// The migration frontier barrier (§3.3 applied to rescaling): `true`
    /// when, in every dataflow, no active pointstamp carries an epoch at
    /// or below `epoch`. The rescale coordinator requires this of the
    /// fence's predecessor before sharding state — a still-draining epoch
    /// would make the snapshot miss in-flight records.
    pub fn frontier_closed_through(&self, epoch: u64) -> bool {
        self.dataflows.iter().all(|df| {
            df.tracker
                .borrow()
                .as_ref()
                .is_none_or(|t| t.closed_through(epoch))
        })
    }

    /// Steps until [`Worker::frontier_closed_through`] holds for `epoch`:
    /// the quiesce step of the rescale protocol. A probe only certifies
    /// drainage *upstream* of its point — sinks, captures, and remote
    /// workers may still hold pointstamps at the epoch — so the fence
    /// snapshot drains every location first. The stall watchdog bounds
    /// this loop like any other step loop.
    pub fn step_until_closed_through(&mut self, epoch: u64) {
        while !self.frontier_closed_through(epoch) {
            self.step();
            self.idle_wait();
        }
    }

    /// Restores vertex states captured by [`Worker::checkpoint`] into the
    /// structurally identical dataflows this worker has constructed.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match the constructed
    /// dataflows (different dataflow count or registered-state count) or
    /// the bytes are corrupt. Use [`Worker::try_restore`] for a fallible
    /// variant.
    pub fn restore(&mut self, snapshot: &[u8]) {
        if let Err(e) = self.try_restore(snapshot) {
            panic!("snapshot restore failed: {e}");
        }
    }

    /// Fallible variant of [`Worker::restore`]: validates the snapshot's
    /// shape against the constructed dataflows and reports corruption as a
    /// typed [`RestoreError`] instead of panicking.
    pub fn try_restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        let mut payload = open_blob(snapshot)?;
        let input = &mut payload;
        let checkpointed = <usize as naiad_wire::Wire>::decode(input)
            .map_err(|_| RestoreError::Truncated("snapshot worker count"))?;
        if checkpointed != self.peers {
            // A snapshot partitions keyed state by `hash % peers`; loading
            // it into a different worker count would silently violate the
            // exchange contract. The rescale path re-partitions instead.
            return Err(RestoreError::PartitionCountMismatch {
                checkpointed,
                restoring: self.peers,
            });
        }
        let dataflows = <usize as naiad_wire::Wire>::decode(input)
            .map_err(|_| RestoreError::Truncated("snapshot header"))?;
        if dataflows != self.dataflows.len() {
            return Err(RestoreError::ShapeMismatch {
                what: "snapshot dataflow count",
                expected: self.dataflows.len(),
                found: dataflows,
            });
        }
        for df in &self.dataflows {
            let states = df.states.borrow();
            let count = <usize as naiad_wire::Wire>::decode(input)
                .map_err(|_| RestoreError::Truncated("state count"))?;
            if count != states.len() {
                return Err(RestoreError::ShapeMismatch {
                    what: "registered-state count",
                    expected: states.len(),
                    found: count,
                });
            }
            for (_stage, state) in states.iter() {
                let blob = <Vec<u8> as naiad_wire::Wire>::decode(input)
                    .map_err(|_| RestoreError::Truncated("state blob"))?;
                state.restore(&mut &blob[..]);
            }
        }
        self.recorder.record(TelemetryEvent::CheckpointRestored {
            bytes: snapshot.len() as u64,
        });
        Ok(())
    }

    /// Runs one scheduling round: pumps vertices, delivers ready
    /// notifications, flushes progress updates, and applies incoming ones.
    /// Returns whether any dataflow is still live.
    pub fn step(&mut self) -> bool {
        // If any thread escalated an injected fault, unwind too: peers of
        // a crashed process would otherwise block forever waiting for its
        // progress updates.
        if let Some(kind) = self.escalation.check() {
            escalate(&self.escalation, kind);
        }
        self.recorder.record_step();
        self.steps += 1;
        self.drain_liveness_transitions();
        self.poll_overload();
        self.last_step_worked = false;
        self.drain_progress();
        if !self.hooks.is_empty() {
            // The hook arg is the min open epoch over *user* dataflows:
            // monotone per worker (§3.3), so the observer can advance its
            // input and cut activity windows per closed epoch. Hooks are
            // `Rc`s; the clone is a pointer copy per hook.
            let min = self.min_open_epoch();
            let hooks = self.hooks.clone();
            for hook in &hooks {
                (hook.borrow_mut())(min);
            }
        }
        for df in 0..self.dataflows.len() {
            self.step_dataflow(df);
        }
        self.drain_progress();
        if self.recorder.enabled() {
            self.probe_frontiers();
        }
        // Observer dataflows keep an input open for the lifetime of the
        // run; they must not hold the user's `step_until_done` hostage.
        self.dataflows.iter().any(|df| !df.complete && !df.observer)
    }

    /// Feeds the overload detector one observation per step (two atomic
    /// loads when flow control is on, nothing otherwise) and publishes
    /// transitions to this worker's pushers and telemetry.
    fn poll_overload(&mut self) {
        let (Some(flow), Some(monitor), Some(flag)) =
            (&self.flow, &mut self.monitor, &self.overload)
        else {
            return;
        };
        let ratio = flow.in_flight_bytes() as f64 / flow.budget() as f64;
        let waits = flow.credit_waits();
        let waited = waits != self.last_flow_waits;
        self.last_flow_waits = waits;
        if let Some((from, to)) = monitor.observe(ratio, waited) {
            flag.set(to);
            self.recorder.record(TelemetryEvent::OverloadTransition {
                from: from.as_u8(),
                to: to.as_u8(),
            });
        }
    }

    /// Surfaces failure-detector state changes (raised by this process's
    /// router thread) as telemetry events in this worker's log.
    fn drain_liveness_transitions(&mut self) {
        let Some(live) = &self.liveness else {
            return;
        };
        if !self.recorder.enabled() {
            live.drain_transitions();
            return;
        }
        for transition in live.drain_transitions() {
            let event = match transition {
                LivenessTransition::Suspected { peer, silent_ns } => {
                    TelemetryEvent::PeerSuspected {
                        peer: peer as u32,
                        silent_ms: silent_ns / 1_000_000,
                    }
                }
                LivenessTransition::Cleared { peer } => {
                    TelemetryEvent::PeerCleared { peer: peer as u32 }
                }
                LivenessTransition::Failed { peer, silent_ns } => TelemetryEvent::PeerFailed {
                    peer: peer as u32,
                    silent_ms: silent_ns / 1_000_000,
                },
            };
            self.recorder.record(event);
        }
    }

    /// Samples each dataflow's frontier (active pointstamps + minimum
    /// open input epoch) and records a [`TelemetryEvent::FrontierProbe`]
    /// whenever the sample changed since the last step. Per worker the
    /// sampled input epoch is monotone (§3.3: local views never move
    /// backwards).
    fn probe_frontiers(&mut self) {
        for runtime in &mut self.dataflows {
            let sample = {
                let tracker = runtime.tracker.borrow();
                let Some(tracker) = tracker.as_ref() else {
                    continue;
                };
                (
                    tracker.active_count() as u32,
                    tracker.input_frontier_epoch(),
                )
            };
            if runtime.last_probe != Some(sample) {
                runtime.last_probe = Some(sample);
                self.recorder.record(TelemetryEvent::FrontierProbe {
                    dataflow: runtime.id as u32,
                    active: sample.0,
                    input_epoch: sample.1,
                });
            }
        }
    }

    /// Steps until every installed dataflow completes.
    ///
    /// Completion requires all inputs to be closed (dropping an
    /// [`InputHandle`](crate::dataflow::InputHandle) closes it).
    pub fn step_until_done(&mut self) {
        let debug = std::env::var_os("NAIAD_DEBUG").is_some();
        while self.step() {
            self.idle_wait();
            if debug && self.steps.is_multiple_of(5_000) {
                eprint!("{}", self.state_dump());
            }
        }
    }

    /// Builds the structured state dump used for hang diagnosis
    /// (`NAIAD_DEBUG` prints it periodically; the stall watchdog attaches
    /// it to [`ExecuteError::Stalled`](super::execute::ExecuteError::Stalled)):
    /// one JSON line of tracker state per dataflow, followed by the tail
    /// of the worker's event log (the same JSON-lines encoding as
    /// [`TelemetrySnapshot::events_json_lines`](crate::telemetry::TelemetrySnapshot::events_json_lines)).
    fn state_dump(&self) -> String {
        use std::fmt::Write as _;
        let steps = self.steps;
        let mut out = String::new();
        for df in &self.dataflows {
            let tracker = df.tracker.borrow();
            // A dataflow whose tracker was never installed has no state
            // worth dumping (construction raced the dump).
            let Some(tracker) = tracker.as_ref() else {
                continue;
            };
            let _ = write!(
                out,
                "{{\"w\":{},\"ev\":\"state\",\"step\":{steps},\"df\":{},\"complete\":{},\"active\":{},\"journal\":{}",
                self.index,
                df.id,
                df.complete,
                tracker.active_count(),
                df.journal.borrow().len(),
            );
            match tracker.input_frontier_epoch() {
                Some(e) => {
                    let _ = write!(out, ",\"input_epoch\":{e}");
                }
                None => out.push_str(",\"input_epoch\":null"),
            }
            let frontier = tracker.frontier();
            let _ = write!(out, ",\"frontier_len\":{}", frontier.len());
            if let Some(p) = frontier.first() {
                let _ = write!(out, ",\"frontier_min\":\"{p:?}\"");
            }
            out.push_str("}\n");
        }
        if let Some(flow) = &self.flow {
            let status = if self.backpressured() {
                "backpressured"
            } else {
                "idle"
            };
            let overload = self
                .overload
                .as_ref()
                .map_or("normal", |flag| flag.get().name());
            let _ = write!(
                out,
                "{{\"w\":{},\"ev\":\"flow\",\"status\":\"{status}\",\"overload\":\"{overload}\",\
                 \"in_flight_bytes\":{},\"peak_in_flight_bytes\":{},\"parked\":{},\
                 \"credit_waits\":{},\"overdrafts\":{},\"shed_records\":{}}}",
                self.index,
                flow.in_flight_bytes(),
                flow.peak_in_flight_bytes(),
                flow.parked_senders(),
                flow.credit_waits(),
                flow.overdrafts(),
                flow.shed_records(),
            );
            out.push('\n');
            // Per-cell ledgers, via try_lock end to end: the dump runs
            // from the watchdog while senders may be parked mid-protocol
            // on these very mutexes, and a diagnostic must never deadlock
            // on the state it is reporting (tests/liveness.rs pins this).
            let _ = write!(
                out,
                "{{\"w\":{},\"ev\":\"flow_cells\",\"cells\":{}}}",
                self.index,
                flow.dump_cells(),
            );
            out.push('\n');
        }
        for record in self.recorder.recent(16) {
            out.push_str(&record.to_json(self.index));
            out.push('\n');
        }
        out
    }

    /// Whether the cluster is visibly backpressured right now: a sender
    /// is parked on a credit wait, or credits have been returned since
    /// the last watchdog check.
    fn backpressured(&self) -> bool {
        self.flow.as_ref().is_some_and(|flow| {
            flow.parked_senders() > 0 || flow.returns() != self.last_flow_returns
        })
    }

    /// Steps while `condition` holds and work remains.
    pub fn step_while(&mut self, mut condition: impl FnMut() -> bool) {
        while condition() && self.step() {
            self.idle_wait();
        }
    }

    /// Blocks briefly on the progress inbox so idle workers do not spin.
    /// Consecutive fruitless waits while pointstamps are outstanding feed
    /// the stall watchdog.
    pub(crate) fn idle_wait(&mut self) {
        if self.last_step_worked {
            self.stall_since = None;
            return;
        }
        if let Some(bytes) = self.progress_rx.try_recv() {
            self.apply_progress_bytes(&bytes);
            self.stall_since = None;
            return;
        }
        if let Some(bytes) = self.progress_rx.recv_timeout(self.config.idle_wait) {
            self.apply_progress_bytes(&bytes);
            self.stall_since = None;
            return;
        }
        self.check_stall();
    }

    /// The stall watchdog (§3.3's progress invariant, operationalized):
    /// if pointstamps are outstanding but nothing — no vertex work, no
    /// progress traffic — has happened for
    /// [`Config::stall_timeout`], the computation can never complete on
    /// its own. Rather than hang, declare a global stall: capture the
    /// structured state dump, park it on the escalation cell, and unwind
    /// every worker into
    /// [`ExecuteError::Stalled`](super::execute::ExecuteError::Stalled).
    fn check_stall(&mut self) {
        let Some(timeout) = self.config.stall_timeout else {
            return;
        };
        // Only armed while a dataflow is incomplete: an idle worker whose
        // dataflows all finished is just waiting for the closure to move
        // on, not stuck.
        if self.dataflows.iter().all(|df| df.complete) {
            self.stall_since = None;
            return;
        }
        let since = *self.stall_since.get_or_insert_with(Instant::now);
        if since.elapsed() < timeout {
            return;
        }
        // Backpressure is not a stall. While credits are being returned
        // anywhere in the cluster, or a sender is parked on a (bounded)
        // credit wait, the computation is still moving — the frontier
        // just cannot show it yet because the parked sender's journal has
        // not flushed. Extend the clock and report `backpressured` in the
        // state dump instead of unwinding into `ExecuteError::Stalled`.
        // A real wedge drains through here: parked waits are bounded by
        // `FlowConfig::credit_wait`, so a dead cluster stops returning
        // credits within one wait and the next timeout window fires.
        if self.backpressured() {
            if let Some(flow) = &self.flow {
                self.last_flow_returns = flow.returns();
            }
            self.stall_since = Some(Instant::now());
            return;
        }
        let active: u32 = self
            .dataflows
            .iter()
            .map(|df| {
                df.tracker
                    .borrow()
                    .as_ref()
                    .map_or(0, |t| t.active_count() as u32)
            })
            .sum();
        let idle_ms = since.elapsed().as_millis() as u64;
        self.recorder
            .record(TelemetryEvent::Stalled { idle_ms, active });
        let dump = self.state_dump();
        let first = self
            .escalation
            .raise_with_detail(FaultKind::Stalled { worker: self.index }, dump);
        std::panic::panic_any(FaultPanic(first));
    }

    // lint-allow(NS0004): `df` is the worker's own loop index over
    // `0..self.dataflows.len()`; splitting `self` borrows field-by-field
    // forces repeated indexing here, and the bound cannot move mid-step.
    fn step_dataflow(&mut self, df: usize) {
        if self.dataflows[df].complete {
            return;
        }
        // Pump vertices until locally quiet (bounded to stay responsive to
        // progress traffic).
        let telemetry = self.recorder.enabled();
        let dataflow = self.dataflows[df].id as u32;
        // Attribute this round's slices to the oldest open epoch in the
        // dataflow's tracker (monotone per worker, §3.3); once every
        // pointstamp has drained, fall back to the last seen epoch.
        let epoch = if telemetry {
            let min = self.dataflows[df]
                .tracker
                .borrow()
                .as_ref()
                .and_then(PointstampTable::min_epoch);
            match min {
                Some(e) => {
                    self.dataflows[df].last_epoch = e;
                    e
                }
                None => self.dataflows[df].last_epoch,
            }
        } else {
            0
        };
        for _round in 0..8 {
            let mut worked = false;
            for op in &self.dataflows[df].ops {
                if telemetry {
                    let stage = op.borrow().stage().0 as u32;
                    let seq = self.schedule_seq;
                    self.schedule_seq += 1;
                    self.recorder.record(TelemetryEvent::ScheduleStart {
                        dataflow,
                        stage,
                        epoch,
                        seq,
                    });
                    let start = Instant::now();
                    let w = op.borrow_mut().pump();
                    self.recorder.record(TelemetryEvent::ScheduleStop {
                        dataflow,
                        stage,
                        nanos: start.elapsed().as_nanos() as u64,
                        worked: w,
                        epoch,
                        seq,
                    });
                    worked |= w;
                } else {
                    worked |= op.borrow_mut().pump();
                }
            }
            self.last_step_worked |= worked;
            if !worked {
                break;
            }
        }
        self.deliver_notifications(df);
        self.flush_progress(df);
        self.check_complete(df);
    }

    fn deliver_notifications(&mut self, df: usize) {
        let Some(runtime) = self.dataflows.get(df) else {
            return;
        };
        for op in &runtime.ops {
            let ready = {
                let tracker = runtime.tracker.borrow();
                let Some(tracker) = tracker.as_ref() else {
                    return;
                };
                op.borrow().notify_handle().take_ready(tracker)
            };
            for (time, blocking) in ready {
                op.borrow_mut().deliver(time);
                if self.recorder.enabled() {
                    self.recorder.record(TelemetryEvent::NotificationDelivered {
                        dataflow: runtime.id as u32,
                        stage: op.borrow().stage().0 as u32,
                        epoch: time.epoch,
                        blocking,
                    });
                }
                if blocking {
                    // §2.3: the occurrence count decrements as OnNotify
                    // completes.
                    op.borrow().notify_handle().retire(time);
                }
            }
        }
    }

    /// Broadcasts this step's journal according to the progress mode
    /// (§3.3). All paths ultimately traverse the fabric, including to this
    /// worker itself: local views are fed exclusively by the protocol.
    // lint-allow(NS0004): `df` is the worker's own loop index over
    // `0..self.dataflows.len()`, and the accumulator handle is allocated
    // whenever the progress mode is Local/LocalGlobal (construction
    // invariant in `new`).
    fn flush_progress(&mut self, df: usize) {
        // Progress-accumulation knob ([`crate::introspect`]): when a
        // tuner raised the flush threshold, a journal smaller than it may
        // wait — but only for a bounded number of steps, so liveness is
        // preserved (idle waits time out back into `step`, which reaches
        // here again). Threshold 1 (the default) flushes every step,
        // byte-identical to the untuned runtime.
        let threshold = self
            .config
            .tuning
            .as_ref()
            .map_or(1, super::config::TuningKnobs::progress_flush);
        if threshold > 1 {
            let len = self.dataflows[df].journal.borrow().len();
            if len > 0 && len < threshold && self.dataflows[df].defer_count < 8 {
                self.dataflows[df].defer_count += 1;
                return;
            }
        }
        self.dataflows[df].defer_count = 0;
        let updates: Vec<ProgressUpdate> =
            std::mem::take(&mut *self.dataflows[df].journal.borrow_mut());
        if updates.is_empty() {
            return;
        }
        let dataflow = self.dataflows[df].id;
        match self.config.progress_mode {
            ProgressMode::Broadcast => {
                // Naive protocol: every update broadcast on its own. The
                // retry loop runs per destination (not around the fabric's
                // broadcast) so a transient failure on one link never
                // re-sends to links that already succeeded — re-delivery
                // would violate the per-sender FIFO sequence check.
                let processes = self.config.processes;
                for update in updates {
                    let batch = self.emitter.batch(dataflow as u32, vec![update]);
                    self.recorder.record(TelemetryEvent::ProgressBatchSent {
                        dataflow: dataflow as u32,
                        seq: batch.seq,
                        updates: 1,
                    });
                    let bytes: Bytes = encode_to_vec(&batch).into();
                    for dst in 0..processes {
                        self.send_progress(dst, PROGRESS_TAG, &bytes);
                    }
                }
            }
            ProgressMode::Global => {
                // No local accumulation: per-step batches go straight to
                // the central accumulator.
                let batch = self.emitter.batch(dataflow as u32, updates);
                self.recorder.record(TelemetryEvent::ProgressBatchSent {
                    dataflow: dataflow as u32,
                    seq: batch.seq,
                    updates: batch.updates.len() as u32,
                });
                let bytes: Bytes = encode_to_vec(&batch).into();
                let central = self.central_endpoint();
                self.send_progress(central, CENTRAL_TAG, &bytes);
            }
            ProgressMode::Local | ProgressMode::LocalGlobal => {
                let acc = self
                    .accumulator
                    .as_ref()
                    .expect("local modes allocate a process accumulator")
                    .clone();
                self.recorder.record(TelemetryEvent::ProgressDeposited {
                    dataflow: dataflow as u32,
                    updates: updates.len() as u32,
                });
                acc.lock().deposit(dataflow, updates);
            }
        }
    }

    /// Sends one progress payload with retry; escalates a fault the retry
    /// budget cannot mask.
    fn send_progress(&mut self, dst: usize, tag: u32, bytes: &Bytes) {
        if let Err(err) =
            send_with_retry(&self.net, self.policy, dst, tag, TrafficClass::Progress, bytes)
        {
            let kind = FaultKind::from_send_error(err);
            self.recorder.record(TelemetryEvent::FaultEscalated { kind });
            escalate(&self.escalation, kind);
        }
    }

    fn central_endpoint(&self) -> usize {
        // The central accumulator is the extra fabric endpoint.
        self.config.processes
    }

    /// Applies all queued progress batches to the relevant trackers.
    fn drain_progress(&mut self) {
        while let Some(bytes) = self.progress_rx.try_recv() {
            self.apply_progress_bytes(&bytes);
            self.last_step_worked = true;
        }
    }

    fn apply_progress_bytes(&mut self, bytes: &Bytes) {
        let batch: ProgressBatch = naiad_wire::decode_from_slice(bytes).unwrap_or_else(|e| {
            panic!(
                "worker {}: undecodable progress batch ({} bytes) — wire corruption \
                 or a sender running a different protocol version: {e:?}",
                self.index,
                bytes.len()
            )
        });
        // FIFO check per sender (the fabric guarantees it; broken FIFO
        // would silently corrupt frontiers, so fail loudly).
        if let Err(violation) = self.fifo.admit(batch.sender, batch.seq) {
            panic!("worker {}: {}", self.index, violation);
        }
        let dataflow = batch.dataflow as usize;
        if let Some(runtime) = self.dataflows.iter_mut().find(|d| d.id == dataflow) {
            {
                let mut tracker = runtime.tracker.borrow_mut();
                // lint-allow(NS0004): a dataflow is pushed onto
                // `self.dataflows` only after its tracker is installed.
                tracker
                    .as_mut()
                    .expect("registered dataflows have trackers")
                    .apply(batch.updates.iter().copied());
            }
            if self.recorder.enabled() {
                self.recorder.record(TelemetryEvent::ProgressApplied {
                    dataflow: batch.dataflow,
                    sender: batch.sender,
                    seq: batch.seq,
                    updates: batch.updates.len() as u32,
                    net: batch.updates.iter().map(|(_, d)| *d).sum(),
                });
            }
        } else {
            self.stashed.entry(dataflow).or_default().push(batch);
        }
        // A batch can arrive for a dataflow this worker has not built yet
        // (peers construct concurrently). Buffer it for later application
        // rather than dropping counts on the floor.
    }

    fn check_complete(&mut self, df: usize) {
        let Some(runtime) = self.dataflows.get_mut(df) else {
            return;
        };
        if runtime.complete {
            return;
        }
        let tracker_empty = runtime
            .tracker
            .borrow()
            .as_ref()
            .is_some_and(|t| t.is_empty());
        let journal_empty = runtime.journal.borrow().is_empty();
        // The tracker starts with the a-priori input pointstamps, and
        // queued batches and pending blocking notifications all hold
        // occurrence counts, so "empty" subsumes every form of outstanding
        // work; see the progress module docs for why FIFO +
        // consequence-before-retirement ordering makes this sound.
        if tracker_empty && journal_empty {
            runtime.complete = true;
        }
    }
}

#[cfg(test)]
mod tests {
    // Worker behaviour is exercised end-to-end in the runtime integration
    // tests (`runtime::execute` and the crate-level tests); unit tests here
    // would need the full fabric anyway.
}
