//! A tiny mutex wrapper over `std::sync::Mutex` with `parking_lot`-style
//! ergonomics (`lock()` without an `unwrap` at every call site).
//!
//! Poisoning is deliberately ignored: worker panics are part of normal
//! control flow for the fault-injection machinery (see
//! [`retry`](super::retry)), and the values guarded here (net senders,
//! channel registries, accumulators) remain structurally valid after a
//! panicked critical section — the recovery coordinator rebuilds the whole
//! cluster anyway.

pub(crate) struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must recover from poisoning");
    }
}
