//! Synchronization shims: `parking_lot`-style ergonomics over `std::sync`
//! (`lock()` without an `unwrap` at every call site, a `try_lock` that
//! answers `Option`), plus the seam the interleaving explorer
//! ([`interleave`](super::interleave)) hooks into.
//!
//! Poisoning is deliberately ignored: worker panics are part of normal
//! control flow for the fault-injection machinery (see
//! [`retry`](super::retry)), and the values guarded here (net senders,
//! channel registries, accumulators, credit ledgers) remain structurally
//! valid after a panicked critical section — the recovery coordinator
//! rebuilds the whole cluster anyway.
//!
//! Under `--cfg loom` every type here gains a model identity and routes
//! acquisition/blocking through the cooperative scheduler, so the
//! explorer can enumerate interleavings of code written against this
//! module without that code changing. Without an active exploration (or
//! on threads the explorer does not own) the loom build passes straight
//! through to `std`, so ordinary unit tests still run under
//! `--cfg loom`.

#[cfg(not(loom))]
mod imp {
    use std::time::Duration;

    /// Atomics pass straight through outside loom builds; `runtime::flow`
    /// imports them from here so the loom build can substitute
    /// schedulable wrappers.
    pub(crate) use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};

    pub(crate) struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    /// A held lock; releases on drop. A thin newtype so the loom build
    /// can substitute a guard that reports the release to the scheduler.
    pub(crate) struct MutexGuard<'a, T: ?Sized> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        pub(crate) fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            let inner = match self.0.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            MutexGuard { inner }
        }

        /// Acquires the lock only if it is free right now. `None` means
        /// *currently held*, never poisoned — a poisoned-but-free mutex
        /// is claimed like `lock()` claims it.
        pub(crate) fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.0.try_lock() {
                Ok(inner) => Some(MutexGuard { inner }),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                    inner: poisoned.into_inner(),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Condition variable paired with [`Mutex`]; poison-ignoring, and
    /// timeouts answer a plain `bool` instead of a `WaitTimeoutResult`.
    #[derive(Default)]
    pub(crate) struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub(crate) fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Blocks until notified (or a spurious wake; callers loop on
        /// their predicate regardless). Only blocking *test* receivers
        /// use the untimed wait — production paths all bound their
        /// waits — hence the dead-code allowance outside test builds.
        #[cfg_attr(not(test), allow(dead_code))]
        pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let inner = match self.0.wait(guard.inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            MutexGuard { inner }
        }

        /// Blocks up to `timeout`; the `bool` is `true` when the wait
        /// timed out rather than being notified.
        pub(crate) fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (inner, result) = match self.0.wait_timeout(guard.inner, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            (MutexGuard { inner }, result.timed_out())
        }

        pub(crate) fn notify_one(&self) {
            self.0.notify_one();
        }

        pub(crate) fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(loom)]
mod imp {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    use super::super::interleave;

    pub(crate) struct Mutex<T: ?Sized> {
        id: usize,
        inner: std::sync::Mutex<T>,
    }

    pub(crate) struct MutexGuard<'a, T: ?Sized> {
        /// `Some` while the std lock is held; the condvar protocol takes
        /// it out to sleep and `Drop` skips the model release when it is
        /// already gone.
        held: Option<std::sync::MutexGuard<'a, T>>,
        mutex: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub(crate) fn new(value: T) -> Self {
            Mutex {
                id: interleave::next_object_id(),
                inner: std::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            // Model exclusivity first: among explored threads the std
            // lock below is then uncontended, so the *schedule* decides
            // who wins, not the OS.
            interleave::mutex_lock(self.id);
            MutexGuard {
                held: Some(self.raw_lock()),
                mutex: self,
            }
        }

        pub(crate) fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            if !interleave::mutex_try_lock(self.id) {
                return None;
            }
            match self.inner.try_lock() {
                Ok(inner) => Some(MutexGuard {
                    held: Some(inner),
                    mutex: self,
                }),
                Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                    held: Some(poisoned.into_inner()),
                    mutex: self,
                }),
                Err(std::sync::TryLockError::WouldBlock) => {
                    // A non-model thread holds the std lock; undo the
                    // model claim and report busy.
                    interleave::mutex_unlock(self.id);
                    None
                }
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            match &self.held {
                Some(g) => g,
                None => unreachable!("guard deref after condvar handoff"),
            }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            match &mut self.held {
                Some(g) => g,
                None => unreachable!("guard deref after condvar handoff"),
            }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.held.take().is_some() {
                interleave::mutex_unlock(self.mutex.id);
            }
        }
    }

    pub(crate) struct Condvar {
        id: usize,
        inner: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        pub(crate) fn new() -> Self {
            Condvar {
                id: interleave::next_object_id(),
                inner: std::sync::Condvar::new(),
            }
        }

        fn model_wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            timed: bool,
        ) -> (MutexGuard<'a, T>, bool) {
            let mutex = guard.mutex;
            // Drop the std lock, then atomically (we hold the schedule
            // token until the next yield point, so nothing runs between)
            // release the model mutex and park on the model condvar.
            drop(guard.held.take());
            let timed_out = interleave::condvar_wait(self.id, mutex.id, timed);
            interleave::mutex_lock(mutex.id);
            (
                MutexGuard {
                    held: Some(mutex.raw_lock()),
                    mutex,
                },
                timed_out,
            )
        }

        pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            if interleave::on_model_thread() {
                return self.model_wait(guard, false).0;
            }
            let mut guard = guard;
            let Some(held) = guard.held.take() else {
                unreachable!("wait on a guard mid-handoff")
            };
            let mutex = guard.mutex;
            let inner = match self.inner.wait(held) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            MutexGuard {
                held: Some(inner),
                mutex,
            }
        }

        pub(crate) fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            if interleave::on_model_thread() {
                // The model ignores wall-clock durations: a timed waiter
                // is simply *rescuable* when the schedule would otherwise
                // deadlock, which models timeout expiry.
                return self.model_wait(guard, true);
            }
            let mut guard = guard;
            let Some(held) = guard.held.take() else {
                unreachable!("wait on a guard mid-handoff")
            };
            let mutex = guard.mutex;
            let (inner, result) = match self.inner.wait_timeout(held, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            (
                MutexGuard {
                    held: Some(inner),
                    mutex,
                },
                result.timed_out(),
            )
        }

        pub(crate) fn notify_one(&self) {
            interleave::condvar_notify(self.id, false);
            self.inner.notify_one();
        }

        pub(crate) fn notify_all(&self) {
            interleave::condvar_notify(self.id, true);
            self.inner.notify_all();
        }
    }

    /// Declares one schedulable atomic wrapper: same method names as the
    /// std atomic, with a yield point before every access so the
    /// explorer can interleave around the operation.
    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            pub(crate) struct $name($std);

            // The wrappers deliberately mirror the full std surface the
            // runtime uses anywhere, so consumers can migrate without
            // per-method gating; not every type uses every method.
            #[allow(dead_code)]
            impl $name {
                pub(crate) const fn new(v: $prim) -> Self {
                    $name(<$std>::new(v))
                }

                pub(crate) fn load(&self, order: Ordering) -> $prim {
                    interleave::yield_point();
                    self.0.load(order)
                }

                pub(crate) fn store(&self, v: $prim, order: Ordering) {
                    interleave::yield_point();
                    self.0.store(v, order);
                }

                pub(crate) fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    interleave::yield_point();
                    self.0.swap(v, order)
                }

                pub(crate) fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    interleave::yield_point();
                    self.0.fetch_add(v, order)
                }

                pub(crate) fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    interleave::yield_point();
                    self.0.fetch_sub(v, order)
                }

                pub(crate) fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    interleave::yield_point();
                    self.0.fetch_max(v, order)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    $name::new(0)
                }
            }
        };
    }

    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
}

pub(crate) use imp::{AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must recover from poisoning");
    }

    #[test]
    fn try_lock_reports_contention_and_recovers_poison() {
        let m = Mutex::new(1u32);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held lock must refuse try_lock");
        }
        match m.try_lock() {
            Some(mut g) => *g += 1,
            None => panic!("free lock must grant"),
        }
        assert_eq!(*m.lock(), 2);

        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert!(
            m.try_lock().is_some(),
            "poisoned-but-free mutex must still grant try_lock"
        );
    }

    #[test]
    fn condvar_wait_timeout_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let (g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(5));
        assert!(timed_out);
        assert!(!*g);
        drop(g);

        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = (&s2.0, &s2.1);
            let mut g = m.lock();
            while !*g {
                let (g2, _) = cv.wait_timeout(g, Duration::from_secs(5));
                g = g2;
            }
            true
        });
        std::thread::sleep(Duration::from_millis(5));
        *shared.0.lock() = true;
        shared.1.notify_all();
        assert!(t.join().unwrap());
    }
}
