//! Typed data channels between workers (§3.1, §3.2).
//!
//! A connector in the logical graph expands into one channel per
//! destination worker. Senders route records by the connector's
//! partitioning contract:
//!
//! * within a process, records travel as typed batches through
//!   shared-memory queues;
//! * across processes, batches are serialized with `naiad-wire` and travel
//!   through the `naiad-netsim` fabric, metered as
//!   [`TrafficClass::Data`](naiad_netsim::TrafficClass).
//!
//! Every emitted batch contributes `+1` to the occurrence count of its
//! `(time, connector)` pointstamp, and every delivered batch `−1` *after*
//! the receiving vertex finishes processing it — the §2.3 update rules, in
//! the §3.3 broadcast order (consequences before retirements).

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use naiad_netsim::{NetSender, TrafficClass};
use naiad_wire::{Bytes, ExchangeData, SlabPool, Wire, WireError};

use super::queue::{ring, RingReceiver, RingSender};
use super::sync::Mutex;

use super::config::TuningKnobs;
use super::flow::{Acquire, CreditCell, FlowKey, FlowRegistry, OverloadFlag, OverloadState, ShedPolicy};
use super::retry::{escalate, send_with_retry, EscalationCell, FaultKind, RetryPolicy};
use crate::graph::{ConnectorId, LogicalGraph};
use crate::progress::{Pointstamp, ProgressUpdate};
use crate::telemetry::{Recorder, TelemetryEvent};
use crate::time::Timestamp;

/// Channel tag carrying progress broadcasts to a process (fanned out to
/// all its workers by the router).
pub(crate) const PROGRESS_TAG: u32 = 0xFFFF_FFFF;
/// Channel tag carrying progress batches to the central accumulator.
pub(crate) const CENTRAL_TAG: u32 = 0xFFFF_FFFE;
/// Channel tag carrying liveness heartbeats on the control plane.
pub(crate) const HEARTBEAT_TAG: u32 = 0xFFFF_FFFD;
/// Channel tag carrying cluster-membership announcements (elastic
/// rescaling) on the control plane.
pub(crate) const MEMBERSHIP_TAG: u32 = 0xFFFF_FFFC;
/// Channel tag carrying credit returns for remote data batches on the
/// control plane (DESIGN.md §15): `(data tag: u32, bytes: u64)`.
pub(crate) const CREDIT_TAG: u32 = 0xFFFF_FFFB;

const DATAFLOW_BITS: u32 = 10;
const CHANNEL_BITS: u32 = 14;
const WORKER_BITS: u32 = 7;

/// Packs a data-channel address into a fabric tag.
///
/// # Panics
///
/// Panics if any component exceeds its field width.
pub(crate) fn data_tag(dataflow: usize, channel: usize, dst_local: usize) -> u32 {
    assert!(dataflow < (1 << DATAFLOW_BITS), "too many dataflows");
    assert!(channel < (1 << CHANNEL_BITS), "too many channels");
    assert!(
        dst_local < (1 << WORKER_BITS),
        "too many workers per process"
    );
    ((dataflow as u32) << (CHANNEL_BITS + WORKER_BITS))
        | ((channel as u32) << WORKER_BITS)
        | dst_local as u32
}

/// Inverse of [`data_tag`].
pub(crate) fn parse_data_tag(tag: u32) -> (usize, usize, usize) {
    let dataflow = (tag >> (CHANNEL_BITS + WORKER_BITS)) as usize;
    let channel = ((tag >> WORKER_BITS) & ((1 << CHANNEL_BITS) - 1)) as usize;
    let dst_local = (tag & ((1 << WORKER_BITS) - 1)) as usize;
    (dataflow, channel, dst_local)
}

/// A batch of records bearing one timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Message<D> {
    /// The logical timestamp of every record in the batch.
    pub time: Timestamp,
    /// The records.
    pub data: Vec<D>,
}

impl<D: Wire> Wire for Message<D> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.time.encode(buf);
        self.data.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Message {
            time: Timestamp::decode(input)?,
            data: Vec::<D>::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.time.encoded_len() + self.data.encoded_len()
    }
}

impl<D: Wire> Message<D> {
    /// Decodes a batch into a recycled container: `data`'s storage is
    /// reused, so a warmed-up remote path decodes with zero container
    /// allocations (DESIGN.md §16). Requires every input byte consumed,
    /// like [`naiad_wire::decode_from_slice`].
    pub(crate) fn decode_into(bytes: &[u8], mut data: Vec<D>) -> Result<Self, WireError> {
        let mut input = bytes;
        let time = Timestamp::decode(&mut input)?;
        let len = usize::decode(&mut input)?;
        if len > input.len() {
            // Sound bound: every element encodes to at least one byte.
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: input.len(),
            });
        }
        data.clear();
        data.reserve(len);
        for _ in 0..len {
            data.push(D::decode(&mut input)?);
        }
        if !input.is_empty() {
            return Err(WireError::TrailingBytes(input.len()));
        }
        Ok(Message { time, data })
    }
}

impl<D> Message<D> {
    /// The batch's cost against a credit budget (DESIGN.md §15, §16):
    /// its in-memory footprint, `O(1)` to compute. This prices *local*
    /// (typed, same-process) batches only; remote batches are priced by
    /// the length of their frozen slab — also `O(1)`, because the bytes
    /// are already materialized for the fabric, and exact because sender
    /// and receiver read the length of the very same buffer. What
    /// credits bound is queue memory, and sender and receiver agreeing
    /// on the number is what keeps the ledger in balance (heap payloads
    /// behind pointers are not counted — the bound is a floor, not an
    /// exact heap measure).
    pub(crate) fn credit_cost(&self) -> u64 {
        let record = std::mem::size_of::<D>().max(1);
        (std::mem::size_of::<Timestamp>() + self.data.len() * record) as u64
    }
}

/// Identifies a queue endpoint within a process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum ChannelKey {
    /// Typed shared-memory queue: `(dataflow, channel, dst local worker)`.
    Data(usize, usize, usize),
    /// Serialized remote-arrival queue for the same address.
    RemoteData(usize, usize, usize),
    /// A worker's progress inbox.
    Progress(usize),
    /// The spare-container stack shared by a data endpoint's senders and
    /// its puller (DESIGN.md §16).
    Spares(usize, usize, usize),
}

struct Chan<T> {
    tx: RingSender<T>,
    rx: Mutex<Option<RingReceiver<T>>>,
}

/// A shared stack of emptied batch containers for one channel endpoint.
///
/// Pullers return consumed `Vec<D>`s here; senders (and the remote-decode
/// path) draw from it instead of allocating. The stack is bounded so a
/// burst cannot hoard memory forever.
pub(crate) struct SparePool<D> {
    stack: Arc<Mutex<Vec<Vec<D>>>>,
}

impl<D> Clone for SparePool<D> {
    fn clone(&self) -> Self {
        SparePool {
            stack: self.stack.clone(),
        }
    }
}

impl<D> Default for SparePool<D> {
    fn default() -> Self {
        SparePool {
            // slab-exempt: the spare stack itself, created once per
            // endpoint; the containers it recycles come in via `put`.
            stack: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl<D> SparePool<D> {
    /// Spares retained per endpoint; beyond this, returns are dropped.
    const MAX_SPARES: usize = 32;

    /// An empty container, recycled if one is available.
    pub(crate) fn pop(&self) -> Vec<D> {
        // slab-exempt: the `unwrap_or_default` cold path allocates only
        // until the endpoint's container population warms up; returns
        // keep the stack stocked in steady state (tests/alloc_budget.rs).
        self.stack.lock().pop().unwrap_or_default()
    }

    /// Returns an emptied container to the stack.
    pub(crate) fn put(&self, mut container: Vec<D>) {
        container.clear();
        if container.capacity() == 0 {
            return;
        }
        let mut stack = self.stack.lock();
        if stack.len() < Self::MAX_SPARES {
            stack.push(container);
        }
    }
}

/// Lazily-created queues shared by a process's workers and its router.
///
/// Whichever side touches a key first creates the queue; the consuming side
/// takes the receiver exactly once.
#[derive(Default)]
pub(crate) struct ProcessRegistry {
    map: Mutex<HashMap<ChannelKey, Box<dyn Any + Send>>>,
    dataflows: Mutex<HashMap<usize, Arc<LogicalGraph>>>,
}

impl ProcessRegistry {
    // lint-allow(NS0004): a `ChannelKey` encodes the endpoint type by
    // construction; a downcast miss is type confusion (a bug), not a
    // runtime condition to recover from.
    fn with_chan<T: Send + 'static, R>(&self, key: ChannelKey, f: impl FnOnce(&Chan<T>) -> R) -> R {
        let mut map = self.map.lock();
        let entry = map.entry(key).or_insert_with(|| {
            // flow-exempt: Data/RemoteData queues are credit-bounded at the
            // Pusher/Puller layer (runtime::flow); Progress inboxes carry the
            // §3.3 protocol and must never block (DESIGN.md §15).
            let (tx, rx) = ring::<T>();
            Box::new(Chan {
                tx,
                rx: Mutex::new(Some(rx)),
            })
        });
        let chan = entry
            .downcast_ref::<Chan<T>>()
            .expect("channel key reused at a different type");
        f(chan)
    }

    /// A sender for the queue at `key`.
    pub(crate) fn sender<T: Send + 'static>(&self, key: ChannelKey) -> RingSender<T> {
        self.with_chan(key, |c: &Chan<T>| c.tx.clone())
    }

    /// Takes the receiver for the queue at `key`.
    ///
    /// # Panics
    ///
    /// Panics if the receiver was already taken.
    // lint-allow(NS0004): the double-take panic is documented above —
    // each queue's consuming side claims its receiver exactly once.
    pub(crate) fn receiver<T: Send + 'static>(&self, key: ChannelKey) -> RingReceiver<T> {
        self.with_chan(key, |c: &Chan<T>| {
            c.rx.lock()
                .take()
                .expect("channel receiver taken more than once")
        })
    }

    /// The spare-container stack for the data endpoint
    /// `(dataflow, channel, dst_local)`, shared by everyone who routes
    /// batches to — or drains batches at — that endpoint.
    // lint-allow(NS0004): same type-confusion invariant as `with_chan`.
    pub(crate) fn spares<D: Send + 'static>(
        &self,
        dataflow: usize,
        channel: usize,
        dst_local: usize,
    ) -> SparePool<D> {
        let key = ChannelKey::Spares(dataflow, channel, dst_local);
        let mut map = self.map.lock();
        let entry = map
            .entry(key)
            .or_insert_with(|| Box::new(SparePool::<D>::default()));
        entry
            .downcast_ref::<SparePool<D>>()
            .expect("spare pool key reused at a different type")
            .clone()
    }

    /// Publishes a dataflow's logical graph so the process router and
    /// accumulator can reason about its pointstamps.
    pub(crate) fn register_dataflow(&self, id: usize, graph: Arc<LogicalGraph>) {
        self.dataflows.lock().entry(id).or_insert(graph);
    }

    /// The logical graph of a registered dataflow.
    pub(crate) fn dataflow_graph(&self, id: usize) -> Option<Arc<LogicalGraph>> {
        self.dataflows.lock().get(&id).cloned()
    }
}

/// The worker-local journal of progress updates produced this step,
/// broadcast (possibly via accumulators) when the step ends.
pub(crate) type Journal = Rc<std::cell::RefCell<Vec<ProgressUpdate>>>;

/// Appends an occurrence-count delta to the journal.
pub(crate) fn journal_update(journal: &Journal, p: Pointstamp, delta: i64) {
    journal.borrow_mut().push((p, delta));
}

/// The partitioning contract of a connector (§3.1).
///
/// Exchange and broadcast channels may cross processes, so their record
/// type must be serializable; pipeline channels stay within the worker.
pub enum Pact<D> {
    /// Deliver to the local vertex (no partitioning function supplied).
    Pipeline,
    /// Route each record by a partitioning function: all records mapping
    /// to the same integer reach the same downstream vertex.
    Exchange(Rc<dyn Fn(&D) -> u64>),
    /// Deliver a copy of every record to every vertex in the stage.
    Broadcast,
}

impl<D> Pact<D> {
    /// An exchange contract from a key-hash function.
    pub fn exchange(f: impl Fn(&D) -> u64 + 'static) -> Self {
        Pact::Exchange(Rc::new(f))
    }

    /// The data-type-erased contract kind, recorded on the logical graph
    /// for the static analyzer (`NA0005`/`NA0006`).
    pub fn kind(&self) -> crate::graph::PactKind {
        match self {
            Pact::Pipeline => crate::graph::PactKind::Pipeline,
            Pact::Exchange(_) => crate::graph::PactKind::Exchange,
            Pact::Broadcast => crate::graph::PactKind::Broadcast,
        }
    }
}

impl<D> Clone for Pact<D> {
    fn clone(&self) -> Self {
        match self {
            Pact::Pipeline => Pact::Pipeline,
            Pact::Exchange(f) => Pact::Exchange(f.clone()),
            Pact::Broadcast => Pact::Broadcast,
        }
    }
}

/// Where a destination worker's queue lives.
enum Route<D> {
    Local(RingSender<Message<D>>),
    Remote { process: usize, tag: u32 },
}

/// The sending endpoint of one connector at one worker: buffers records
/// per destination and emits timestamped batches.
pub(crate) struct Pusher<D> {
    connector: ConnectorId,
    pact: Pact<D>,
    my_index: usize,
    batch_size: usize,
    /// Shared dynamic knobs; when present, [`Pusher::batch_limit`] reads
    /// the live batch size instead of the static `batch_size`.
    tuning: Option<TuningKnobs>,
    routes: Vec<Route<D>>,
    buffers: Vec<Vec<D>>,
    /// Spare-container stack of each *local* destination endpoint; the
    /// buffer handed to a local queue is replaced from here, and remote
    /// buffers are cleared in place — either way, steady-state emits
    /// allocate nothing (DESIGN.md §16).
    spares: Vec<Option<SparePool<D>>>,
    buffer_time: Option<Timestamp>,
    /// The per-run slab pool backing remote encodes.
    slabs: Arc<SlabPool>,
    /// Last remote frame length: the capacity hint for the next slab
    /// checkout, so growth self-corrects without an `encoded_len` pass.
    encode_hint: usize,
    net: Option<Arc<Mutex<NetSender>>>,
    journal: Journal,
    escalation: Arc<EscalationCell>,
    policy: RetryPolicy,
    dataflow: u32,
    recorder: Recorder,
    /// Credit-based flow control (DESIGN.md §15); `None` leaves the
    /// data plane unbounded, bit for bit today's behavior.
    flow: Option<Arc<FlowRegistry>>,
    /// This worker's overload state, consulted on the shed path.
    overload: Option<Arc<OverloadFlag>>,
    /// One credit cell per destination route (present iff flow control
    /// is on).
    credits: Vec<Option<Arc<CreditCell>>>,
    /// Batches emitted since creation (test and diagnostics surface).
    #[cfg_attr(not(test), allow(dead_code))]
    emitted: u64,
}

/// Everything a pusher needs to resolve worker routes.
pub(crate) struct RoutingContext {
    pub dataflow: usize,
    pub my_index: usize,
    pub peers: usize,
    pub workers_per_process: usize,
    pub process: usize,
    pub batch_size: usize,
    pub tuning: Option<TuningKnobs>,
    pub slabs: Arc<SlabPool>,
    pub registry: Arc<ProcessRegistry>,
    pub net: Option<Arc<Mutex<NetSender>>>,
    pub escalation: Arc<EscalationCell>,
    pub policy: RetryPolicy,
    pub recorder: Recorder,
    pub flow: Option<Arc<FlowRegistry>>,
    pub overload: Option<Arc<OverloadFlag>>,
}

impl RoutingContext {
    fn route<D: ExchangeData>(&self, channel: usize, dst: usize) -> Route<D> {
        let dst_process = dst / self.workers_per_process;
        let dst_local = dst % self.workers_per_process;
        if dst_process == self.process {
            Route::Local(
                self.registry
                    .sender(ChannelKey::Data(self.dataflow, channel, dst_local)),
            )
        } else {
            Route::Remote {
                process: dst_process,
                tag: data_tag(self.dataflow, channel, dst_local),
            }
        }
    }
}

impl<D: ExchangeData> Pusher<D> {
    /// Builds the pusher for `channel`/`connector` at the given worker.
    pub(crate) fn new(
        ctx: &RoutingContext,
        channel: usize,
        connector: ConnectorId,
        pact: Pact<D>,
        journal: Journal,
    ) -> Self {
        let routes: Vec<Route<D>> = (0..ctx.peers).map(|dst| ctx.route(channel, dst)).collect();
        let spares = routes
            .iter()
            .enumerate()
            .map(|(dst, route)| match route {
                Route::Local(_) => Some(ctx.registry.spares::<D>(
                    ctx.dataflow,
                    channel,
                    dst % ctx.workers_per_process,
                )),
                Route::Remote { .. } => None,
            })
            .collect();
        let credits = routes
            .iter()
            .enumerate()
            .map(|(dst, route)| {
                let flow = ctx.flow.as_ref()?;
                let key = match route {
                    Route::Local(_) => FlowKey::Local(
                        ctx.process,
                        ctx.dataflow,
                        channel,
                        dst % ctx.workers_per_process,
                    ),
                    Route::Remote { process, tag } => FlowKey::Remote(ctx.process, *process, *tag),
                };
                Some(flow.cell(key))
            })
            .collect();
        Pusher {
            connector,
            pact,
            my_index: ctx.my_index,
            batch_size: ctx.batch_size,
            tuning: ctx.tuning.clone(),
            routes,
            // slab-exempt: the per-destination buffers are allocated once
            // at construction and recycled for the pusher's lifetime.
            buffers: (0..ctx.peers).map(|_| Vec::new()).collect(),
            spares,
            buffer_time: None,
            slabs: ctx.slabs.clone(),
            encode_hint: 0,
            net: ctx.net.clone(),
            journal,
            escalation: ctx.escalation.clone(),
            policy: ctx.policy,
            dataflow: ctx.dataflow as u32,
            recorder: ctx.recorder.clone(),
            flow: ctx.flow.clone(),
            overload: ctx.overload.clone(),
            credits,
            emitted: 0,
        }
    }

    /// The batch size in force right now: the live tuning knob when the
    /// autotuner is wired in, the static config value otherwise (one
    /// `Option` branch — the untuned path is unchanged).
    #[inline]
    fn batch_limit(&self) -> usize {
        match &self.tuning {
            Some(knobs) => knobs.batch_size(),
            None => self.batch_size,
        }
    }

    /// Queues `record` at `time`, flushing destination batches as they
    /// fill. Batches never mix timestamps: a time change flushes first.
    // lint-allow(NS0004): `buffers`, `routes`, `credits`, and `spares`
    // are parallel arrays sized together at construction; `dst` is either
    // `my_index` or reduced mod `routes.len()`.
    pub(crate) fn give(&mut self, time: Timestamp, record: D) {
        if self.buffer_time != Some(time) {
            self.flush();
            self.buffer_time = Some(time);
        }
        let limit = self.batch_limit();
        match &self.pact {
            Pact::Pipeline => {
                let dst = self.my_index;
                self.buffers[dst].push(record);
                if self.buffers[dst].len() >= limit {
                    self.emit(dst, time);
                }
            }
            Pact::Exchange(f) => {
                let dst = (f(&record) % self.routes.len() as u64) as usize;
                self.buffers[dst].push(record);
                if self.buffers[dst].len() >= limit {
                    self.emit(dst, time);
                }
            }
            Pact::Broadcast => {
                for dst in 0..self.routes.len() {
                    self.buffers[dst].push(record.clone());
                    if self.buffers[dst].len() >= limit {
                        self.emit(dst, time);
                    }
                }
            }
        }
    }

    /// Queues a whole batch at `time`, draining `batch` in place (its
    /// capacity is retained for the caller to refill).
    ///
    /// This is the container fast path (DESIGN.md §16): Pipeline swaps
    /// the batch straight into the outgoing buffer when it can, Exchange
    /// radix-partitions records into the per-destination buffers in one
    /// pass, and Broadcast clones per destination with the final
    /// destination taking the records by move.
    // lint-allow(NS0004): same parallel-array invariant as `give`.
    pub(crate) fn give_batch(&mut self, time: Timestamp, batch: &mut Vec<D>) {
        if batch.is_empty() {
            return;
        }
        if self.buffer_time != Some(time) {
            self.flush();
            self.buffer_time = Some(time);
        }
        let limit = self.batch_limit();
        match &self.pact {
            Pact::Pipeline => {
                let dst = self.my_index;
                if self.buffers[dst].is_empty() && batch.len() >= limit {
                    // Whole-batch fast path: ship the caller's container
                    // and hand its (empty) buffer back in exchange.
                    std::mem::swap(&mut self.buffers[dst], batch);
                    self.emit(dst, time);
                } else {
                    self.buffers[dst].append(batch);
                    if self.buffers[dst].len() >= limit {
                        self.emit(dst, time);
                    }
                }
            }
            Pact::Exchange(f) => {
                let f = f.clone();
                let n = self.routes.len() as u64;
                for record in batch.drain(..) {
                    let dst = (f(&record) % n) as usize;
                    self.buffers[dst].push(record);
                    if self.buffers[dst].len() >= limit {
                        self.emit(dst, time);
                    }
                }
            }
            Pact::Broadcast => {
                let last = self.routes.len() - 1;
                for dst in 0..last {
                    // slab-exempt: `extend` only grows a buffer up to the
                    // batch limit once; steady state reuses its capacity.
                    self.buffers[dst].extend(batch.iter().cloned());
                    if self.buffers[dst].len() >= limit {
                        self.emit(dst, time);
                    }
                }
                self.buffers[last].append(batch);
                if self.buffers[last].len() >= limit {
                    self.emit(last, time);
                }
            }
        }
    }

    /// Flushes all buffered batches.
    // lint-allow(NS0004): same parallel-array invariant as `give`.
    pub(crate) fn flush(&mut self) {
        if let Some(time) = self.buffer_time.take() {
            for dst in 0..self.routes.len() {
                if !self.buffers[dst].is_empty() {
                    self.emit(dst, time);
                }
            }
        }
    }

    // lint-allow(NS0004): `dst` is validated by the callers above (the
    // `give` parallel-array invariant); `encoded` is populated in the
    // Remote match arm this same function takes, and remote routes carry
    // a fabric handle by construction.
    fn emit(&mut self, dst: usize, time: Timestamp) {
        debug_assert!(!self.buffers[dst].is_empty());
        let records = self.buffers[dst].len() as u32;
        // Remote frames are encoded *before* the credit spend so credits
        // can be priced by the exact slab footprint — the length of the
        // very buffer the fabric will carry (DESIGN.md §16). A shed after
        // encode wastes the encode CPU, but the frozen frame just drops
        // and its slab returns straight to the pool.
        let encoded: Option<Bytes> = match &self.routes[dst] {
            Route::Local(_) => None,
            Route::Remote { .. } => {
                if let Some(knobs) = &self.tuning {
                    // The autotuner's pool knob takes effect at the next
                    // checkout (one atomic store; DESIGN.md §16).
                    self.slabs.set_resident_cap(knobs.pool_resident_cap());
                }
                let mut slab = self.slabs.get(self.encode_hint);
                time.encode(slab.buffer());
                self.buffers[dst].encode(slab.buffer());
                let bytes = slab.freeze();
                self.encode_hint = bytes.len();
                Some(bytes)
            }
        };
        // Credits are spent before the SendBy journal entry so a shed
        // batch can leave the occurrence counts net-unchanged.
        if let (Some(flow), Some(cell)) = (&self.flow, &self.credits[dst]) {
            let cost = match &encoded {
                Some(bytes) => bytes.len() as u64,
                None => {
                    let record = std::mem::size_of::<D>().max(1);
                    (std::mem::size_of::<Timestamp>() + self.buffers[dst].len() * record) as u64
                }
            };
            if dst == self.my_index {
                // Self-routes never park: a worker waiting on the queue
                // only it drains would deadlock itself. Spend without
                // waiting so the accounting stays exact (the puller
                // returns these credits like any others).
                flow.force(cell, cost);
            } else {
                match flow.acquire(cell, cost) {
                    Acquire::Granted { waited_ns } => {
                        if waited_ns > 0 {
                            self.recorder.record(TelemetryEvent::CreditWait {
                                dataflow: self.dataflow,
                                connector: self.connector.0 as u32,
                                waited_ns,
                                bytes: cost as u32,
                            });
                        }
                    }
                    Acquire::TimedOut { waited_ns } => {
                        self.recorder.record(TelemetryEvent::CreditWait {
                            dataflow: self.dataflow,
                            connector: self.connector.0 as u32,
                            waited_ns,
                            bytes: cost as u32,
                        });
                        let shedding = flow.config().policy == ShedPolicy::Shed
                            && self
                                .overload
                                .as_ref()
                                .is_some_and(|o| o.get() == OverloadState::Shedding);
                        if shedding {
                            // Drop with exact counts. The +1/−1 pair keeps
                            // the §2.3 occurrence counts sound: the batch
                            // is sent and retired within one journal flush.
                            journal_update(
                                &self.journal,
                                Pointstamp::on_edge(time, self.connector),
                                1,
                            );
                            journal_update(
                                &self.journal,
                                Pointstamp::on_edge(time, self.connector),
                                -1,
                            );
                            flow.note_shed(u64::from(records), cost);
                            self.recorder.record(TelemetryEvent::MessagesShed {
                                dataflow: self.dataflow,
                                connector: self.connector.0 as u32,
                                records,
                                bytes: cost as u32,
                            });
                            // Dropping `encoded` (if any) returns its slab;
                            // the typed buffer keeps its capacity.
                            self.buffers[dst].clear();
                            return;
                        }
                        // Block policy: pierce the budget after a full
                        // wait rather than deadlock; counted as an
                        // overdraft for the oracle.
                        flow.overdraft(cell, cost);
                    }
                }
            }
        }
        // §2.3: the occurrence count increments at the start of SendBy.
        journal_update(&self.journal, Pointstamp::on_edge(time, self.connector), 1);
        self.emitted += 1;
        let mut payload_bytes = 0u32;
        let mut remote = false;
        match &self.routes[dst] {
            Route::Local(tx) => {
                // slab-exempt: the `Vec::new` arm only runs for endpoints
                // with no spare pool (tests and probes); data routes pop a
                // recycled container.
                let refill = self.spares[dst].as_ref().map_or_else(Vec::new, SparePool::pop);
                let data = std::mem::replace(&mut self.buffers[dst], refill);
                tx.send(Message { time, data });
            }
            Route::Remote { process, tag } => {
                let bytes = encoded.expect("remote frame encoded above");
                // The typed buffer never leaves a remote-routed pusher:
                // clear it in place and keep its capacity.
                self.buffers[dst].clear();
                payload_bytes = bytes.len() as u32;
                remote = true;
                let net = self.net.as_ref().expect("remote route requires a fabric");
                if let Err(err) =
                    send_with_retry(net, self.policy, *process, *tag, TrafficClass::Data, &bytes)
                {
                    let kind = FaultKind::from_send_error(err);
                    self.recorder.record(TelemetryEvent::FaultEscalated { kind });
                    escalate(&self.escalation, kind);
                }
            }
        }
        self.recorder.record(TelemetryEvent::MessageSent {
            dataflow: self.dataflow,
            connector: self.connector.0 as u32,
            target: dst as u32,
            records,
            bytes: payload_bytes,
            remote,
        });
    }

    /// Number of batches emitted so far (test and diagnostics surface).
    #[cfg(test)]
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// The receiving endpoint of one connector at one worker.
///
/// Retirements (`−1` updates) are journaled *after* the vertex finishes
/// with a batch — see [`Puller::settle`] — so a worker's update stream
/// always shows a message's consequences before its retirement.
pub(crate) struct Puller<D> {
    connector: ConnectorId,
    local: RingReceiver<Message<D>>,
    remote: RingReceiver<(u32, Bytes)>,
    /// Spare containers for this endpoint, shared with its local senders;
    /// remote frames decode into recycled containers drawn from here.
    spares: SparePool<D>,
    journal: Journal,
    unsettled: Option<Timestamp>,
    dataflow: u32,
    recorder: Recorder,
    /// Credit-return state (DESIGN.md §15); `None` when flow control is
    /// off.
    flow: Option<PullerFlow>,
    /// Credits owed for the unsettled batch, returned on settle.
    owed: Option<OwedCredit>,
}

/// The receiving half of the credit protocol for one puller.
struct PullerFlow {
    registry: Arc<FlowRegistry>,
    /// The cell same-process senders spend on for this endpoint.
    local_cell: Arc<CreditCell>,
    /// Fabric sender for control-plane credit returns to remote senders.
    net: Option<Arc<Mutex<NetSender>>>,
    /// This endpoint's data tag, echoed in remote credit returns.
    tag: u32,
}

enum OwedCredit {
    Local(u64),
    Remote { src: usize, bytes: u64 },
}

impl<D: ExchangeData> Puller<D> {
    pub(crate) fn new(
        ctx: &RoutingContext,
        channel: usize,
        connector: ConnectorId,
        journal: Journal,
    ) -> Self {
        let my_local = ctx.my_index % ctx.workers_per_process;
        let local_key = ChannelKey::Data(ctx.dataflow, channel, my_local);
        let remote_key = ChannelKey::RemoteData(ctx.dataflow, channel, my_local);
        let flow = ctx.flow.as_ref().map(|registry| PullerFlow {
            registry: registry.clone(),
            local_cell: registry.cell(FlowKey::Local(ctx.process, ctx.dataflow, channel, my_local)),
            net: ctx.net.clone(),
            tag: data_tag(ctx.dataflow, channel, my_local),
        });
        Puller {
            connector,
            local: ctx.registry.receiver(local_key),
            remote: ctx.registry.receiver(remote_key),
            spares: ctx.registry.spares(ctx.dataflow, channel, my_local),
            journal,
            unsettled: None,
            dataflow: ctx.dataflow as u32,
            recorder: ctx.recorder.clone(),
            flow,
            owed: None,
        }
    }

    /// Returns a consumed batch container to the endpoint's spare stack,
    /// where local senders and the remote-decode path pick it back up.
    pub(crate) fn recycle(&mut self, container: Vec<D>) {
        self.spares.put(container);
    }

    /// Retires the previously pulled batch, then pulls the next one.
    pub(crate) fn pull(&mut self) -> Option<Message<D>> {
        self.settle();
        let (message, remote_payload) = if let Some(m) = self.local.try_recv() {
            (Some(m), None)
        } else if let Some((src, bytes)) = self.remote.try_recv() {
            // Decode into a recycled container: zero container
            // allocations once the endpoint is warm (DESIGN.md §16).
            let container = self.spares.pop();
            let m = Message::<D>::decode_into(&bytes, container).unwrap_or_else(|e| {
                panic!(
                    "dataflow {} connector {}: undecodable data batch ({} bytes) — \
                     wire corruption or a mismatched channel type: {e:?}",
                    self.dataflow,
                    self.connector.0,
                    bytes.len()
                )
            });
            (Some(m), Some((src as usize, bytes.len() as u64)))
        } else {
            (None, None)
        };
        if let Some(m) = &message {
            self.unsettled = Some(m.time);
            if self.flow.is_some() {
                // The ledger balances only if both sides agree on the
                // price: local batches use `credit_cost` (what the sender
                // spent); remote batches use the frame length — the very
                // same buffer the sender priced its spend with.
                self.owed = Some(match remote_payload {
                    Some((src, bytes)) => OwedCredit::Remote { src, bytes },
                    None => OwedCredit::Local(m.credit_cost()),
                });
            }
            self.recorder.record(TelemetryEvent::MessageReceived {
                dataflow: self.dataflow,
                connector: self.connector.0 as u32,
                records: m.data.len() as u32,
                remote: remote_payload.is_some(),
            });
        }
        message
    }

    /// Journals the retirement of the last pulled batch, if any. Called
    /// when the vertex finishes processing it (§2.3: the occurrence count
    /// decrements as OnRecv completes).
    pub(crate) fn settle(&mut self) {
        if let Some(time) = self.unsettled.take() {
            journal_update(&self.journal, Pointstamp::on_edge(time, self.connector), -1);
        }
        // Credits return only after OnRecv completes, mirroring the §2.3
        // retirement: the batch's memory is genuinely free by now.
        if let Some(owed) = self.owed.take() {
            if let Some(flow) = &self.flow {
                match owed {
                    OwedCredit::Local(bytes) => flow.registry.release(&flow.local_cell, bytes),
                    OwedCredit::Remote { src, bytes } => {
                        // The return rides the control plane like a
                        // heartbeat: exempt from latency and loss
                        // injection, lost only to a crash or partition —
                        // in which case the parked sender escapes through
                        // its bounded wait.
                        if let Some(net) = &flow.net {
                            // slab-exempt: a ~10-byte control-plane credit
                            // return, not data-plane traffic.
                            let mut payload = Vec::new();
                            flow.tag.encode(&mut payload);
                            bytes.encode(&mut payload);
                            let _ = net.lock().send_control(src, CREDIT_TAG, payload.into());
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_wire::encode_to_vec;
    use std::cell::RefCell;

    fn ctx(registry: Arc<ProcessRegistry>) -> RoutingContext {
        RoutingContext {
            dataflow: 0,
            my_index: 0,
            peers: 2,
            workers_per_process: 2,
            process: 0,
            batch_size: 4,
            tuning: None,
            slabs: Arc::new(SlabPool::default()),
            registry,
            net: None,
            escalation: Arc::new(EscalationCell::default()),
            policy: RetryPolicy {
                retries: 0,
                backoff: std::time::Duration::ZERO,
            },
            recorder: Recorder::disabled(),
            flow: None,
            overload: None,
        }
    }

    fn journal() -> Journal {
        Rc::new(RefCell::new(Vec::new()))
    }

    #[test]
    fn tags_roundtrip() {
        for (d, c, w) in [(0, 0, 0), (5, 1000, 3), (1023, 16383, 127)] {
            assert_eq!(parse_data_tag(data_tag(d, c, w)), (d, c, w));
        }
        assert!(data_tag(1023, 16383, 127) < CENTRAL_TAG);
        assert!(data_tag(1023, 16383, 127) < CREDIT_TAG);
    }

    #[test]
    #[should_panic(expected = "too many dataflows")]
    fn overwide_tag_component_panics() {
        let _ = data_tag(1 << DATAFLOW_BITS, 0, 0);
    }

    #[test]
    fn registry_creates_lazily_and_takes_once() {
        let reg = ProcessRegistry::default();
        let tx = reg.sender::<u32>(ChannelKey::Data(0, 1, 0));
        tx.send(7);
        let rx = reg.receiver::<u32>(ChannelKey::Data(0, 1, 0));
        assert_eq!(rx.recv(), 7);
    }

    #[test]
    #[should_panic(expected = "taken more than once")]
    fn registry_rejects_double_take() {
        let reg = ProcessRegistry::default();
        let _ = reg.receiver::<u32>(ChannelKey::Data(0, 0, 0));
        let _ = reg.receiver::<u32>(ChannelKey::Data(0, 0, 0));
    }

    #[test]
    fn exchange_routes_by_hash_and_batches() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let rc = ctx(reg.clone());
        let mut pusher = Pusher::new(
            &rc,
            3,
            ConnectorId(9),
            Pact::exchange(|x: &u64| *x),
            j.clone(),
        );
        let t = Timestamp::new(0);
        for i in 0..8u64 {
            pusher.give(t, i);
        }
        pusher.flush();
        // Evens to worker 0, odds to worker 1; batch size 4 → one batch each.
        let rx0 = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 3, 0));
        let rx1 = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 3, 1));
        assert_eq!(rx0.try_recv().unwrap().data, vec![0, 2, 4, 6]);
        assert_eq!(rx1.try_recv().unwrap().data, vec![1, 3, 5, 7]);
        // Two emitted batches → two +1 journal entries on connector 9.
        let entries = j.borrow();
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .all(|(p, d)| *d == 1 && p.location == crate::graph::Location::Edge(ConnectorId(9))));
    }

    #[test]
    fn time_changes_flush_buffers() {
        let reg = Arc::new(ProcessRegistry::default());
        let rc = ctx(reg.clone());
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(0), Pact::Pipeline, journal());
        pusher.give(Timestamp::new(0), 1u64);
        pusher.give(Timestamp::new(1), 2u64);
        pusher.flush();
        let rx = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 0, 0));
        let m1 = rx.try_recv().unwrap();
        let m2 = rx.try_recv().unwrap();
        assert_eq!((m1.time.epoch, &m1.data[..]), (0, &[1u64][..]));
        assert_eq!((m2.time.epoch, &m2.data[..]), (1, &[2u64][..]));
    }

    #[test]
    fn puller_journals_retirement_after_settle() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let rc = ctx(reg);
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(4), Pact::Pipeline, j.clone());
        let mut puller = Puller::<u64>::new(&rc, 0, ConnectorId(4), j.clone());
        pusher.give(Timestamp::new(2), 42u64);
        pusher.flush();
        let m = puller.pull().unwrap();
        assert_eq!(m.data, vec![42]);
        // Only the +1 so far: retirement waits for settle.
        assert_eq!(j.borrow().len(), 1);
        puller.settle();
        let entries = j.borrow();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].1, -1);
        assert_eq!(entries[1].0.time, Timestamp::new(2));
    }

    #[test]
    fn pull_settles_previous_batch() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let rc = ctx(reg);
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(0), Pact::Pipeline, j.clone());
        let mut puller = Puller::<u64>::new(&rc, 0, ConnectorId(0), j.clone());
        pusher.give(Timestamp::new(0), 1u64);
        pusher.flush();
        pusher.give(Timestamp::new(1), 2u64);
        pusher.flush();
        assert!(puller.pull().is_some());
        assert!(puller.pull().is_some(), "second pull settles the first");
        assert_eq!(
            j.borrow().iter().filter(|(_, d)| *d == -1).count(),
            1,
            "first batch retired by the second pull"
        );
        assert!(puller.pull().is_none());
        assert_eq!(j.borrow().iter().filter(|(_, d)| *d == -1).count(), 2);
    }

    #[test]
    fn broadcast_reaches_all_local_workers() {
        let reg = Arc::new(ProcessRegistry::default());
        let rc = ctx(reg.clone());
        let mut pusher = Pusher::new(&rc, 1, ConnectorId(0), Pact::Broadcast, journal());
        pusher.give(Timestamp::new(0), 5u64);
        pusher.flush();
        for w in 0..2 {
            let rx = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 1, w));
            assert_eq!(rx.try_recv().unwrap().data, vec![5]);
        }
        assert_eq!(pusher.emitted(), 2);
    }

    #[test]
    fn pusher_and_puller_record_telemetry() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let mut rc = ctx(reg);
        rc.recorder = Recorder::with_capacity(16);
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(4), Pact::Pipeline, j.clone());
        let mut puller = Puller::<u64>::new(&rc, 0, ConnectorId(4), j);
        pusher.give(Timestamp::new(0), 1u64);
        pusher.give(Timestamp::new(0), 2u64);
        pusher.flush();
        assert!(puller.pull().is_some());
        let t = rc.recorder.harvest(0).unwrap();
        assert_eq!(t.counters.messages_sent, 1);
        assert_eq!(t.counters.records_sent, 2);
        assert_eq!(t.counters.messages_received, 1);
        assert_eq!(t.counters.records_received, 2);
        let ((df, conn), c) = t.connectors[0];
        assert_eq!((df, conn), (0, 4));
        assert_eq!(c.bytes_out, 0, "local batches never serialize");
    }

    fn flow_ctx(registry: Arc<ProcessRegistry>, budget: usize) -> RoutingContext {
        use super::super::flow::FlowConfig;
        let mut rc = ctx(registry);
        let config = FlowConfig::default()
            .budget(budget)
            .credit_wait(std::time::Duration::from_millis(5));
        rc.flow = Some(Arc::new(FlowRegistry::new(config, None)));
        rc.overload = Some(Arc::new(OverloadFlag::default()));
        rc
    }

    #[test]
    fn local_credits_spend_on_emit_and_return_on_settle() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let mut rc = flow_ctx(reg, 1 << 20);
        // Route to worker 1 (cross-worker, credited); we are worker 0.
        rc.my_index = 0;
        let flow = rc.flow.clone().unwrap();
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(1), Pact::exchange(|_: &u64| 1), j.clone());
        pusher.give(Timestamp::new(0), 7u64);
        pusher.flush();
        assert!(flow.in_flight_bytes() > 0, "emit spends credits");
        let spent = flow.in_flight_bytes();
        assert_eq!(flow.peak_in_flight_bytes(), spent);
        // The receiving worker (global index 1) pulls and settles.
        let mut rx_ctx = flow_ctx_for_receiver(&rc, 1);
        rx_ctx.flow = Some(flow.clone());
        let mut puller = Puller::<u64>::new(&rx_ctx, 0, ConnectorId(1), j);
        assert!(puller.pull().is_some());
        assert_eq!(flow.in_flight_bytes(), spent, "credits return on settle, not pull");
        puller.settle();
        assert_eq!(flow.in_flight_bytes(), 0);
        assert_eq!(flow.returns(), 1);
    }

    fn flow_ctx_for_receiver(rc: &RoutingContext, my_index: usize) -> RoutingContext {
        RoutingContext {
            dataflow: rc.dataflow,
            my_index,
            peers: rc.peers,
            workers_per_process: rc.workers_per_process,
            process: rc.process,
            batch_size: rc.batch_size,
            tuning: rc.tuning.clone(),
            slabs: rc.slabs.clone(),
            registry: rc.registry.clone(),
            net: rc.net.clone(),
            escalation: rc.escalation.clone(),
            policy: rc.policy,
            recorder: rc.recorder.clone(),
            flow: rc.flow.clone(),
            overload: rc.overload.clone(),
        }
    }

    #[test]
    fn exhausted_credits_overdraft_after_bounded_wait() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let rc = flow_ctx(reg.clone(), 1); // 1-byte budget: second batch cannot fit
        let flow = rc.flow.clone().unwrap();
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(1), Pact::exchange(|_: &u64| 1), j);
        pusher.give(Timestamp::new(0), 7u64);
        pusher.flush(); // admitted: empty queue always admits
        assert_eq!(flow.overdrafts(), 0);
        pusher.give(Timestamp::new(0), 8u64);
        pusher.flush(); // parks for the full wait, then overdrafts
        assert_eq!(flow.overdrafts(), 1, "Block policy pierces the budget");
        assert!(flow.credit_waits() >= 1);
        assert!(flow.credit_wait_ns() > 0);
        // Both batches were nonetheless delivered — Block is lossless.
        let rx = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 0, 1));
        assert!(rx.try_recv().is_some());
        assert!(rx.try_recv().is_some());
    }

    #[test]
    fn self_routes_never_park() {
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let rc = flow_ctx(reg, 1); // tiny budget
        let flow = rc.flow.clone().unwrap();
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(0), Pact::Pipeline, j);
        let started = std::time::Instant::now();
        for i in 0..8u64 {
            pusher.give(Timestamp::new(0), i);
            pusher.flush();
        }
        assert!(
            started.elapsed() < std::time::Duration::from_millis(5),
            "self-routed batches must not wait for credits"
        );
        assert_eq!(flow.overdrafts(), 0, "forced spends are not overdrafts");
        assert!(flow.in_flight_bytes() > 0, "accounting still exact");
    }

    #[test]
    fn shed_policy_drops_with_exact_counts_when_shedding() {
        use super::super::flow::FlowConfig;
        let reg = Arc::new(ProcessRegistry::default());
        let j = journal();
        let mut rc = ctx(reg.clone());
        let config = FlowConfig::default()
            .budget(1)
            .credit_wait(std::time::Duration::from_millis(2))
            .policy(ShedPolicy::Shed);
        let flow = Arc::new(FlowRegistry::new(config, None));
        let overload = Arc::new(OverloadFlag::default());
        overload.set(OverloadState::Shedding);
        rc.flow = Some(flow.clone());
        rc.overload = Some(overload);
        let mut pusher = Pusher::new(&rc, 0, ConnectorId(1), Pact::exchange(|_: &u64| 1), j.clone());
        pusher.give(Timestamp::new(0), 7u64);
        pusher.flush(); // admitted
        pusher.give(Timestamp::new(0), 8u64);
        pusher.flush(); // shed
        assert_eq!(flow.shed_batches(), 1);
        assert_eq!(flow.shed_records(), 1);
        assert!(flow.shed_bytes() > 0);
        assert_eq!(flow.overdrafts(), 0);
        // The shed batch journaled +1 then −1: occurrence counts net zero.
        let entries = j.borrow();
        let sum: i64 = entries.iter().map(|(_, d)| *d).sum();
        assert_eq!(sum, 1, "one delivered (+1, unsettled) batch; shed nets zero");
        // Only one batch actually reached the queue.
        let rx = reg.receiver::<Message<u64>>(ChannelKey::Data(0, 0, 1));
        assert!(rx.try_recv().is_some());
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn message_wire_roundtrip() {
        let m = Message {
            time: Timestamp::with_counters(3, &[1]),
            data: vec!["a".to_string(), "b".to_string()],
        };
        let bytes = encode_to_vec(&m);
        assert_eq!(bytes.len(), m.encoded_len());
        assert_eq!(
            naiad_wire::decode_from_slice::<Message<String>>(&bytes).unwrap(),
            m
        );
    }
}
