//! Logical timestamps for timely dataflow (§2.1).
//!
//! A timestamp pairs an input *epoch* with one loop counter per enclosing
//! loop context: `(e ∈ N, ⟨c₁, …, cₖ⟩ ∈ Nᵏ)`. The system ingress, egress,
//! and feedback vertices rewrite these counters as messages cross loop
//! boundaries, and the partial order on timestamps is what the progress
//! tracker reasons about.

use naiad_wire::{Wire, WireError};

use crate::order::PartialOrder;

/// Maximum loop nesting depth supported by the inline counter stack.
///
/// Keeping counters inline makes `Timestamp` a `Copy` value of fixed size:
/// timestamps are compared and hashed on every progress-tracking operation,
/// so they must not allocate. Four levels is twice what any computation in
/// the paper uses (SCC nests two loops).
pub const MAX_LOOP_DEPTH: usize = 4;

/// A fixed-capacity stack of loop counters.
///
/// The stack grows by one when a message enters a loop context (ingress),
/// shrinks by one when it leaves (egress), and its top element is
/// incremented by feedback vertices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CounterStack {
    len: u8,
    vals: [u64; MAX_LOOP_DEPTH],
}

impl CounterStack {
    /// The empty stack (a timestamp outside any loop context).
    pub const EMPTY: CounterStack = CounterStack {
        len: 0,
        vals: [0; MAX_LOOP_DEPTH],
    };

    /// Builds a stack from a slice of counters, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if `counters` has more than [`MAX_LOOP_DEPTH`] entries.
    pub fn from_slice(counters: &[u64]) -> Self {
        assert!(
            counters.len() <= MAX_LOOP_DEPTH,
            "loop nesting deeper than MAX_LOOP_DEPTH ({MAX_LOOP_DEPTH})"
        );
        let mut vals = [0; MAX_LOOP_DEPTH];
        vals[..counters.len()].copy_from_slice(counters);
        CounterStack {
            len: counters.len() as u8,
            vals,
        }
    }

    /// The number of counters (current loop nesting depth).
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The counters as a slice, outermost first.
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..self.len()]
    }

    /// Returns the stack with `value` pushed.
    ///
    /// # Panics
    ///
    /// Panics if the stack is already at [`MAX_LOOP_DEPTH`].
    #[must_use]
    pub fn pushed(mut self, value: u64) -> Self {
        assert!(
            self.len() < MAX_LOOP_DEPTH,
            "loop nesting deeper than MAX_LOOP_DEPTH ({MAX_LOOP_DEPTH})"
        );
        self.vals[self.len()] = value;
        self.len += 1;
        self
    }

    /// Returns the stack with its top counter removed, or `None` if empty.
    #[must_use]
    pub fn popped(mut self) -> Option<Self> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        self.vals[self.len()] = 0;
        Some(self)
    }

    /// Returns the stack with `amount` added to its top counter, or `None`
    /// if the stack is empty.
    #[must_use]
    pub fn incremented(mut self, amount: u64) -> Option<Self> {
        if self.len == 0 {
            return None;
        }
        let top = self.len() - 1;
        self.vals[top] = self.vals[top].saturating_add(amount);
        Some(self)
    }

    /// Lexicographic comparison, the total order §2.1 specifies for loop
    /// counters of equal depth.
    pub fn lex_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for CounterStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl Wire for CounterStack {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.len);
        for v in self.as_slice() {
            v.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&len, rest) = input.split_first().ok_or(WireError::UnexpectedEof)?;
        *input = rest;
        if usize::from(len) > MAX_LOOP_DEPTH {
            return Err(WireError::InvalidValue);
        }
        let mut out = CounterStack::EMPTY;
        for _ in 0..len {
            out = out.pushed(u64::decode(input)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_slice().iter().map(Wire::encoded_len).sum::<usize>()
    }
}

/// A logical timestamp: input epoch plus loop counters (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Timestamp {
    /// Input epoch assigned by the external producer.
    pub epoch: u64,
    /// One counter per enclosing loop context, outermost first.
    pub counters: CounterStack,
}

impl Timestamp {
    /// A timestamp in the top-level streaming context.
    pub fn new(epoch: u64) -> Self {
        Timestamp {
            epoch,
            counters: CounterStack::EMPTY,
        }
    }

    /// A timestamp with explicit loop counters, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if `counters` has more than [`MAX_LOOP_DEPTH`] entries.
    pub fn with_counters(epoch: u64, counters: &[u64]) -> Self {
        Timestamp {
            epoch,
            counters: CounterStack::from_slice(counters),
        }
    }

    /// Loop nesting depth of this timestamp.
    pub fn depth(&self) -> usize {
        self.counters.len()
    }

    /// The ingress adjustment: `(e, ⟨c₁…cₖ⟩) → (e, ⟨c₁…cₖ, 0⟩)`.
    ///
    /// # Panics
    ///
    /// Panics if the timestamp is already at [`MAX_LOOP_DEPTH`].
    #[must_use]
    pub fn entered(mut self) -> Self {
        self.counters = self.counters.pushed(0);
        self
    }

    /// The egress adjustment: `(e, ⟨c₁…cₖ₊₁⟩) → (e, ⟨c₁…cₖ⟩)`, or `None`
    /// at the top level.
    #[must_use]
    pub fn left(mut self) -> Option<Self> {
        self.counters = self.counters.popped()?;
        Some(self)
    }

    /// The feedback adjustment: `(e, ⟨c₁…cₖ⟩) → (e, ⟨c₁…cₖ + 1⟩)`, or
    /// `None` at the top level.
    #[must_use]
    pub fn incremented(mut self) -> Option<Self> {
        self.counters = self.counters.incremented(1)?;
        Some(self)
    }

    /// The "end of time" for a given depth, used by bounded feedback stages
    /// to discard messages past an iteration limit.
    pub fn max_for_depth(depth: usize) -> Self {
        let mut counters = CounterStack::EMPTY;
        for _ in 0..depth {
            counters = counters.pushed(u64::MAX);
        }
        Timestamp {
            epoch: u64::MAX,
            counters,
        }
    }
}

impl PartialOrder for Timestamp {
    /// §2.1: `t₁ ≤ t₂` iff `e₁ ≤ e₂` and the counter stacks compare
    /// lexicographically.
    ///
    /// Timestamps of different depths arise when comparing across loop
    /// contexts; the shorter stack is treated as zero-extended (entering a
    /// context starts at iteration 0), which keeps the relation
    /// transitive. At equal depth the order is antisymmetric; across
    /// depths it is a preorder — `(e, ⟨⟩)` and `(e, ⟨0⟩)` bound each
    /// other. The progress machinery itself only ever compares timestamps
    /// of one location's depth.
    fn less_equal(&self, other: &Self) -> bool {
        if self.epoch != other.epoch {
            // The producer's epochs are totally ordered and dominate.
            return self.epoch < other.epoch;
        }
        let lhs = self.counters.as_slice();
        let rhs = other.counters.as_slice();
        let d = lhs.len().min(rhs.len());
        match lhs[..d].cmp(&rhs[..d]) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            // Equal common prefix: `self` precedes iff its surplus
            // counters are all zero (it equals the zero-extension).
            std::cmp::Ordering::Equal => lhs[d..].iter().all(|&c| c == 0),
        }
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match (self.less_equal(other), other.less_equal(self)) {
            (true, true) => Some(std::cmp::Ordering::Equal),
            (true, false) => Some(std::cmp::Ordering::Less),
            (false, true) => Some(std::cmp::Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl std::fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {:?})", self.epoch, self.counters)
    }
}

impl Wire for Timestamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.counters.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Timestamp {
            epoch: u64::decode(input)?,
            counters: CounterStack::decode(input)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.epoch.encoded_len() + self.counters.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(epoch: u64, counters: &[u64]) -> Timestamp {
        Timestamp::with_counters(epoch, counters)
    }

    #[test]
    fn counter_stack_push_pop_inc() {
        let s = CounterStack::EMPTY.pushed(3).pushed(5);
        assert_eq!(s.as_slice(), &[3, 5]);
        assert_eq!(s.incremented(2).unwrap().as_slice(), &[3, 7]);
        assert_eq!(s.popped().unwrap().as_slice(), &[3]);
        assert_eq!(CounterStack::EMPTY.popped(), None);
        assert_eq!(CounterStack::EMPTY.incremented(1), None);
    }

    #[test]
    #[should_panic(expected = "MAX_LOOP_DEPTH")]
    fn counter_stack_overflow_panics() {
        let mut s = CounterStack::EMPTY;
        for i in 0..=MAX_LOOP_DEPTH as u64 {
            s = s.pushed(i);
        }
    }

    #[test]
    fn system_vertex_adjustments_match_the_table() {
        // §2.1's table: ingress pushes 0, egress pops, feedback increments.
        let t = ts(2, &[7]);
        assert_eq!(t.entered(), ts(2, &[7, 0]));
        assert_eq!(t.left().unwrap(), ts(2, &[]));
        assert_eq!(t.incremented().unwrap(), ts(2, &[8]));
        assert_eq!(Timestamp::new(1).left(), None);
        assert_eq!(Timestamp::new(1).incremented(), None);
    }

    #[test]
    fn order_is_product_of_epoch_and_lexicographic_counters() {
        assert!(ts(0, &[5]).less_equal(&ts(1, &[0])));
        assert!(!ts(1, &[0]).less_equal(&ts(0, &[5])));
        assert!(ts(1, &[2, 9]).less_equal(&ts(1, &[3, 0])));
        assert!(ts(1, &[2, 9]).less_equal(&ts(1, &[2, 9])));
        assert!(!ts(1, &[3, 0]).less_equal(&ts(1, &[2, 9])));
    }

    #[test]
    fn epoch_dominates_counters() {
        // An earlier epoch precedes a later epoch even with larger counters:
        // the producer's epochs are totally ordered.
        assert!(ts(0, &[100, 100]).less_equal(&ts(1, &[0, 0])));
    }

    #[test]
    fn mixed_depth_comparison_zero_extends() {
        // A time at the enclosing context bounds the iterations within it
        // (entering starts at counter 0) …
        assert!(ts(1, &[2]).less_equal(&ts(1, &[2, 5])));
        assert!(ts(1, &[1]).less_equal(&ts(1, &[2, 5])));
        assert!(!ts(1, &[3]).less_equal(&ts(1, &[2, 5])));
        // … but a nonzero inner iteration does not precede the outer time.
        assert!(!ts(1, &[2, 5]).less_equal(&ts(1, &[2])));
        assert!(ts(1, &[2, 0]).less_equal(&ts(1, &[2])));
        // Transitivity holds across depths (regression for a bug found by
        // the order-laws property test): [2] ≰ [] since [2] ≠ zero-ext.
        assert!(!ts(4, &[2]).less_equal(&ts(4, &[])));
        assert!(ts(4, &[]).less_equal(&ts(4, &[0])));
    }

    #[test]
    fn partial_ord_agrees_with_less_equal() {
        use std::cmp::Ordering;
        assert_eq!(ts(0, &[]).partial_cmp(&ts(1, &[])), Some(Ordering::Less));
        assert_eq!(ts(1, &[1]).partial_cmp(&ts(1, &[1])), Some(Ordering::Equal));
        assert_eq!(ts(2, &[]).partial_cmp(&ts(1, &[])), Some(Ordering::Greater));
        // Incomparable pair: epoch advanced one way, counters the other.
        assert_eq!(ts(0, &[5]).partial_cmp(&ts(1, &[0])), Some(Ordering::Less));
    }

    #[test]
    fn timestamps_roundtrip_on_the_wire() {
        for t in [ts(0, &[]), ts(5, &[1]), ts(u64::MAX, &[3, 0, 9, 2])] {
            let bytes = naiad_wire::encode_to_vec(&t);
            assert_eq!(bytes.len(), t.encoded_len());
            assert_eq!(
                naiad_wire::decode_from_slice::<Timestamp>(&bytes).unwrap(),
                t
            );
        }
    }

    #[test]
    fn wire_rejects_overdeep_stacks() {
        let bytes = [9u8];
        assert!(naiad_wire::decode_from_slice::<CounterStack>(&bytes).is_err());
    }

    #[test]
    fn max_for_depth_dominates() {
        let top = Timestamp::max_for_depth(2);
        assert!(ts(3, &[100, 200]).less_equal(&top));
        assert!(!top.less_equal(&ts(3, &[100, 200])));
    }
}
