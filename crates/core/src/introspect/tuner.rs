//! The autotuner: closes the loop from critical-path summaries back into
//! runtime knobs.
//!
//! The paper tunes Naiad by hand — Figure 6a sweeps the exchange batch
//! size, §3.3 picks a progress accumulation policy per deployment. The
//! [`Autotuner`] automates both online: it watches the per-epoch
//! [`CriticalPathSummary`] stream produced by the observer dataflow and
//! hill-climbs the [`TuningKnobs`](crate::runtime::TuningKnobs) the
//! runtime reads dynamically.
//!
//! Guard rails, in order of importance:
//!
//! * **Bounded**: batch size stays within `[1, 65536]`, the progress
//!   flush threshold within `[1, 64]`. A misbehaving cost signal cannot
//!   drive the runtime into a pathological configuration.
//! * **Hysteresis**: a move must improve the windowed cost by at least
//!   5% to be kept; anything inside the band reads as noise and reverts.
//! * **Revert on regression**: a move that makes the cost measurably
//!   worse is undone immediately; after probing both directions the
//!   tuner settles and stops adjusting.
//!
//! The tuner itself is pure — [`Autotuner::observe`] returns the
//! [`TuningDecision`]s it made and mutates only the shared knobs; the
//! caller records them as
//! [`TelemetryEvent::TuningDecision`](crate::telemetry::TelemetryEvent)
//! so decisions land in the same telemetry stream they were derived from.

use crate::runtime::TuningKnobs;
use crate::telemetry::TuningKnob;

use super::activity::CriticalPathSummary;

/// One knob adjustment made by the [`Autotuner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningDecision {
    /// The epoch whose summary triggered the adjustment.
    pub epoch: u64,
    /// Which knob was adjusted.
    pub knob: TuningKnob,
    /// Value before.
    pub from: u64,
    /// Value after.
    pub to: u64,
}

/// Direction the batch-size hill-climb is currently probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

impl Direction {
    fn flip(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// Online hill-climber over the shared [`TuningKnobs`].
///
/// Feed it every [`CriticalPathSummary`] in epoch order; it averages
/// `span_ns` over a small window, then doubles or halves the exchange
/// batch size while the windowed cost keeps improving by more than the
/// hysteresis band, reverting and settling once it stops. The progress
/// flush threshold is set proportionally to the observed progress-update
/// volume, with its own hysteresis.
#[derive(Debug)]
pub struct Autotuner {
    knobs: TuningKnobs,
    window: u32,
    /// Hysteresis band in thousandths (50 = 5%).
    hysteresis_milli: u64,
    min_batch: usize,
    max_batch: usize,
    max_flush: usize,
    min_credit: usize,
    max_credit: usize,
    min_pool: usize,
    max_pool: usize,
    // Measurement window.
    seen: u32,
    span_acc: u64,
    progress_acc: u64,
    wait_acc: u64,
    transit_acc: u64,
    // Batch-size climb state.
    last_cost: Option<u64>,
    direction: Direction,
    flipped: bool,
    settled: bool,
}

impl Autotuner {
    /// A tuner driving the given knobs with the default window (2
    /// epochs), hysteresis (5%), and bounds.
    #[must_use]
    pub fn new(knobs: TuningKnobs) -> Self {
        Autotuner {
            knobs,
            window: 2,
            hysteresis_milli: 50,
            min_batch: 1,
            max_batch: 65_536,
            max_flush: 64,
            min_credit: 64 << 10,
            max_credit: 1 << 30,
            min_pool: 4 << 20,
            max_pool: 1 << 30,
            seen: 0,
            span_acc: 0,
            progress_acc: 0,
            wait_acc: 0,
            transit_acc: 0,
            last_cost: None,
            direction: Direction::Up,
            flipped: false,
            settled: false,
        }
    }

    /// Whether the batch-size climb has settled (no further adjustments
    /// will be made).
    #[must_use]
    pub fn settled(&self) -> bool {
        self.settled
    }

    /// Folds in one epoch's summary; returns the decisions made (empty
    /// while a measurement window is still filling).
    pub fn observe(&mut self, summary: &CriticalPathSummary) -> Vec<TuningDecision> {
        self.span_acc += summary.span_ns;
        self.progress_acc += summary.progress_updates;
        self.wait_acc += summary.credit_wait_ns;
        self.transit_acc += summary.transit_bytes;
        self.seen += 1;
        if self.seen < self.window {
            return Vec::new();
        }
        let cost = self.span_acc / u64::from(self.window);
        let progress = self.progress_acc / u64::from(self.window);
        let wait = self.wait_acc / u64::from(self.window);
        let transit = self.transit_acc / u64::from(self.window);
        self.seen = 0;
        self.span_acc = 0;
        self.progress_acc = 0;
        self.wait_acc = 0;
        self.transit_acc = 0;

        let mut decisions = Vec::new();
        self.tune_batch(summary.epoch, cost, &mut decisions);
        self.tune_progress_flush(summary.epoch, progress, &mut decisions);
        self.tune_credit(summary.epoch, cost, wait, &mut decisions);
        self.tune_pool(summary.epoch, transit, &mut decisions);
        decisions
    }

    /// One hill-climb step on the exchange batch size.
    fn tune_batch(&mut self, epoch: u64, cost: u64, decisions: &mut Vec<TuningDecision>) {
        if self.settled {
            return;
        }
        let current = self.knobs.batch_size();
        let Some(last) = self.last_cost else {
            // First window: baseline measured, start probing upward.
            self.last_cost = Some(cost);
            self.move_batch(epoch, current, self.step(current), decisions);
            return;
        };
        let h = self.hysteresis_milli;
        if cost.saturating_mul(1000) <= last.saturating_mul(1000 - h) {
            // Measurably better: keep climbing in the same direction.
            self.last_cost = Some(cost);
            let next = self.step(current);
            if next == current {
                self.settled = true; // pinned at a bound
            } else {
                self.move_batch(epoch, current, next, decisions);
            }
        } else {
            // Worse, or inside the noise band: the previous setting wins.
            // `last_cost` still describes it, so it stays the baseline.
            let previous = self.unstep(current);
            if self.flipped || previous == current {
                // Both directions probed (or nowhere to go): settle there.
                self.settled = true;
                self.move_batch(epoch, current, previous, decisions);
            } else {
                // First regression: probe the other side of the baseline.
                self.flipped = true;
                self.direction = self.direction.flip();
                self.move_batch(epoch, current, self.step(previous), decisions);
            }
        }
    }

    /// Sets the progress flush threshold proportional to progress-update
    /// volume: one update per epoch keeps eager flushing, heavy progress
    /// chatter batches up to [`Autotuner::max_flush`] updates. Only moves
    /// on a ≥2× change, so the threshold does not chase noise.
    fn tune_progress_flush(&mut self, epoch: u64, progress: u64, decisions: &mut Vec<TuningDecision>) {
        let current = self.knobs.progress_flush();
        let target = usize::try_from(progress / 64)
            .unwrap_or(self.max_flush)
            .clamp(1, self.max_flush);
        if target != current && (target >= current * 2 || current >= target * 2) {
            self.knobs.set_progress_flush(target);
            decisions.push(TuningDecision {
                epoch,
                knob: TuningKnob::ProgressFlush,
                from: current as u64,
                to: target as u64,
            });
        }
    }

    /// Grows the data-plane credit budget when backpressure dominates
    /// the epoch: a windowed credit-wait share of 10% or more of the
    /// epoch span doubles the budget, clamped to `[64 KiB, 1 GiB]`.
    /// Growth-only — shrinking on a quiet window would oscillate against
    /// the very waits the larger budget just eliminated.
    fn tune_credit(&mut self, epoch: u64, cost: u64, wait: u64, decisions: &mut Vec<TuningDecision>) {
        if wait.saturating_mul(10) < cost.max(1) {
            return;
        }
        let current = self.knobs.credit_budget();
        let target = current
            .saturating_mul(2)
            .clamp(self.min_credit, self.max_credit);
        if target != current {
            self.knobs.set_credit_budget(target);
            decisions.push(TuningDecision {
                epoch,
                knob: TuningKnob::CreditBudget,
                from: current as u64,
                to: target as u64,
            });
        }
    }

    /// Grows the slab-pool resident cap when an epoch's remote traffic
    /// overflows it: slabs discarded because the pool is full are
    /// allocations the next epoch pays again, so the cap doubles until a
    /// window's transit volume fits, clamped to `[4 MiB, 1 GiB]`.
    /// Growth-only, for the same reason as the credit budget.
    fn tune_pool(&mut self, epoch: u64, transit: u64, decisions: &mut Vec<TuningDecision>) {
        let current = self.knobs.pool_resident_cap();
        if transit <= current as u64 {
            return;
        }
        let target = current
            .saturating_mul(2)
            .clamp(self.min_pool, self.max_pool);
        if target != current {
            self.knobs.set_pool_resident_cap(target);
            decisions.push(TuningDecision {
                epoch,
                knob: TuningKnob::PoolResidentCap,
                from: current as u64,
                to: target as u64,
            });
        }
    }

    /// The next batch size in the current probe direction, clamped.
    fn step(&self, from: usize) -> usize {
        match self.direction {
            Direction::Up => (from.saturating_mul(2)).min(self.max_batch),
            Direction::Down => (from / 2).max(self.min_batch),
        }
    }

    /// The batch size the last move departed from.
    fn unstep(&self, current: usize) -> usize {
        match self.direction {
            Direction::Up => (current / 2).max(self.min_batch),
            Direction::Down => (current.saturating_mul(2)).min(self.max_batch),
        }
    }

    fn move_batch(
        &mut self,
        epoch: u64,
        from: usize,
        to: usize,
        decisions: &mut Vec<TuningDecision>,
    ) {
        if from == to {
            return;
        }
        self.knobs.set_batch_size(to);
        decisions.push(TuningDecision {
            epoch,
            knob: TuningKnob::BatchSize,
            from: from as u64,
            to: to as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A summary whose only meaningful fields are the ones the tuner
    /// reads: `epoch`, `span_ns`, `progress_updates`.
    fn summary(epoch: u64, span_ns: u64, progress_updates: u64) -> CriticalPathSummary {
        CriticalPathSummary {
            epoch,
            workers: 2,
            span_ns,
            critical_worker: 0,
            critical_path_ns: span_ns,
            busy_total_ns: span_ns,
            busy_max_ns: span_ns,
            busy_min_ns: 0,
            idle_ns: 0,
            skew_milli: 1000,
            transit_msgs: 0,
            transit_records: 0,
            transit_bytes: 0,
            progress_batches: 0,
            progress_updates,
            notifications: 0,
            credit_waits: 0,
            credit_wait_ns: 0,
            samples: 1,
        }
    }

    /// Synthetic U-shaped cost: minimized at batch size 512, growing by
    /// 30% per power-of-two step away from it.
    fn cost_of(batch: usize) -> u64 {
        let log = |mut b: usize| {
            let mut l = 0i64;
            while b > 1 {
                b /= 2;
                l += 1;
            }
            l
        };
        let distance = (log(batch) - log(512)).unsigned_abs();
        1_000_000 + 300_000 * distance
    }

    /// Drives the tuner against the synthetic cost until it settles and
    /// returns the final batch size and the decision trace.
    fn converge(start: usize) -> (usize, Vec<TuningDecision>) {
        let knobs = TuningKnobs::with_batch_size(start);
        let mut tuner = Autotuner::new(knobs.clone());
        let mut decisions = Vec::new();
        for epoch in 0..64 {
            let span = cost_of(knobs.batch_size());
            decisions.extend(tuner.observe(&summary(epoch, span, 1)));
            if tuner.settled() {
                break;
            }
        }
        (knobs.batch_size(), decisions)
    }

    #[test]
    fn converges_to_the_optimum_from_below() {
        let (batch, decisions) = converge(64);
        assert_eq!(batch, 512);
        assert!(!decisions.is_empty());
        assert!(decisions
            .iter()
            .all(|d| d.knob == TuningKnob::BatchSize && d.to >= 1 && d.to <= 65_536));
    }

    #[test]
    fn converges_to_the_optimum_from_above() {
        let (batch, _) = converge(8192);
        assert_eq!(batch, 512);
    }

    #[test]
    fn settles_at_the_start_when_it_is_already_optimal() {
        let (batch, _) = converge(512);
        // One probe up, one revert: ends where it began.
        assert_eq!(batch, 512);
    }

    #[test]
    fn flat_cost_reverts_within_the_hysteresis_band() {
        let knobs = TuningKnobs::with_batch_size(256);
        let mut tuner = Autotuner::new(knobs.clone());
        // Constant cost: the probe move shows no ≥5% improvement, so the
        // tuner reverts to the baseline and settles.
        for epoch in 0..8 {
            tuner.observe(&summary(epoch, 1_000_000, 1));
        }
        assert!(tuner.settled());
        assert_eq!(knobs.batch_size(), 256);
    }

    #[test]
    fn progress_flush_follows_update_volume_with_hysteresis() {
        let knobs = TuningKnobs::with_batch_size(512);
        let mut tuner = Autotuner::new(knobs.clone());
        // Heavy progress chatter: ~640 updates per epoch → threshold 10.
        let mut decisions = Vec::new();
        for epoch in 0..4 {
            decisions.extend(tuner.observe(&summary(epoch, 1_000_000, 640)));
        }
        assert_eq!(knobs.progress_flush(), 10);
        assert!(decisions
            .iter()
            .any(|d| d.knob == TuningKnob::ProgressFlush && d.to == 10));
        // A modest change (10 → 12 target) stays put under hysteresis.
        for epoch in 4..8 {
            tuner.observe(&summary(epoch, 1_000_000, 768));
        }
        assert_eq!(knobs.progress_flush(), 10);
    }

    #[test]
    fn credit_budget_grows_under_sustained_backpressure_and_stays_clamped() {
        let knobs = TuningKnobs::with_batch_size(512);
        knobs.set_credit_budget(1 << 20);
        let mut tuner = Autotuner::new(knobs.clone());
        // 40% of the epoch spent waiting for credit: budget doubles once
        // per window until the 1 GiB clamp.
        let mut grew = Vec::new();
        for epoch in 0..64 {
            let mut s = summary(epoch, 1_000_000, 1);
            s.credit_waits = 5;
            s.credit_wait_ns = 400_000;
            grew.extend(
                tuner
                    .observe(&s)
                    .into_iter()
                    .filter(|d| d.knob == TuningKnob::CreditBudget),
            );
        }
        assert!(!grew.is_empty());
        assert!(grew.iter().all(|d| d.to == (d.from * 2).min(1 << 30)));
        assert_eq!(knobs.credit_budget(), 1 << 30, "pinned at the clamp");
        // A calm stream (no waits) never shrinks the budget.
        for epoch in 64..72 {
            let calm: Vec<_> = tuner
                .observe(&summary(epoch, 1_000_000, 1))
                .into_iter()
                .filter(|d| d.knob == TuningKnob::CreditBudget)
                .collect();
            assert!(calm.is_empty());
        }
        assert_eq!(knobs.credit_budget(), 1 << 30);
    }

    #[test]
    fn pool_cap_grows_to_fit_transit_volume_and_stays_clamped() {
        let knobs = TuningKnobs::with_batch_size(512);
        assert_eq!(knobs.pool_resident_cap(), 32 << 20);
        let mut tuner = Autotuner::new(knobs.clone());
        // 256 MiB of remote traffic per epoch: the 32 MiB default cap
        // doubles once per window until the traffic fits (256 MiB).
        let mut grew = Vec::new();
        for epoch in 0..64 {
            let mut s = summary(epoch, 1_000_000, 1);
            s.transit_bytes = 256 << 20;
            grew.extend(
                tuner
                    .observe(&s)
                    .into_iter()
                    .filter(|d| d.knob == TuningKnob::PoolResidentCap),
            );
        }
        assert!(!grew.is_empty());
        assert!(grew.iter().all(|d| d.to == d.from * 2 && d.to <= 1 << 30));
        assert_eq!(knobs.pool_resident_cap(), 256 << 20);
        // Calm traffic never shrinks the cap.
        for epoch in 64..72 {
            let calm: Vec<_> = tuner
                .observe(&summary(epoch, 1_000_000, 1))
                .into_iter()
                .filter(|d| d.knob == TuningKnob::PoolResidentCap)
                .collect();
            assert!(calm.is_empty());
        }
        assert_eq!(knobs.pool_resident_cap(), 256 << 20);
    }

    #[test]
    fn decisions_stay_within_bounds_under_adversarial_costs() {
        // A cost that always "improves" drives the climb to the bound,
        // where it settles instead of overflowing.
        let knobs = TuningKnobs::with_batch_size(16_384);
        let mut tuner = Autotuner::new(knobs.clone());
        let mut span = 64_000_000u64;
        for epoch in 0..64 {
            tuner.observe(&summary(epoch, span, 1));
            span = span * 80 / 100; // monotone 20% improvement
            if tuner.settled() {
                break;
            }
        }
        assert!(knobs.batch_size() <= 65_536);
        assert!(tuner.settled());
    }
}
