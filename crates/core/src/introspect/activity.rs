//! The program-activity graph: telemetry events attributed to epochs.
//!
//! Following SnailTrail's model, every attributable telemetry event
//! becomes one [`ActivitySample`] — a span of worker activity (operator
//! scheduling, message transit, progress traffic, notification delivery)
//! tagged with the *source epoch* it served. Samples are what flow into
//! the observer dataflow; [`EpochAccumulator`] folds the samples of one
//! epoch into a [`CriticalPathSummary`].
//!
//! The event→sample mapping lives in [`AttributionState`] and is shared
//! verbatim between the online path (the step hook draining the recorder
//! tap) and the offline reference ([`offline_reference`] over a harvested
//! [`WorkerTelemetry`] log) — the golden test's equality is by
//! construction, not by coincidence.
//!
//! All arithmetic is integer-only so summaries are bit-identical across
//! runs, platforms, and the online/offline split.

use std::collections::{BTreeMap, HashMap};

use naiad_wire::{Wire, WireError};

use crate::telemetry::{EventRecord, TelemetryEvent, WorkerTelemetry};

/// The kind of activity a sample attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// An operator scheduling slice that processed work (`worked == true`).
    Schedule,
    /// A data batch emitted on a connector.
    TransitOut,
    /// A data batch pulled by the receiving vertex.
    TransitIn,
    /// Progress-protocol traffic (batch sent, deposited, or applied).
    Progress,
    /// A notification delivered to an operator.
    Notify,
    /// A sender parked waiting for data-plane credit (backpressure).
    CreditWait,
}

impl ActivityKind {
    fn code(self) -> u8 {
        match self {
            ActivityKind::Schedule => 0,
            ActivityKind::TransitOut => 1,
            ActivityKind::TransitIn => 2,
            ActivityKind::Progress => 3,
            ActivityKind::Notify => 4,
            ActivityKind::CreditWait => 5,
        }
    }
}

impl Wire for ActivityKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.code());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let code = u8::decode(input)?;
        match code {
            0 => Ok(ActivityKind::Schedule),
            1 => Ok(ActivityKind::TransitOut),
            2 => Ok(ActivityKind::TransitIn),
            3 => Ok(ActivityKind::Progress),
            4 => Ok(ActivityKind::Notify),
            5 => Ok(ActivityKind::CreditWait),
            other => Err(WireError::InvalidTag(other)),
        }
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

/// One node of the program-activity graph: a span of attributable worker
/// activity, tagged with the source epoch it served.
///
/// Samples are exchanged between workers by `epoch`, so the summary for
/// one epoch is assembled at exactly one analysis vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivitySample {
    /// Global index of the worker the activity ran on.
    pub worker: u32,
    /// Source epoch the activity is attributed to.
    pub epoch: u64,
    /// What kind of activity this is.
    pub kind: ActivityKind,
    /// Start of the span, nanoseconds on the worker's own clock.
    pub start_ns: u64,
    /// Span duration (zero for instantaneous events like transit).
    pub duration_ns: u64,
    /// Records carried (batch records, progress updates), if any.
    pub records: u32,
    /// Serialized bytes carried, if any.
    pub bytes: u32,
    /// Stage or connector the activity belongs to.
    pub stage: u32,
    /// Originating sequence number (schedule slice or progress batch).
    pub seq: u64,
}

impl Wire for ActivitySample {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.worker.encode(buf);
        self.epoch.encode(buf);
        self.kind.encode(buf);
        self.start_ns.encode(buf);
        self.duration_ns.encode(buf);
        self.records.encode(buf);
        self.bytes.encode(buf);
        self.stage.encode(buf);
        self.seq.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ActivitySample {
            worker: u32::decode(input)?,
            epoch: u64::decode(input)?,
            kind: ActivityKind::decode(input)?,
            start_ns: u64::decode(input)?,
            duration_ns: u64::decode(input)?,
            records: u32::decode(input)?,
            bytes: u32::decode(input)?,
            stage: u32::decode(input)?,
            seq: u64::decode(input)?,
        })
    }
}

/// Incremental event→sample attribution for one worker's event stream.
///
/// Fed event records in log order; returns the sample each attributable
/// event maps to. Non-attributable events (frontier probes, checkpoints,
/// faults, `ScheduleStart`, …) return `None` and leave the state
/// untouched, so feeding the *full* log and feeding the tap's filtered
/// subsequence produce identical samples.
///
/// Epoch attribution: `ScheduleStop` carries the tracker's minimum open
/// epoch, which becomes the running attribution epoch for subsequent
/// transit and progress events (they serve the oldest open work).
/// Notifications carry their own epoch.
#[derive(Debug)]
pub struct AttributionState {
    worker: u32,
    last_epoch: u64,
}

impl AttributionState {
    /// New state for the given worker, starting at epoch 0.
    pub fn new(worker: u32) -> Self {
        AttributionState {
            worker,
            last_epoch: 0,
        }
    }

    /// The running attribution epoch: the smallest epoch any *future*
    /// inherited sample can carry. The tracker's minimum open epoch is
    /// monotone per worker, so this never regresses. The step hook uses
    /// it as a clamp on the observer clock: the observer input must not
    /// advance past it, or a transit/progress sample attributed to it
    /// could be introduced behind the observer frontier.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Attributes one event record; `None` for non-attributable events.
    pub fn push(&mut self, record: &EventRecord) -> Option<ActivitySample> {
        let worker = self.worker;
        match record.event {
            TelemetryEvent::ScheduleStop {
                stage,
                nanos,
                worked,
                epoch,
                seq,
                ..
            } => {
                self.last_epoch = epoch;
                worked.then(|| ActivitySample {
                    worker,
                    epoch,
                    kind: ActivityKind::Schedule,
                    start_ns: record.nanos.saturating_sub(nanos),
                    duration_ns: nanos,
                    records: 0,
                    bytes: 0,
                    stage,
                    seq,
                })
            }
            TelemetryEvent::MessageSent {
                connector,
                records,
                bytes,
                ..
            } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::TransitOut,
                start_ns: record.nanos,
                duration_ns: 0,
                records,
                bytes,
                stage: connector,
                seq: 0,
            }),
            TelemetryEvent::MessageReceived {
                connector, records, ..
            } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::TransitIn,
                start_ns: record.nanos,
                duration_ns: 0,
                records,
                bytes: 0,
                stage: connector,
                seq: 0,
            }),
            TelemetryEvent::ProgressBatchSent { seq, updates, .. } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::Progress,
                start_ns: record.nanos,
                duration_ns: 0,
                records: updates,
                bytes: 0,
                stage: 0,
                seq,
            }),
            TelemetryEvent::ProgressDeposited { updates, .. } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::Progress,
                start_ns: record.nanos,
                duration_ns: 0,
                records: updates,
                bytes: 0,
                stage: 0,
                seq: 0,
            }),
            TelemetryEvent::ProgressApplied { seq, updates, .. } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::Progress,
                start_ns: record.nanos,
                duration_ns: 0,
                records: updates,
                bytes: 0,
                stage: 0,
                seq,
            }),
            TelemetryEvent::NotificationDelivered { stage, epoch, .. } => Some(ActivitySample {
                worker,
                epoch,
                kind: ActivityKind::Notify,
                start_ns: record.nanos,
                duration_ns: 0,
                records: 0,
                bytes: 0,
                stage,
                seq: 0,
            }),
            TelemetryEvent::CreditWait {
                connector,
                waited_ns,
                bytes,
                ..
            } => Some(ActivitySample {
                worker,
                epoch: self.last_epoch,
                kind: ActivityKind::CreditWait,
                start_ns: record.nanos.saturating_sub(waited_ns),
                duration_ns: waited_ns,
                records: 0,
                bytes,
                stage: connector,
                seq: 0,
            }),
            _ => None,
        }
    }
}

/// Per-worker activity extent within one epoch.
#[derive(Debug, Clone, Copy)]
struct WorkerExtent {
    busy_ns: u64,
    first_ns: u64,
    last_ns: u64,
}

impl Default for WorkerExtent {
    fn default() -> Self {
        WorkerExtent {
            busy_ns: 0,
            first_ns: u64::MAX,
            last_ns: 0,
        }
    }
}

impl WorkerExtent {
    fn span_ns(&self) -> u64 {
        if self.first_ns == u64::MAX {
            0
        } else {
            self.last_ns.saturating_sub(self.first_ns)
        }
    }
}

/// Folds the [`ActivitySample`]s of one epoch into a
/// [`CriticalPathSummary`].
///
/// Accumulation is commutative (sums, minima, maxima, counts), so the
/// result is independent of sample arrival order — the online exchange
/// may interleave workers arbitrarily and still match the offline
/// reference.
#[derive(Debug, Default)]
pub struct EpochAccumulator {
    per_worker: HashMap<u32, WorkerExtent>,
    transit_msgs: u64,
    transit_records: u64,
    transit_bytes: u64,
    progress_batches: u64,
    progress_updates: u64,
    notifications: u64,
    credit_waits: u64,
    credit_wait_ns: u64,
    samples: u64,
}

impl EpochAccumulator {
    /// Folds one sample in.
    pub fn push(&mut self, sample: &ActivitySample) {
        self.samples += 1;
        let extent = self.per_worker.entry(sample.worker).or_default();
        extent.first_ns = extent.first_ns.min(sample.start_ns);
        extent.last_ns = extent
            .last_ns
            .max(sample.start_ns.saturating_add(sample.duration_ns));
        match sample.kind {
            ActivityKind::Schedule => extent.busy_ns += sample.duration_ns,
            ActivityKind::TransitOut => {
                self.transit_msgs += 1;
                self.transit_records += u64::from(sample.records);
                self.transit_bytes += u64::from(sample.bytes);
            }
            ActivityKind::TransitIn => {}
            ActivityKind::Progress => {
                self.progress_batches += 1;
                self.progress_updates += u64::from(sample.records);
            }
            ActivityKind::Notify => self.notifications += 1,
            ActivityKind::CreditWait => {
                self.credit_waits += 1;
                self.credit_wait_ns += sample.duration_ns;
            }
        }
    }

    /// Closes the epoch and produces its summary.
    ///
    /// The critical worker is the one with the largest busy time (lowest
    /// index breaks ties, so the choice is deterministic); the critical
    /// path is that worker's activity span, and idle time is the epoch's
    /// overall span minus the critical worker's busy time — the
    /// wall-clock residual not spent on critical work (transit, progress
    /// traffic, notification wait). `busy_max_ns + idle_ns == span_ns`
    /// by construction: the summary fully accounts for the epoch.
    #[must_use]
    pub fn finish(&self, epoch: u64) -> CriticalPathSummary {
        let mut workers: Vec<(u32, WorkerExtent)> =
            self.per_worker.iter().map(|(w, e)| (*w, *e)).collect();
        workers.sort_by_key(|(w, _)| *w);

        let mut busy_total_ns = 0u64;
        let mut busy_max_ns = 0u64;
        let mut busy_min_ns = u64::MAX;
        let mut span_ns = 0u64;
        // Ascending worker order plus strict comparison: the lowest index
        // wins busy-time ties, deterministically.
        let mut critical: Option<(u32, WorkerExtent)> = None;
        for (worker, extent) in &workers {
            busy_total_ns += extent.busy_ns;
            busy_max_ns = busy_max_ns.max(extent.busy_ns);
            busy_min_ns = busy_min_ns.min(extent.busy_ns);
            span_ns = span_ns.max(extent.span_ns());
            if critical.is_none_or(|(_, c)| extent.busy_ns > c.busy_ns) {
                critical = Some((*worker, *extent));
            }
        }
        let (critical_worker, critical_extent) = critical.unwrap_or((0, WorkerExtent::default()));
        let critical_path_ns = critical_extent.span_ns();
        let worker_count = workers.len() as u64;
        if busy_min_ns == u64::MAX {
            busy_min_ns = 0;
        }
        let busy_mean_ns = busy_total_ns.checked_div(worker_count).unwrap_or(0);
        let skew_milli = busy_max_ns.saturating_mul(1000) / busy_mean_ns.max(1);

        CriticalPathSummary {
            epoch,
            workers: u32::try_from(worker_count).unwrap_or(u32::MAX),
            span_ns,
            critical_worker,
            critical_path_ns,
            busy_total_ns,
            busy_max_ns,
            busy_min_ns,
            idle_ns: span_ns.saturating_sub(critical_extent.busy_ns),
            skew_milli,
            transit_msgs: self.transit_msgs,
            transit_records: self.transit_records,
            transit_bytes: self.transit_bytes,
            progress_batches: self.progress_batches,
            progress_updates: self.progress_updates,
            notifications: self.notifications,
            credit_waits: self.credit_waits,
            credit_wait_ns: self.credit_wait_ns,
            samples: self.samples,
        }
    }
}

/// The per-epoch critical-path analysis result.
///
/// All fields are integers; the summary is a pure fold over the epoch's
/// [`ActivitySample`]s, so the self-hosted dataflow and the offline
/// reference produce bit-identical values from the same samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPathSummary {
    /// The source epoch summarized.
    pub epoch: u64,
    /// Distinct workers that contributed samples.
    pub workers: u32,
    /// Maximum per-worker activity span (first sample to last), in
    /// nanoseconds — the epoch's measured wall clock.
    pub span_ns: u64,
    /// The straggler: the worker with the largest busy time.
    pub critical_worker: u32,
    /// The critical worker's activity span.
    pub critical_path_ns: u64,
    /// Total busy (schedule) nanoseconds across workers.
    pub busy_total_ns: u64,
    /// Largest per-worker busy time.
    pub busy_max_ns: u64,
    /// Smallest per-worker busy time.
    pub busy_min_ns: u64,
    /// Epoch span minus the critical worker's busy time: the wall-clock
    /// residual not spent on critical work (transit, progress traffic,
    /// notification wait). `busy_max_ns + idle_ns == span_ns`.
    pub idle_ns: u64,
    /// Busy-time skew: `busy_max / busy_mean`, in thousandths. 1000
    /// means perfectly balanced; 2000 means the straggler did twice the
    /// mean work.
    pub skew_milli: u64,
    /// Data batches emitted during the epoch.
    pub transit_msgs: u64,
    /// Records in those batches.
    pub transit_records: u64,
    /// Serialized bytes in those batches (0 for intra-process batches).
    pub transit_bytes: u64,
    /// Progress-protocol batches (sent, deposited, and applied).
    pub progress_batches: u64,
    /// Progress updates in those batches.
    pub progress_updates: u64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Times a sender parked waiting for data-plane credit.
    pub credit_waits: u64,
    /// Cumulative nanoseconds senders spent parked — the backpressure
    /// share of the epoch, what the autotuner's credit rule reads.
    pub credit_wait_ns: u64,
    /// Total samples folded in.
    pub samples: u64,
}

impl CriticalPathSummary {
    /// Encodes the summary as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"epoch\":{},\"workers\":{},\"span_ns\":{},\"critical_worker\":{},\
             \"critical_path_ns\":{},\"busy_total_ns\":{},\"busy_max_ns\":{},\
             \"busy_min_ns\":{},\"idle_ns\":{},\"skew_milli\":{},\"transit_msgs\":{},\
             \"transit_records\":{},\"transit_bytes\":{},\"progress_batches\":{},\
             \"progress_updates\":{},\"notifications\":{},\"credit_waits\":{},\
             \"credit_wait_ns\":{},\"samples\":{}}}",
            self.epoch,
            self.workers,
            self.span_ns,
            self.critical_worker,
            self.critical_path_ns,
            self.busy_total_ns,
            self.busy_max_ns,
            self.busy_min_ns,
            self.idle_ns,
            self.skew_milli,
            self.transit_msgs,
            self.transit_records,
            self.transit_bytes,
            self.progress_batches,
            self.progress_updates,
            self.notifications,
            self.credit_waits,
            self.credit_wait_ns,
            self.samples,
        );
        s
    }
}

impl Wire for CriticalPathSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.workers.encode(buf);
        self.span_ns.encode(buf);
        self.critical_worker.encode(buf);
        self.critical_path_ns.encode(buf);
        self.busy_total_ns.encode(buf);
        self.busy_max_ns.encode(buf);
        self.busy_min_ns.encode(buf);
        self.idle_ns.encode(buf);
        self.skew_milli.encode(buf);
        self.transit_msgs.encode(buf);
        self.transit_records.encode(buf);
        self.transit_bytes.encode(buf);
        self.progress_batches.encode(buf);
        self.progress_updates.encode(buf);
        self.notifications.encode(buf);
        self.credit_waits.encode(buf);
        self.credit_wait_ns.encode(buf);
        self.samples.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CriticalPathSummary {
            epoch: u64::decode(input)?,
            workers: u32::decode(input)?,
            span_ns: u64::decode(input)?,
            critical_worker: u32::decode(input)?,
            critical_path_ns: u64::decode(input)?,
            busy_total_ns: u64::decode(input)?,
            busy_max_ns: u64::decode(input)?,
            busy_min_ns: u64::decode(input)?,
            idle_ns: u64::decode(input)?,
            skew_milli: u64::decode(input)?,
            transit_msgs: u64::decode(input)?,
            transit_records: u64::decode(input)?,
            transit_bytes: u64::decode(input)?,
            progress_batches: u64::decode(input)?,
            progress_updates: u64::decode(input)?,
            notifications: u64::decode(input)?,
            credit_waits: u64::decode(input)?,
            credit_wait_ns: u64::decode(input)?,
            samples: u64::decode(input)?,
        })
    }
}

/// Recomputes the per-epoch critical-path summaries from harvested event
/// logs — the offline reference the golden test checks the self-hosted
/// dataflow against.
///
/// Runs the same [`AttributionState`] over each worker's log (skipping
/// events of `exclude_dataflow`, exactly as the recorder tap does) and
/// folds the samples through the same [`EpochAccumulator`]; summaries
/// come back sorted by epoch.
#[must_use]
pub fn offline_reference(
    logs: &[WorkerTelemetry],
    exclude_dataflow: Option<u32>,
) -> Vec<CriticalPathSummary> {
    let mut epochs: BTreeMap<u64, EpochAccumulator> = BTreeMap::new();
    for log in logs {
        let worker = u32::try_from(log.worker).unwrap_or(u32::MAX);
        let mut attribution = AttributionState::new(worker);
        for record in &log.events {
            if record.event.dataflow_id() == exclude_dataflow && exclude_dataflow.is_some() {
                continue;
            }
            if let Some(sample) = attribution.push(record) {
                epochs.entry(sample.epoch).or_default().push(&sample);
            }
        }
    }
    epochs
        .iter()
        .map(|(epoch, acc)| acc.finish(*epoch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naiad_wire::{decode_from_slice, encode_to_vec};

    fn record(nanos: u64, event: TelemetryEvent) -> EventRecord {
        EventRecord { nanos, event }
    }

    #[test]
    fn samples_round_trip_over_the_wire() {
        let sample = ActivitySample {
            worker: 3,
            epoch: 7,
            kind: ActivityKind::TransitOut,
            start_ns: 123_456,
            duration_ns: 0,
            records: 42,
            bytes: 512,
            stage: 9,
            seq: 17,
        };
        let bytes = encode_to_vec(&sample);
        let back: ActivitySample = decode_from_slice(&bytes).unwrap();
        assert_eq!(sample, back);

        let summary = EpochAccumulator::default().finish(5);
        let bytes = encode_to_vec(&summary);
        let back: CriticalPathSummary = decode_from_slice(&bytes).unwrap();
        assert_eq!(summary, back);
    }

    #[test]
    fn attribution_maps_schedule_transit_and_notify() {
        let mut state = AttributionState::new(1);
        // An idle slice produces no sample but still tracks the epoch.
        assert!(state
            .push(&record(
                100,
                TelemetryEvent::ScheduleStop {
                    dataflow: 1,
                    stage: 2,
                    nanos: 50,
                    worked: false,
                    epoch: 3,
                    seq: 8,
                },
            ))
            .is_none());
        // A worked slice becomes a Schedule sample at the slice's epoch.
        let s = state
            .push(&record(
                200,
                TelemetryEvent::ScheduleStop {
                    dataflow: 1,
                    stage: 2,
                    nanos: 60,
                    worked: true,
                    epoch: 3,
                    seq: 9,
                },
            ))
            .unwrap();
        assert_eq!(s.kind, ActivityKind::Schedule);
        assert_eq!(s.epoch, 3);
        assert_eq!(s.start_ns, 140);
        assert_eq!(s.duration_ns, 60);
        // Transit inherits the running epoch.
        let s = state
            .push(&record(
                210,
                TelemetryEvent::MessageSent {
                    dataflow: 1,
                    connector: 4,
                    target: 0,
                    records: 10,
                    bytes: 80,
                    remote: true,
                },
            ))
            .unwrap();
        assert_eq!(s.kind, ActivityKind::TransitOut);
        assert_eq!(s.epoch, 3);
        assert_eq!((s.records, s.bytes), (10, 80));
        // Notifications carry their own epoch.
        let s = state
            .push(&record(
                220,
                TelemetryEvent::NotificationDelivered {
                    dataflow: 1,
                    stage: 2,
                    epoch: 5,
                    blocking: true,
                },
            ))
            .unwrap();
        assert_eq!(s.kind, ActivityKind::Notify);
        assert_eq!(s.epoch, 5);
        // Non-attributable events are ignored.
        assert!(state
            .push(&record(
                230,
                TelemetryEvent::FrontierProbe {
                    dataflow: 1,
                    active: 1,
                    input_epoch: Some(3),
                },
            ))
            .is_none());
    }

    #[test]
    fn credit_waits_attribute_to_the_running_epoch() {
        let mut state = AttributionState::new(2);
        state.push(&record(
            100,
            TelemetryEvent::ScheduleStop {
                dataflow: 1,
                stage: 0,
                nanos: 10,
                worked: false,
                epoch: 4,
                seq: 0,
            },
        ));
        let s = state
            .push(&record(
                500,
                TelemetryEvent::CreditWait {
                    dataflow: 1,
                    connector: 3,
                    waited_ns: 200,
                    bytes: 1024,
                },
            ))
            .unwrap();
        assert_eq!(s.kind, ActivityKind::CreditWait);
        assert_eq!(s.epoch, 4, "inherits the running epoch");
        assert_eq!((s.start_ns, s.duration_ns), (300, 200));
        assert_eq!(s.bytes, 1024);

        let mut acc = EpochAccumulator::default();
        acc.push(&s);
        let summary = acc.finish(4);
        assert_eq!(summary.credit_waits, 1);
        assert_eq!(summary.credit_wait_ns, 200);
        let json = summary.to_json();
        assert!(json.contains("\"credit_wait_ns\":200"), "{json}");

        let bytes = encode_to_vec(&summary);
        let back: CriticalPathSummary = decode_from_slice(&bytes).unwrap();
        assert_eq!(summary, back);
    }

    #[test]
    fn accumulator_attributes_the_straggler_and_accounts_the_span() {
        let mut acc = EpochAccumulator::default();
        // Worker 0: busy 100ns spanning [0, 100].
        acc.push(&ActivitySample {
            worker: 0,
            epoch: 1,
            kind: ActivityKind::Schedule,
            start_ns: 0,
            duration_ns: 100,
            records: 0,
            bytes: 0,
            stage: 1,
            seq: 0,
        });
        // Worker 1: busy 300ns spanning [50, 350], plus a notify at 400.
        acc.push(&ActivitySample {
            worker: 1,
            epoch: 1,
            kind: ActivityKind::Schedule,
            start_ns: 50,
            duration_ns: 300,
            records: 0,
            bytes: 0,
            stage: 1,
            seq: 1,
        });
        acc.push(&ActivitySample {
            worker: 1,
            epoch: 1,
            kind: ActivityKind::Notify,
            start_ns: 400,
            duration_ns: 0,
            records: 0,
            bytes: 0,
            stage: 1,
            seq: 0,
        });
        let summary = acc.finish(1);
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.critical_worker, 1);
        assert_eq!(summary.span_ns, 350); // worker 1: [50, 400]
        assert_eq!(summary.critical_path_ns, 350);
        assert_eq!(summary.busy_total_ns, 400);
        assert_eq!(summary.busy_max_ns, 300);
        assert_eq!(summary.busy_min_ns, 100);
        assert_eq!(summary.idle_ns, 50); // 350 span − 300 busy
        assert_eq!(summary.skew_milli, 1500); // 300 / 200 mean
        assert_eq!(summary.notifications, 1);
        assert_eq!(summary.samples, 3);
        // The summary fully accounts the epoch: busy + idle == span, by
        // construction.
        assert_eq!(summary.busy_max_ns + summary.idle_ns, summary.span_ns);
    }

    #[test]
    fn accumulation_is_order_insensitive() {
        let samples = [
            ActivitySample {
                worker: 0,
                epoch: 2,
                kind: ActivityKind::Schedule,
                start_ns: 10,
                duration_ns: 90,
                records: 0,
                bytes: 0,
                stage: 1,
                seq: 0,
            },
            ActivitySample {
                worker: 1,
                epoch: 2,
                kind: ActivityKind::TransitOut,
                start_ns: 30,
                duration_ns: 0,
                records: 7,
                bytes: 64,
                stage: 2,
                seq: 0,
            },
            ActivitySample {
                worker: 1,
                epoch: 2,
                kind: ActivityKind::Progress,
                start_ns: 60,
                duration_ns: 0,
                records: 4,
                bytes: 0,
                stage: 0,
                seq: 1,
            },
        ];
        let mut forward = EpochAccumulator::default();
        let mut reverse = EpochAccumulator::default();
        for s in &samples {
            forward.push(s);
        }
        for s in samples.iter().rev() {
            reverse.push(s);
        }
        assert_eq!(forward.finish(2), reverse.finish(2));
    }

    #[test]
    fn offline_reference_excludes_the_observer_dataflow() {
        let log = WorkerTelemetry {
            worker: 0,
            events: vec![
                record(
                    100,
                    TelemetryEvent::ScheduleStop {
                        dataflow: 0, // observer: excluded
                        stage: 1,
                        nanos: 40,
                        worked: true,
                        epoch: 0,
                        seq: 0,
                    },
                ),
                record(
                    200,
                    TelemetryEvent::ScheduleStop {
                        dataflow: 1,
                        stage: 1,
                        nanos: 40,
                        worked: true,
                        epoch: 0,
                        seq: 1,
                    },
                ),
            ],
            dropped: 0,
            counters: crate::telemetry::WorkerCounters::default(),
            ops: Vec::new(),
            connectors: Vec::new(),
            directory: Vec::new(),
        };
        let summaries = offline_reference(&[log], Some(0));
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].samples, 1);
        assert_eq!(summaries[0].busy_total_ns, 40);
    }
}
