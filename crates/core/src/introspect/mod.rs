//! Self-hosted critical-path analysis: the telemetry stream fed into a
//! Naiad dataflow running on the same runtime, SnailTrail-style.
//!
//! The paper diagnoses stragglers (§5.3) and tunes batch sizes (Fig 6a)
//! by reading logs offline. This module closes that loop *online* by
//! dogfooding the system on itself:
//!
//! 1. **Tap** — each worker's [`Recorder`] gets a bounded, in-process
//!    tap ([`Tap`](crate::telemetry::Tap)) that copies attributable
//!    events (schedule slices, message transit, progress traffic,
//!    notification delivery) into a per-worker queue. No locks on the
//!    recording hot path; overflow is counted, never blocking.
//! 2. **Observer dataflow** — a second dataflow, built through the same
//!    [`Worker::dataflow`] path as any user graph (and therefore
//!    statically certified by the [`crate::analysis`] rules), ingests
//!    [`ActivitySample`]s. A step hook drains the tap between scheduling
//!    steps, attributes events to source epochs via
//!    [`AttributionState`], and feeds the observer's input — *sending
//!    before advancing*, and never advancing past the running
//!    attribution epoch, so a sample for epoch `e` is always introduced
//!    at an observer timestamp `≤ e` and the analysis vertex's
//!    notification at `e` is sound (fires exactly once, after the last
//!    sample of the epoch).
//! 3. **Analysis** — samples exchange by epoch, so one vertex assembles
//!    each epoch's program-activity graph; when the epoch's frontier
//!    passes, it emits a [`CriticalPathSummary`] naming the straggler,
//!    the critical path, busy-time skew, and the transit/progress/
//!    notification residual.
//! 4. **Autotuning** — summaries route to worker 0, where an optional
//!    [`Autotuner`] hill-climbs the shared
//!    [`TuningKnobs`](crate::runtime::TuningKnobs) (exchange batch
//!    size, progress flush threshold) and logs every move back into the
//!    telemetry stream as
//!    [`TelemetryEvent::TuningDecision`](crate::telemetry::TelemetryEvent).
//!
//! The observer is excluded from its own tap (no feedback loop), does
//! not count toward step liveness (the user's `step_until_done` is
//! oblivious to it), and never touches user streams — with autotuning
//! off, a run with introspection is bit-identical to one without.
//!
//! Entry point: [`execute_with_introspection`]. The offline reference
//! ([`offline_reference`]) recomputes the same summaries from harvested
//! logs through the same attribution code, which is what the golden test
//! checks the self-hosted results against.

mod activity;
mod tuner;

pub use activity::{
    offline_reference, ActivityKind, ActivitySample, AttributionState, CriticalPathSummary,
    EpochAccumulator,
};
pub use tuner::{Autotuner, TuningDecision};

use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::dataflow::{InputHandle, InputPort, Notify, OutputPort};
use crate::runtime::execute::execute_inner;
use crate::runtime::sync::Mutex;
use crate::runtime::{Config, Pact, StepHook, TuningKnobs, Worker};
use crate::telemetry::{EventRecord, Recorder, Tap, TelemetryEvent, TelemetrySnapshot};
use crate::time::Timestamp;
use crate::ExecuteError;

/// The observer dataflow's id: the harness builds it before the user
/// closure runs, so it is always the worker's first dataflow.
const OBSERVER_DATAFLOW: u32 = 0;

/// Options for [`execute_with_introspection`].
#[derive(Debug, Clone, Copy)]
pub struct IntrospectOptions {
    /// Per-worker tap queue capacity, in events. Overflow increments
    /// `tap_dropped` in the report instead of blocking the hot path.
    pub tap_capacity: usize,
    /// Whether the [`Autotuner`] closes the loop. Off by default:
    /// with autotuning off, introspection observes without perturbing —
    /// user results are bit-identical to an uninstrumented run.
    pub autotune: bool,
}

impl Default for IntrospectOptions {
    fn default() -> Self {
        IntrospectOptions {
            tap_capacity: 65_536,
            autotune: false,
        }
    }
}

impl IntrospectOptions {
    /// Sets the per-worker tap capacity.
    #[must_use]
    pub fn tap_capacity(mut self, events: usize) -> Self {
        self.tap_capacity = events;
        self
    }

    /// Enables the autotuner.
    #[must_use]
    pub fn autotune(mut self, enabled: bool) -> Self {
        self.autotune = enabled;
        self
    }
}

/// What [`execute_with_introspection`] returns alongside the worker
/// results.
#[derive(Debug)]
pub struct IntrospectReport {
    /// The full telemetry snapshot, with
    /// [`TelemetrySnapshot::critical_paths`] filled in.
    pub snapshot: TelemetrySnapshot,
    /// Per-epoch critical-path summaries, sorted by epoch — the same
    /// values as `snapshot.critical_paths`.
    pub summaries: Vec<CriticalPathSummary>,
    /// Every knob adjustment the autotuner made (empty when autotuning
    /// is off).
    pub decisions: Vec<TuningDecision>,
    /// Events dropped at tap queues across all workers (0 means the
    /// activity graph is complete).
    pub tap_dropped: u64,
}

/// Per-worker introspection state: the observer input, the tap queue it
/// drains, and the attribution state shared with the step hook.
pub(crate) struct Harness {
    input: Rc<RefCell<InputHandle<ActivitySample>>>,
    queue: Rc<RefCell<VecDeque<EventRecord>>>,
    dropped: Rc<Cell<u64>>,
    attribution: Rc<RefCell<AttributionState>>,
    recorder: Recorder,
}

impl Harness {
    /// Builds the observer dataflow, marks it as such, installs the
    /// recorder tap and the step hook. Must run before the user closure
    /// builds any dataflow (the observer claims id 0).
    pub(crate) fn install(
        worker: &mut Worker,
        tap_capacity: usize,
        collector: &Arc<Mutex<Vec<CriticalPathSummary>>>,
        tuner: Option<&Arc<Mutex<Autotuner>>>,
        decisions: &Arc<Mutex<Vec<TuningDecision>>>,
    ) -> Harness {
        let recorder = worker.recorder();
        let input = build_observer(
            worker,
            Arc::clone(collector),
            tuner.map(Arc::clone),
            Arc::clone(decisions),
            recorder.clone(),
        );
        worker.mark_observer(OBSERVER_DATAFLOW as usize);

        let queue = Rc::new(RefCell::new(VecDeque::new()));
        let dropped = Rc::new(Cell::new(0u64));
        recorder.install_tap(Tap {
            queue: Rc::clone(&queue),
            capacity: tap_capacity.max(1),
            dropped: Rc::clone(&dropped),
            exclude_dataflow: OBSERVER_DATAFLOW,
        });

        let input = Rc::new(RefCell::new(input));
        let attribution = Rc::new(RefCell::new(AttributionState::new(
            u32::try_from(worker.index()).unwrap_or(u32::MAX),
        )));

        let hook_input = Rc::clone(&input);
        let hook_queue = Rc::clone(&queue);
        let hook_attribution = Rc::clone(&attribution);
        let hook: StepHook = Rc::new(RefCell::new(move |min_open: Option<u64>| {
            let mut input = hook_input.borrow_mut();
            if input.is_closed() {
                return;
            }
            // Drain into a local batch first: sending on the observer
            // input records transit events of its own, and although the
            // tap excludes the observer dataflow, holding the queue
            // borrow across a send would be one refactor away from a
            // re-borrow panic.
            let drained: Vec<EventRecord> = hook_queue.borrow_mut().drain(..).collect();
            let mut attribution = hook_attribution.borrow_mut();
            for record in drained {
                if let Some(sample) = attribution.push(&record) {
                    input.send(sample);
                }
            }
            // Send, *then* advance — and never past the attribution
            // epoch. Schedule and notification samples carry a tracker
            // epoch that is monotone per worker, but transit and progress
            // samples inherit the epoch of the *last* schedule slice,
            // which can lag one step behind the frontier. Clamping the
            // advance to `min(min_open, attribution.epoch())` guarantees
            // every future sample carries an epoch `≥` the observer
            // clock, so the analysis vertex's notification at `e` fires
            // exactly once, after the last sample for `e`.
            if let Some(min_open) = min_open {
                let safe = min_open.min(attribution.epoch());
                if safe > input.epoch() {
                    input.advance_to(safe);
                }
            }
        }));
        worker.add_step_hook(hook);

        Harness {
            input,
            queue,
            dropped,
            attribution,
            recorder,
        }
    }

    /// Flushes the tap through the observer, closes its input, and runs
    /// the observer dataflow to completion. Returns the number of events
    /// the tap dropped on this worker.
    pub(crate) fn finish(self, worker: &mut Worker) -> u64 {
        {
            let mut input = self.input.borrow_mut();
            if !input.is_closed() {
                let drained: Vec<EventRecord> = self.queue.borrow_mut().drain(..).collect();
                let mut attribution = self.attribution.borrow_mut();
                for record in drained {
                    if let Some(sample) = attribution.push(&record) {
                        input.send(sample);
                    }
                }
                input.close();
            }
        }
        self.recorder.remove_tap();
        while !worker.observers_complete() {
            if !worker.step() {
                worker.idle_wait();
            }
        }
        self.dropped.get()
    }
}

/// Builds the observer dataflow on `worker` and returns its input.
///
/// Topology: `Input → CriticalPath (exchange by epoch, notify per
/// epoch) → Autotune (exchange to worker 0, sink)`. Built through
/// [`Worker::dataflow`], so the static analyzer certifies it like any
/// user graph.
fn build_observer(
    worker: &mut Worker,
    collector: Arc<Mutex<Vec<CriticalPathSummary>>>,
    tuner: Option<Arc<Mutex<Autotuner>>>,
    decisions: Arc<Mutex<Vec<TuningDecision>>>,
    recorder: Recorder,
) -> InputHandle<ActivitySample> {
    worker.dataflow(move |scope| {
        let (input, samples) = scope.new_input::<ActivitySample>();

        let summaries = samples.unary_notify(
            Pact::exchange(|s: &ActivitySample| s.epoch),
            "CriticalPath",
            move |_info| {
                let table: Rc<RefCell<HashMap<u64, EpochAccumulator>>> = Rc::default();
                let flush = Rc::clone(&table);
                (
                    move |input: &mut InputPort<ActivitySample>,
                          _output: &mut OutputPort<CriticalPathSummary>,
                          notify: &Notify| {
                        input.for_each(|_time, data| {
                            let mut table = table.borrow_mut();
                            for sample in data {
                                let accumulator = match table.entry(sample.epoch) {
                                    Entry::Occupied(entry) => entry.into_mut(),
                                    Entry::Vacant(entry) => {
                                        // First sample of the epoch:
                                        // summarize once its frontier
                                        // passes.
                                        notify.notify_at(Timestamp::new(sample.epoch));
                                        entry.insert(EpochAccumulator::default())
                                    }
                                };
                                accumulator.push(&sample);
                            }
                        });
                    },
                    move |time: Timestamp,
                          output: &mut OutputPort<CriticalPathSummary>,
                          _notify: &Notify| {
                        if let Some(accumulator) = flush.borrow_mut().remove(&time.epoch) {
                            output.session(time).give(accumulator.finish(time.epoch));
                        }
                    },
                )
            },
        );

        summaries.sink(Pact::exchange(|_| 0), "Autotune", move |_info| {
            move |input: &mut InputPort<CriticalPathSummary>| {
                input.for_each(|_time, data| {
                    for summary in data {
                        if let Some(tuner) = &tuner {
                            let made = tuner.lock().observe(&summary);
                            for decision in &made {
                                recorder.record(TelemetryEvent::TuningDecision {
                                    epoch: decision.epoch,
                                    knob: decision.knob,
                                    from: decision.from,
                                    to: decision.to,
                                });
                            }
                            decisions.lock().extend(made);
                        }
                        collector.lock().push(summary);
                    }
                });
            }
        });

        input
    })
}

/// Like [`execute_with_telemetry`](crate::runtime::execute::execute_with_telemetry),
/// but with the self-hosted critical-path observer installed on every
/// worker.
///
/// Telemetry is forced on. Each worker gets a recorder tap, the observer
/// dataflow, and a step hook feeding one into the other; after the user
/// closure returns, the observer runs to completion so every closed
/// source epoch yields a [`CriticalPathSummary`]. With
/// [`IntrospectOptions::autotune`] set, worker 0 additionally drives the
/// [`Autotuner`] over the shared [`TuningKnobs`] (installing default
/// knobs seeded from `config.batch_size` if the config carries none).
///
/// # Errors
///
/// Propagates any [`ExecuteError`] from the underlying execution.
///
/// # Panics
///
/// Panics if a worker thread panics (as [`execute`](crate::execute)
/// does), or if the observer graph fails static certification — which
/// would be a bug in this module, not in user code.
pub fn execute_with_introspection<F, T>(
    config: Config,
    options: IntrospectOptions,
    worker_fn: F,
) -> Result<(Vec<T>, IntrospectReport), ExecuteError>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let mut config = config.telemetry(true);
    if options.autotune && config.tuning.is_none() {
        let knobs = TuningKnobs::with_batch_size(config.batch_size);
        config = config.tuning(knobs);
    }

    let collector: Arc<Mutex<Vec<CriticalPathSummary>>> = Arc::new(Mutex::new(Vec::new()));
    let decisions: Arc<Mutex<Vec<TuningDecision>>> = Arc::new(Mutex::new(Vec::new()));
    let tap_dropped = Arc::new(AtomicU64::new(0));
    let tuner = if options.autotune {
        let knobs = config.tuning.clone().expect("knobs installed above");
        Some(Arc::new(Mutex::new(Autotuner::new(knobs))))
    } else {
        None
    };

    let tap_capacity = options.tap_capacity;
    let worker_collector = Arc::clone(&collector);
    let worker_decisions = Arc::clone(&decisions);
    let worker_dropped = Arc::clone(&tap_dropped);
    let wrapped = move |worker: &mut Worker| {
        let harness = Harness::install(
            worker,
            tap_capacity,
            &worker_collector,
            tuner.as_ref(),
            &worker_decisions,
        );
        let result = worker_fn(worker);
        let dropped = harness.finish(worker);
        worker_dropped.fetch_add(dropped, Ordering::Relaxed);
        result
    };

    let (results, _metrics, snapshot) = execute_inner(&config, wrapped)?;
    let mut snapshot = snapshot.expect("telemetry enabled yields a snapshot");

    let mut summaries = std::mem::take(&mut *collector.lock());
    summaries.sort_by_key(|s| s.epoch);
    snapshot.critical_paths.clone_from(&summaries);
    let decisions = std::mem::take(&mut *decisions.lock());

    let report = IntrospectReport {
        snapshot,
        summaries,
        decisions,
        tap_dropped: tap_dropped.load(Ordering::Relaxed),
    };
    Ok((results, report))
}
