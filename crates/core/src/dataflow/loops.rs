//! Loop contexts: ingress, egress, and feedback stages (§2.1, §4.3).
//!
//! A [`LoopContext`] scopes a cyclic sub-graph. Streams *enter* it
//! (gaining a loop counter fixed at 0), circulate through *feedback*
//! (which increments the counter), and *leave* (dropping the counter).
//! Only the feedback stage may have its output connected before its input,
//! which is what makes every cycle well-formed (§4.3).

use std::cell::RefCell;
use std::rc::Rc;

use naiad_wire::ExchangeData;

use crate::graph::{ContextId, StageId};
use crate::runtime::channels::Pact;

use super::ops::{install, new_output_stream};
use super::ports::InputPort;
use super::{Notify, Scope, Stream};

/// A loop context under construction.
pub struct LoopContext {
    scope: Scope,
    context: ContextId,
}

impl Scope {
    /// Opens a loop context nested in `parent` (use
    /// [`ContextId::ROOT`] for a top-level loop, or an inner stream's
    /// [`Stream::context`](super::Stream::context) when nesting).
    pub fn loop_context(&mut self, parent: ContextId) -> LoopContext {
        let context = self.inner.borrow_mut().builder.add_context(parent);
        LoopContext {
            scope: self.clone_ref(),
            context,
        }
    }
}

impl LoopContext {
    /// The context id, used to nest further loops.
    pub fn context(&self) -> ContextId {
        self.context
    }

    /// Brings a stream from the parent context into the loop through an
    /// ingress stage: `(e, ⟨c…⟩) → (e, ⟨c…, 0⟩)`.
    pub fn enter<D: ExchangeData>(&self, stream: &Stream<D>) -> Stream<D> {
        let stage = {
            let mut inner = self.scope.inner.borrow_mut();
            inner.builder.add_ingress("Ingress", self.context)
        };
        let mut input = stream.connect_to(stage, 0, Pact::Pipeline);
        let (out_stream, output) = new_output_stream::<D>(&self.scope, stage, self.context);
        let notify = self.system_notify(stage);
        let pump = Box::new(move || {
            let mut out = output.borrow_mut();
            input.for_each(|time, data| {
                out.session(time.entered()).give_vec(data);
            });
            input.settle();
            out.flush();
            input.take_worked()
        });
        install(
            &self.scope,
            stage,
            "Ingress",
            notify,
            pump,
            Box::new(|_| {}),
        );
        out_stream
    }

    /// Returns a stream to the parent context through an egress stage:
    /// `(e, ⟨c…, cₖ⟩) → (e, ⟨c…⟩)`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is not in this context.
    pub fn leave<D: ExchangeData>(&self, stream: &Stream<D>) -> Stream<D> {
        assert_eq!(
            stream.context, self.context,
            "leave requires an inner stream"
        );
        let (stage, parent) = {
            let mut inner = self.scope.inner.borrow_mut();
            let stage = inner.builder.add_egress("Egress", self.context);
            let parent = inner
                .builder
                .context_parent(self.context)
                .expect("loop contexts always have a parent");
            (stage, parent)
        };
        let mut input = stream.connect_to(stage, 0, Pact::Pipeline);
        let (out_stream, output) = new_output_stream::<D>(&self.scope, stage, parent);
        let notify = self.system_notify(stage);
        let pump = Box::new(move || {
            let mut out = output.borrow_mut();
            input.for_each(|time, data| {
                let left = time.left().expect("egress input carries a loop counter");
                out.session(left).give_vec(data);
            });
            input.settle();
            out.flush();
            input.take_worked()
        });
        install(&self.scope, stage, "Egress", notify, pump, Box::new(|_| {}));
        out_stream
    }

    /// Creates the loop's feedback stage: `(e, ⟨c…, cₖ⟩) → (e, ⟨c…, cₖ+1⟩)`.
    ///
    /// Returns the handle used to connect the loop body's result back into
    /// the cycle, and the stream of fed-back records. Records whose
    /// incremented counter reaches `max_iterations` are dropped, bounding
    /// the loop.
    pub fn feedback<D: ExchangeData>(
        &self,
        max_iterations: Option<u64>,
    ) -> (FeedbackHandle<D>, Stream<D>) {
        let stage = {
            let mut inner = self.scope.inner.borrow_mut();
            inner.builder.add_feedback("Feedback", self.context)
        };
        let (out_stream, output) = new_output_stream::<D>(&self.scope, stage, self.context);
        let notify = self.system_notify(stage);
        let slot: Rc<RefCell<Option<InputPort<D>>>> = Rc::new(RefCell::new(None));
        let pump_slot = slot.clone();
        let pump = Box::new(move || {
            let mut slot = pump_slot.borrow_mut();
            let Some(input) = slot.as_mut() else {
                return false;
            };
            let mut out = output.borrow_mut();
            input.for_each(|time, data| {
                let next = time
                    .incremented()
                    .expect("feedback input carries a loop counter");
                let iteration = *next.counters.as_slice().last().expect("loop counter");
                if max_iterations.is_none_or(|max| iteration < max) {
                    out.session(next).give_vec(data);
                }
            });
            input.settle();
            out.flush();
            input.take_worked()
        });
        install(
            &self.scope,
            stage,
            "Feedback",
            notify,
            pump,
            Box::new(|_| {}),
        );
        (
            FeedbackHandle {
                stage,
                context: self.context,
                slot,
            },
            out_stream,
        )
    }

    fn system_notify(&self, stage: StageId) -> Notify {
        let inner = self.scope.inner.borrow();
        Notify::new(stage, inner.journal.clone(), inner.notify_log.clone())
    }
}

/// The dangling input of a feedback stage.
///
/// Dropping the handle without calling [`FeedbackHandle::connect`] leaves
/// the feedback input unconnected, which
/// [`Worker::dataflow`](crate::runtime::Worker::dataflow) rejects when it
/// validates the graph.
pub struct FeedbackHandle<D: ExchangeData> {
    stage: StageId,
    context: ContextId,
    slot: Rc<RefCell<Option<InputPort<D>>>>,
}

impl<D: ExchangeData> FeedbackHandle<D> {
    /// Closes the cycle: records of `stream` re-enter the loop with their
    /// counter incremented.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is outside this loop context.
    pub fn connect(self, stream: &Stream<D>) {
        assert_eq!(
            stream.context, self.context,
            "feedback must be fed from inside its loop context"
        );
        let input = stream.connect_to(self.stage, 0, Pact::Pipeline);
        *self.slot.borrow_mut() = Some(input);
    }
}
